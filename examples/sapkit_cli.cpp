// Command-line front end: read an instance (file or stdin), solve it with a
// chosen algorithm, optionally verify and print the solution — or run a
// parallel generator sweep and emit a JSON batch report.
//
// Usage:
//   sapkit_cli solve   [--algo full|uniform|small|medium|large] [--eps X]
//                      [--seed N] [file]
//   sapkit_cli exact   [file]            # profile-DP oracle
//   sapkit_cli bound   [file]            # LP upper bound on OPT
//   sapkit_cli gen     [--edges M] [--tasks N] [--seed S]   # emit instance
//   sapkit_cli batch   [--count N] [--seed S] [--threads T] [--edges M]
//                      [--tasks N] [--profile P] [--demand D] [--eps X]
//                      [--ring] [--no-timings] [--cases] [--out FILE]
//
// Instances use the sap-path v1 text format (see src/io/instance_io.hpp).
// Batch reports use the sapkit-batch-v1 JSON schema (see docs/ALGORITHMS.md);
// with --no-timings the report is byte-identical for the same --seed
// regardless of --threads.
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/batch_runner.hpp"
#include "src/io/instance_io.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/model/verify.hpp"
#include "src/sapu/sapu_solver.hpp"

namespace {

using namespace sap;

int usage() {
  std::cerr
      << "usage: sapkit_cli solve|exact|bound|gen|batch [options] [file]\n"
         "  solve --algo full|uniform|small|medium|large --eps X\n"
         "  gen   --edges M --tasks N --seed S\n"
         "  batch --count N --seed S --threads T --edges M --tasks N\n"
         "        --profile uniform|valley|mountain|staircase|walk\n"
         "        --demand small|medium|large|mixed --eps X\n"
         "        [--ring] [--no-timings] [--cases] [--out FILE]\n";
  return 2;
}

PathInstance load(const std::string& path) {
  if (path.empty() || path == "-") return read_path_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_path_instance(in);
}

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

CapacityProfile parse_profile(const std::string& name) {
  if (name == "uniform") return CapacityProfile::kUniform;
  if (name == "valley") return CapacityProfile::kValley;
  if (name == "mountain") return CapacityProfile::kMountain;
  if (name == "staircase") return CapacityProfile::kStaircase;
  if (name == "walk") return CapacityProfile::kRandomWalk;
  throw std::runtime_error("unknown capacity profile: " + name);
}

DemandClass parse_demand(const std::string& name) {
  if (name == "small") return DemandClass::kSmall;
  if (name == "medium") return DemandClass::kMedium;
  if (name == "large") return DemandClass::kLarge;
  if (name == "mixed") return DemandClass::kMixed;
  throw std::runtime_error("unknown demand class: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::string algo = "full";
  double eps = 0.5;
  std::uint64_t seed = 1;
  std::size_t edges = 16;
  std::size_t tasks = 24;
  std::size_t count = 100;
  std::size_t threads = 0;
  std::string profile = "uniform";
  std::string demand = "mixed";
  bool ring = false;
  bool timings = true;
  bool cases = false;
  std::string out_path;
  std::string file;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--algo") {
        algo = next();
      } else if (arg == "--eps") {
        eps = std::stod(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--edges") {
        edges = std::stoull(next());
      } else if (arg == "--tasks") {
        tasks = std::stoull(next());
      } else if (arg == "--count") {
        count = std::stoull(next());
      } else if (arg == "--threads") {
        threads = std::stoull(next());
      } else if (arg == "--profile") {
        profile = next();
      } else if (arg == "--demand") {
        demand = next();
      } else if (arg == "--ring") {
        ring = true;
      } else if (arg == "--no-timings") {
        timings = false;
      } else if (arg == "--cases") {
        cases = true;
      } else if (arg == "--out") {
        out_path = next();
      } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
        return usage();
      } else {
        file = arg;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }

  try {
    if (command == "gen") {
      Rng rng(seed);
      PathGenOptions opt;
      opt.num_edges = edges;
      opt.num_tasks = tasks;
      write_path_instance(std::cout, generate_path_instance(opt, rng));
      return 0;
    }

    if (command == "batch") {
      BatchOptions options;
      options.num_instances = count;
      options.base_seed = seed;
      options.keep_cases = cases;

      BatchCaseFn fn;
      if (ring) {
        RingBatchConfig config;
        config.gen.num_edges = edges;
        config.gen.num_tasks = tasks;
        config.solver.path.eps = eps;
        fn = make_ring_batch_case(config);
      } else {
        PathBatchConfig config;
        config.gen.num_edges = edges;
        config.gen.num_tasks = tasks;
        config.gen.profile = parse_profile(profile);
        config.gen.demand = parse_demand(demand);
        config.solver.eps = eps;
        fn = make_path_batch_case(config);
      }

      ThreadPool pool(threads);
      const BatchReport report = run_batch(options, fn, pool);

      BatchJsonOptions json;
      json.include_timings = timings;
      json.include_cases = cases;
      if (out_path.empty()) {
        write_batch_json(std::cout, report, json);
      } else {
        std::ofstream out(out_path);
        if (!out) throw std::runtime_error("cannot open " + out_path);
        write_batch_json(out, report, json);
      }
      std::cerr << "batch: " << report.solved << "/" << report.num_instances
                << " solved on " << report.threads << " threads in "
                << report.total_seconds << "s\n";
      return 0;
    }

    const PathInstance inst = load(file);
    if (command == "exact") {
      const SapExactResult opt = sap_exact_profile_dp(inst);
      std::cerr << "optimum " << opt.weight
                << (opt.proven_optimal ? "" : " (lower bound: beam cap hit)")
                << "\n";
      write_sap_solution(std::cout, opt.solution);
      return 0;
    }
    if (command == "bound") {
      std::cout << ufpp_lp_upper_bound(inst) << "\n";
      return 0;
    }
    if (command != "solve") return usage();

    SolverParams params;
    params.eps = eps;
    params.seed = seed;
    SapSolution sol;
    if (algo == "full") {
      sol = solve_sap(inst, params);
    } else if (algo == "uniform") {
      sol = solve_sap_uniform(inst);
    } else if (algo == "small") {
      sol = solve_small_tasks(inst, all_ids(inst), params);
    } else if (algo == "medium") {
      sol = solve_medium_tasks(inst, all_ids(inst), params);
    } else if (algo == "large") {
      sol = solve_large_tasks(inst, all_ids(inst), params);
    } else {
      return usage();
    }
    const VerifyResult check = verify_sap(inst, sol);
    if (!check) {
      std::cerr << "INTERNAL ERROR: infeasible solution: " << check.reason
                << "\n";
      return 1;
    }
    std::cerr << "weight " << sol.weight(inst) << " (" << sol.size() << "/"
              << inst.num_tasks() << " tasks)\n";
    write_sap_solution(std::cout, sol);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
