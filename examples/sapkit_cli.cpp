// Command-line front end: read an instance (file or stdin), solve it with a
// chosen algorithm, optionally verify and print the solution — run a
// parallel generator sweep and emit a JSON batch report — or run / talk to
// the sapd solver service.
//
// Usage:
//   sapkit_cli solve   [--algo full|uniform|small|medium|large] [--eps X]
//                      [--seed N] [file]
//   sapkit_cli exact   [file]            # profile-DP oracle
//   sapkit_cli bound   [file]            # LP upper bound on OPT
//   sapkit_cli round   [--kind round-ufp|round-sap] [--algo full|exact]
//                      [file]            # min-round packing of all tasks
//   sapkit_cli gen     [--edges M] [--tasks N] [--seed S] [--nba]
//   sapkit_cli batch   [--count N] [--seed S] [--threads T] [--edges M]
//                      [--tasks N] [--profile P] [--demand D] [--eps X]
//                      [--ring] [--kind round-ufp|round-sap] [--no-timings]
//                      [--cases] [--out FILE]
//   sapkit_cli serve   [--host H] [--port P] [--threads T] [--queue Q]
//                      [--shards S] [--cache-entries C]
//                      [--default-deadline-ms B]
//   sapkit_cli request [--host H] [--port P] [--stats] [--ring]
//                      [--kind path|ring|round-ufp|round-sap] [--certify]
//                      [--cert-out FILE] [--algo A] [--eps X] [--seed N]
//                      [--deadline-ms B] [file]
//   sapkit_cli certify --solution SOL [--cert CERT] [--ring] [file]
//
// `certify` with --cert validates an existing certificate against the
// instance + solution through the independent checker; without --cert it
// produces a fresh certificate (written to stdout or --cert-out), then
// self-checks it. `solve --certify` and `batch --certify` certify solver
// output inline; `request --certify` asks the server for a certificate and
// re-checks it client-side.
//
// Exit codes: 0 success, 1 runtime failure (unreadable file, infeasible
// output, connection refused, typed server rejection, invalid or
// unverifiable certificate), 2 usage error (unknown subcommand, unknown
// flag, missing or malformed flag value).
//
// Instances use the sap-path v1 text format (see src/io/instance_io.hpp).
// Batch reports use the sapkit-batch-v1 JSON schema (see docs/ALGORITHMS.md).
// The service protocol is specified in docs/SERVICE.md.
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>

#include "src/cert/certify.hpp"
#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/batch_runner.hpp"
#include "src/io/instance_io.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/model/verify.hpp"
#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/round/verify.hpp"
#include "src/sapu/sapu_solver.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"

namespace {

using namespace sap;

/// Flag/subcommand problems: print usage, exit 2 (vs. 1 for runtime
/// failures like unreadable files or refused connections).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void print_usage(std::ostream& os) {
  os << "usage: sapkit_cli "
        "solve|exact|bound|round|gen|batch|serve|request [options] [file]\n"
        "  solve   --algo full|uniform|small|medium|large --eps X --seed N\n"
        "          [--certify] [--cert-out FILE]\n"
        "  round   [--kind round-ufp|round-sap] [--algo full|exact] [file]\n"
        "  gen     --edges M --tasks N --seed S [--nba]\n"
        "  batch   --count N --seed S --threads T --edges M --tasks N\n"
        "          --profile uniform|valley|mountain|staircase|walk\n"
        "          --demand small|medium|large|mixed --eps X [--certify]\n"
        "          [--ring] [--kind round-ufp|round-sap] [--no-timings]\n"
        "          [--cases] [--out FILE]\n"
        "  serve   --host H --port P --threads T --queue Q\n"
        "          [--shards S] [--cache-entries C]\n"
        "          [--default-deadline-ms B]\n"
        "  request --host H --port P [--stats] [--ring] [--certify]\n"
        "          [--kind path|ring|round-ufp|round-sap]\n"
        "          [--cert-out FILE] --algo A --eps X --seed N\n"
        "          [--deadline-ms B] [file]\n"
        "  certify --solution SOL [--cert CERT] [--ring] [file]\n";
}

int usage_error(const std::string& message) {
  if (!message.empty()) std::cerr << "error: " << message << "\n";
  print_usage(std::cerr);
  return 2;
}

PathInstance load(const std::string& path) {
  if (path.empty() || path == "-") return read_path_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_path_instance(in);
}

RingInstance load_ring(const std::string& path) {
  if (path.empty() || path == "-") return read_ring_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_ring_instance(in);
}

/// Raw text of an instance file; `request` ships it to the server without
/// parsing so the service-side hardening is what validates it.
std::string load_text(const std::string& path) {
  std::ostringstream buffer;
  if (path.empty() || path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    buffer << in.rdbuf();
  }
  return buffer.str();
}

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

CapacityProfile parse_profile(const std::string& name) {
  if (name == "uniform") return CapacityProfile::kUniform;
  if (name == "valley") return CapacityProfile::kValley;
  if (name == "mountain") return CapacityProfile::kMountain;
  if (name == "staircase") return CapacityProfile::kStaircase;
  if (name == "walk") return CapacityProfile::kRandomWalk;
  throw UsageError("unknown capacity profile: " + name);
}

DemandClass parse_demand(const std::string& name) {
  if (name == "small") return DemandClass::kSmall;
  if (name == "medium") return DemandClass::kMedium;
  if (name == "large") return DemandClass::kLarge;
  if (name == "mixed") return DemandClass::kMixed;
  throw UsageError("unknown demand class: " + name);
}

/// Every flag any subcommand accepts; per-subcommand validation happens at
/// dispatch (an unknown flag is always a usage error).
struct Options {
  std::string algo = "full";
  double eps = 0.5;
  std::uint64_t seed = 1;
  std::size_t edges = 16;
  std::size_t tasks = 24;
  std::size_t count = 100;
  std::size_t threads = 0;
  std::size_t queue = 64;
  std::size_t shards = 1;         // serve: independent admission shards
  std::size_t cache_entries = 0;  // serve: solve-cache capacity (0 = off)
  std::string profile = "uniform";
  std::string demand = "mixed";
  std::string host = "127.0.0.1";
  std::uint16_t port = 7464;  // "SAP" on a phone keypad, sort of
  std::int64_t deadline_ms = 0;          // request: per-solve budget
  std::int64_t default_deadline_ms = 0;  // serve: budget for bare requests
  std::string kind;  // request/batch/round: problem family (empty = legacy)
  bool ring = false;
  bool nba = false;  // gen: clamp demands to min capacity
  bool timings = true;
  bool cases = false;
  bool stats = false;
  bool certify = false;
  std::string out_path;
  std::string cert_out_path;
  std::string solution_path;
  std::string cert_path;
  std::string file;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        throw UsageError("bad value '" + value + "' for " + arg);
      }
    };
    auto next_f64 = [&]() -> double {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        throw UsageError("bad value '" + value + "' for " + arg);
      }
    };
    if (arg == "--algo") {
      opt.algo = next();
    } else if (arg == "--eps") {
      opt.eps = next_f64();
    } else if (arg == "--seed") {
      opt.seed = next_u64();
    } else if (arg == "--edges") {
      opt.edges = next_u64();
    } else if (arg == "--tasks") {
      opt.tasks = next_u64();
    } else if (arg == "--count") {
      opt.count = next_u64();
    } else if (arg == "--threads") {
      opt.threads = next_u64();
    } else if (arg == "--queue") {
      opt.queue = next_u64();
    } else if (arg == "--shards") {
      opt.shards = next_u64();
      if (opt.shards == 0) throw UsageError("--shards must be at least 1");
    } else if (arg == "--cache-entries") {
      opt.cache_entries = next_u64();
    } else if (arg == "--profile") {
      opt.profile = next();
    } else if (arg == "--demand") {
      opt.demand = next();
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      const std::uint64_t port = next_u64();
      if (port > 65535) throw UsageError("port out of range: " + arg);
      opt.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = static_cast<std::int64_t>(next_u64());
    } else if (arg == "--default-deadline-ms") {
      opt.default_deadline_ms = static_cast<std::int64_t>(next_u64());
    } else if (arg == "--kind") {
      opt.kind = next();
    } else if (arg == "--ring") {
      opt.ring = true;
    } else if (arg == "--nba") {
      opt.nba = true;
    } else if (arg == "--no-timings") {
      opt.timings = false;
    } else if (arg == "--cases") {
      opt.cases = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--certify") {
      opt.certify = true;
    } else if (arg == "--out") {
      opt.out_path = next();
    } else if (arg == "--cert-out") {
      opt.cert_out_path = next();
    } else if (arg == "--solution") {
      opt.solution_path = next();
    } else if (arg == "--cert") {
      opt.cert_path = next();
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw UsageError("unknown flag: " + arg);
    } else {
      opt.file = arg;
    }
  }
  return opt;
}

void write_certificate_to(const std::string& path,
                          const cert::Certificate& c) {
  if (path.empty()) {
    write_certificate(std::cout, c);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_certificate(out, c);
}

/// One-line human summary of a certificate, to stderr.
void print_cert_summary(const cert::Certificate& c, bool checked) {
  std::cerr << "certificate: rung " << cert::ub_rung_name(c.ub.rung)
            << ", weight " << c.solution_weight << ", ub " << c.ub.value
            << ", alpha " << c.alpha_num << "/" << c.alpha_den << ", check "
            << (checked ? "ok" : "FAILED") << "\n";
}

/// Shared path/ring body of the `certify` subcommand: validate an existing
/// certificate (--cert) or produce + self-check a fresh one.
template <typename Inst, typename Sol>
int certify_pair(const Inst& inst, const Sol& sol, const Options& opt) {
  if (!opt.cert_path.empty()) {
    std::ifstream cert_in(opt.cert_path);
    if (!cert_in) throw std::runtime_error("cannot open " + opt.cert_path);
    const cert::Certificate c = read_certificate(cert_in);
    const cert::CheckResult check = cert::check_certificate(inst, sol, c);
    if (!check.valid) {
      std::cerr << "certificate REJECTED: " << check.reason << "\n";
      return 1;
    }
    print_cert_summary(c, /*checked=*/true);
    return 0;
  }
  const cert::CertifyOutcome outcome = cert::certify_solution(inst, sol);
  if (!outcome.certified) {
    std::cerr << "error: cannot certify: " << outcome.detail << "\n";
    return 1;
  }
  const cert::CheckResult check =
      cert::check_certificate(inst, sol, outcome.cert);
  write_certificate_to(opt.cert_out_path, outcome.cert);
  print_cert_summary(outcome.cert, check.valid);
  if (!check.valid) {
    std::cerr << "certificate REJECTED: " << check.reason << "\n";
    return 1;
  }
  return 0;
}

int run_certify(const Options& opt) {
  if (opt.solution_path.empty()) {
    throw UsageError("certify requires --solution FILE");
  }
  std::ifstream sol_in(opt.solution_path);
  if (!sol_in) throw std::runtime_error("cannot open " + opt.solution_path);
  if (opt.ring) {
    const RingInstance inst = load_ring(opt.file);
    const RingSapSolution sol = read_ring_solution(sol_in);
    return certify_pair(inst, sol, opt);
  }
  const PathInstance inst = load(opt.file);
  const SapSolution sol = read_sap_solution(sol_in);
  return certify_pair(inst, sol, opt);
}

/// `round`: minimum-round packing of ALL tasks (Round-UFP / Round-SAP).
/// `--algo full` runs the approximation pipeline, `--algo exact` the
/// branch-and-bound oracle. Output is the round-solution v1 text format.
int run_round(const Options& opt) {
  const PathInstance inst = load(opt.file);
  const round::RoundKind kind =
      round::parse_round_kind(opt.kind.empty() ? "round-ufp" : opt.kind);

  round::RoundAssignment assignment;
  if (opt.algo == "full") {
    round::RoundApproxReport report;
    assignment = kind == round::RoundKind::kUfp
                     ? round::solve_round_ufp_approx(inst, {}, &report)
                     : round::solve_round_sap_approx(inst, {}, &report);
    std::cerr << "rounds " << assignment.num_rounds() << " ("
              << report.small_rounds << " small, " << report.large_rounds
              << " large, lower bound " << report.lower_bound << ")";
    if (report.slab_arm_won) std::cerr << " [slab arm]";
    std::cerr << "\n";
  } else if (opt.algo == "exact") {
    const round::RoundExactResult exact = round::solve_round_exact(inst, kind);
    assignment = exact.assignment;
    std::cerr << "optimum " << exact.rounds
              << (exact.proven_optimal ? "" : " (upper bound: budget hit)")
              << ", " << exact.nodes << " nodes\n";
  } else {
    throw UsageError("unknown algorithm for round: " + opt.algo +
                     " (want full|exact)");
  }

  const VerifyResult check = round::verify_round_assignment(inst, assignment);
  if (!check) {
    std::cerr << "INTERNAL ERROR: invalid round assignment: " << check.reason
              << "\n";
    return 1;
  }
  write_round_assignment(std::cout, assignment);
  return 0;
}

int run_serve(const Options& opt) {
  // Block the shutdown signals before spawning any server thread so every
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  service::ServerOptions options;
  options.bind_address = opt.host;
  options.port = opt.port;
  options.solver_threads = opt.threads;
  options.max_queue = opt.queue;
  options.shards = opt.shards;
  options.cache_entries = opt.cache_entries;
  options.default_deadline_ms = opt.default_deadline_ms;
  service::Server server(std::move(options));
  server.start();
  std::cout << "sapd listening on " << opt.host << ":" << server.port()
            << std::endl;  // flushed: callers parse this line

  int signal_number = 0;
  sigwait(&set, &signal_number);
  std::cerr << "sapd: received "
            << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining\n";
  server.stop();

  const service::ServerStats stats = server.stats_snapshot();
  std::cerr << "sapd: served " << stats.requests_ok << " solves ("
            << stats.requests_bad << " bad, " << stats.requests_overloaded
            << " overloaded, " << stats.requests_degraded << " degraded, "
            << stats.requests_deadline_exceeded
            << " deadline-exceeded) over " << stats.connections_accepted
            << " connections in " << stats.uptime_seconds << "s\n";
  if (opt.cache_entries > 0) {
    std::cerr << "sapd: cache " << stats.cache_hits << " hits, "
              << stats.cache_misses << " misses, " << stats.cache_coalesced
              << " coalesced\n";
  }
  return 0;
}

int run_request(const Options& opt) {
  service::Client client;
  client.connect(opt.host, opt.port);

  if (opt.stats) {
    std::cout << client.stats_json();
    return 0;
  }

  service::SolveRequest request;
  if (opt.kind.empty()) {
    request.kind = opt.ring ? service::SolveRequest::Kind::kRing
                            : service::SolveRequest::Kind::kPath;
  } else if (opt.kind == "path") {
    request.kind = service::SolveRequest::Kind::kPath;
  } else if (opt.kind == "ring") {
    request.kind = service::SolveRequest::Kind::kRing;
  } else if (opt.kind == "round-ufp") {
    request.kind = service::SolveRequest::Kind::kRoundUfp;
  } else if (opt.kind == "round-sap") {
    request.kind = service::SolveRequest::Kind::kRoundSap;
  } else {
    throw UsageError("unknown kind: " + opt.kind +
                     " (want path|ring|round-ufp|round-sap)");
  }
  request.algo = opt.algo;
  request.eps = opt.eps;
  request.seed = opt.seed;
  request.want_certificate = opt.certify;
  request.deadline_ms = opt.deadline_ms;
  request.instance_text = load_text(opt.file);

  const service::Client::SolveOutcome outcome = client.solve(request);
  if (!outcome.ok) {
    std::cerr << "error: " << service::error_code_name(outcome.error_code)
              << ": " << outcome.error_message << "\n";
    return 1;
  }
  std::cerr << "weight " << outcome.response.weight << " ("
            << outcome.response.placed << "/" << outcome.response.total_tasks
            << " tasks) in " << outcome.response.wall_micros
            << "us server wall time\n";
  if (outcome.response.degraded) {
    std::cerr << "note: deadline expired server-side; result is the "
                 "budget-capped approximation (skipped: "
              << (outcome.response.skipped.empty() ? "-"
                                                   : outcome.response.skipped)
              << ")\n";
  }
  if (outcome.response.is_round) {
    std::cerr << "rounds " << outcome.response.rounds << "\n";
  }
  if (opt.certify) {
    // Trust, but verify: re-check the server's certificate locally through
    // the independent checker before reporting success.
    if (outcome.response.certificate_text.empty()) {
      std::cerr << "error: server returned no certificate (pre-certification "
                   "server, or the solve was not certifiable)\n";
      return 1;
    }
    std::istringstream cert_is(outcome.response.certificate_text);
    const cert::Certificate c = read_certificate(cert_is);
    std::istringstream inst_is(request.instance_text);
    std::istringstream sol_is(outcome.response.solution_text);
    const cert::CheckResult check =
        opt.ring ? cert::check_certificate(read_ring_instance(inst_is),
                                           read_ring_solution(sol_is), c)
                 : cert::check_certificate(read_path_instance(inst_is),
                                           read_sap_solution(sol_is), c);
    print_cert_summary(c, check.valid);
    if (!check.valid) {
      std::cerr << "certificate REJECTED: " << check.reason << "\n";
      return 1;
    }
    if (!opt.cert_out_path.empty()) {
      write_certificate_to(opt.cert_out_path, c);
    }
  }
  std::cout << outcome.response.solution_text;
  return 0;
}

int dispatch(const std::string& command, const Options& opt) {
  if (command == "gen") {
    Rng rng(opt.seed);
    if (opt.nba) {
      round::RoundGenOptions gen;
      gen.base.num_edges = opt.edges;
      gen.base.num_tasks = opt.tasks;
      write_path_instance(std::cout, round::generate_round_instance(gen, rng));
      return 0;
    }
    PathGenOptions gen;
    gen.num_edges = opt.edges;
    gen.num_tasks = opt.tasks;
    write_path_instance(std::cout, generate_path_instance(gen, rng));
    return 0;
  }

  if (command == "round") return run_round(opt);
  if (command == "serve") return run_serve(opt);
  if (command == "request") return run_request(opt);
  if (command == "certify") return run_certify(opt);

  if (command == "batch") {
    BatchOptions options;
    options.num_instances = opt.count;
    options.base_seed = opt.seed;
    options.keep_cases = opt.cases;

    BatchCaseFn fn;
    if (opt.kind == "round-ufp" || opt.kind == "round-sap") {
      RoundBatchConfig config;
      config.gen.base.num_edges = opt.edges;
      config.gen.base.num_tasks = opt.tasks;
      config.gen.base.profile = parse_profile(opt.profile);
      config.gen.base.demand = parse_demand(opt.demand);
      config.kind = round::parse_round_kind(opt.kind);
      fn = make_round_batch_case(config);
    } else if (!opt.kind.empty()) {
      throw UsageError("unknown batch kind: " + opt.kind +
                       " (want round-ufp|round-sap)");
    } else if (opt.ring) {
      RingBatchConfig config;
      config.gen.num_edges = opt.edges;
      config.gen.num_tasks = opt.tasks;
      config.solver.path.eps = opt.eps;
      config.certify = opt.certify;
      fn = make_ring_batch_case(config);
    } else {
      PathBatchConfig config;
      config.gen.num_edges = opt.edges;
      config.gen.num_tasks = opt.tasks;
      config.gen.profile = parse_profile(opt.profile);
      config.gen.demand = parse_demand(opt.demand);
      config.solver.eps = opt.eps;
      config.certify = opt.certify;
      fn = make_path_batch_case(config);
    }

    ThreadPool pool(opt.threads);
    const BatchReport report = run_batch(options, fn, pool);

    BatchJsonOptions json;
    json.include_timings = opt.timings;
    json.include_cases = opt.cases;
    if (opt.out_path.empty()) {
      write_batch_json(std::cout, report, json);
    } else {
      std::ofstream out(opt.out_path);
      if (!out) throw std::runtime_error("cannot open " + opt.out_path);
      write_batch_json(out, report, json);
    }
    std::cerr << "batch: " << report.solved << "/" << report.num_instances
              << " solved on " << report.threads << " threads in "
              << report.total_seconds << "s\n";
    return 0;
  }

  const PathInstance inst = load(opt.file);
  if (command == "exact") {
    const SapExactResult exact = sap_exact_profile_dp(inst);
    std::cerr << "optimum " << exact.weight
              << (exact.proven_optimal ? "" : " (lower bound: beam cap hit)")
              << "\n";
    write_sap_solution(std::cout, exact.solution);
    return 0;
  }
  if (command == "bound") {
    std::cout << ufpp_lp_upper_bound(inst) << "\n";
    return 0;
  }
  if (command != "solve") throw UsageError("unknown subcommand: " + command);

  SolverParams params;
  params.eps = opt.eps;
  params.seed = opt.seed;
  SapSolution sol;
  if (opt.algo == "full") {
    sol = solve_sap(inst, params);
  } else if (opt.algo == "uniform") {
    sol = solve_sap_uniform(inst);
  } else if (opt.algo == "small") {
    sol = solve_small_tasks(inst, all_ids(inst), params);
  } else if (opt.algo == "medium") {
    sol = solve_medium_tasks(inst, all_ids(inst), params);
  } else if (opt.algo == "large") {
    sol = solve_large_tasks(inst, all_ids(inst), params);
  } else {
    throw UsageError("unknown algorithm: " + opt.algo);
  }
  const VerifyResult check = verify_sap(inst, sol);
  if (!check) {
    std::cerr << "INTERNAL ERROR: infeasible solution: " << check.reason
              << "\n";
    return 1;
  }
  std::cerr << "weight " << sol.weight(inst) << " (" << sol.size() << "/"
            << inst.num_tasks() << " tasks)\n";
  if (opt.certify) {
    const cert::CertifyOutcome outcome = cert::certify_solution(inst, sol);
    if (!outcome.certified) {
      std::cerr << "error: cannot certify: " << outcome.detail << "\n";
      return 1;
    }
    const cert::CheckResult cert_check =
        cert::check_certificate(inst, sol, outcome.cert);
    if (!opt.cert_out_path.empty()) {
      write_certificate_to(opt.cert_out_path, outcome.cert);
    }
    print_cert_summary(outcome.cert, cert_check.valid);
    if (!cert_check.valid) {
      std::cerr << "certificate REJECTED: " << cert_check.reason << "\n";
      return 1;
    }
  }
  write_sap_solution(std::cout, sol);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("");
  try {
    return dispatch(argv[1], parse_options(argc, argv));
  } catch (const UsageError& error) {
    return usage_error(error.what());
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
