// Banner-advertisement scenario from the paper's introduction: the resource
// is a banner of fixed pixel height displayed over a sequence of time
// slots; each advertisement requests a contiguous vertical slice of the
// banner for a contiguous range of slots and pays a fixed price. A SAP
// solution is a schedule that never moves an ad vertically mid-flight.
//
// The example compares the SAP pipeline against the UFPP relaxation (ads
// allowed to be split vertically) to show the price of contiguity.
#include <cstdio>

#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"

int main() {
  using namespace sap;
  Rng rng(77);

  constexpr std::size_t kSlots = 16;     // schedule horizon
  constexpr Value kBannerHeight = 24;    // pixels / grid rows

  struct Campaign {
    const char* name;
    std::size_t count;
    Value min_rows, max_rows;
    EdgeId min_len, max_len;
    Weight min_price, max_price;
  };
  const Campaign campaigns[] = {
      {"skyscraper", 6, 10, 16, 2, 4, 60, 120},
      {"leaderboard", 10, 4, 8, 4, 10, 30, 80},
      {"button", 20, 1, 3, 1, 6, 5, 25},
  };

  std::vector<Task> ads;
  for (const Campaign& c : campaigns) {
    for (std::size_t i = 0; i < c.count; ++i) {
      const auto len = static_cast<EdgeId>(
          rng.uniform_int(c.min_len, c.max_len));
      const auto first = static_cast<EdgeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(kSlots) - len));
      ads.push_back({first, static_cast<EdgeId>(first + len - 1),
                     rng.uniform_int(c.min_rows, c.max_rows),
                     rng.uniform_int(c.min_price, c.max_price)});
    }
  }

  const PathInstance banner(std::vector<Value>(kSlots, kBannerHeight), ads);

  SolveReport report;
  const SapSolution schedule = solve_sap(banner, {}, &report);
  const VerifyResult ok = verify_sap(banner, schedule);

  std::printf("banner %zu slots x %lld rows, %zu ads offered\n", kSlots,
              static_cast<long long>(kBannerHeight), ads.size());
  std::printf("scheduled %zu ads, revenue %lld (feasible: %s)\n",
              schedule.size(),
              static_cast<long long>(schedule.weight(banner)),
              ok ? "yes" : ok.reason.c_str());

  // Price of contiguity: UFPP (splittable placement) exact optimum.
  const UfppExactResult ufpp = ufpp_exact(banner);
  std::printf("UFPP optimum (ads may be split vertically): %lld%s\n",
              static_cast<long long>(ufpp.weight),
              ufpp.proven_optimal ? "" : " (node budget hit)");
  const RatioMeasurement m = measure_ratio(banner, schedule);
  std::printf("upper bound on OPT_SAP: %.1f (%s); measured ratio %.3f\n",
              m.bound, m.bound_exact ? "exact oracle" : "LP bound", m.ratio);

  // Render a tiny ASCII picture of edge occupancy.
  std::printf("\nschedule (rows bottom-up; '.' = free):\n");
  for (Value row = kBannerHeight - 1; row >= 0; --row) {
    std::printf("  ");
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      char cell = '.';
      for (const Placement& p : schedule.placements) {
        const Task& t = banner.task(p.task);
        if (t.uses(static_cast<EdgeId>(slot)) && row >= p.height &&
            row < p.height + t.demand) {
          cell = static_cast<char>('a' + p.task % 26);
          break;
        }
      }
      std::putchar(cell);
    }
    std::putchar('\n');
  }
  return ok ? 0 : 1;
}
