// Ring-network scenario (Section 7): wavelength/frequency allocation on a
// SONET-like ring. Each connection picks a clockwise or counter-clockwise
// route and a contiguous frequency band that stays fixed along the route.
#include <cstdio>

#include "src/core/ring_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/model/ring_instance.hpp"

int main() {
  using namespace sap;
  Rng rng(2013);

  RingGenOptions opt;
  opt.num_edges = 12;       // 12 stations around the ring
  opt.num_tasks = 40;       // connection requests
  opt.min_capacity = 16;    // frequency slots per fiber segment
  opt.max_capacity = 48;
  const RingInstance ring = generate_ring_instance(opt, rng);

  std::printf("ring with %zu segments, %zu connection requests\n",
              ring.num_edges(), ring.num_tasks());
  std::printf("segment capacities:");
  for (std::size_t e = 0; e < ring.num_edges(); ++e) {
    std::printf(" %lld", static_cast<long long>(ring.capacity(
                             static_cast<EdgeId>(e))));
  }
  std::printf("\n\n");

  RingSolverParams params;
  RingSolveReport report;
  const RingSapSolution sol = solve_ring_sap(ring, params, &report);
  const VerifyResult ok = verify_ring_sap(ring, sol);

  std::printf("cut edge: %d (capacity %lld)\n", report.cut_edge,
              static_cast<long long>(ring.capacity(report.cut_edge)));
  std::printf("path branch weight:       %lld\n",
              static_cast<long long>(report.path_weight));
  std::printf("through-cut (knapsack):   %lld\n",
              static_cast<long long>(report.knapsack_weight));
  std::printf("winner: %s\n",
              report.winner == RingBranch::kPath ? "path" : "through-cut");
  std::printf("accepted %zu connections, total weight %lld (feasible: %s)\n\n",
              sol.size(), static_cast<long long>(ring.solution_weight(sol)),
              ok ? "yes" : ok.reason.c_str());

  std::printf("connection  route  band\n");
  for (const RingPlacement& p : sol.placements) {
    const RingTask& t = ring.task(p.task);
    std::printf("  %3d  %d->%d  %-4s  [%lld, %lld)\n", p.task, t.start,
                t.end, p.clockwise ? "cw" : "ccw",
                static_cast<long long>(p.height),
                static_cast<long long>(p.height + t.demand));
  }
  return ok ? 0 : 1;
}
