// Memory-allocation scenario (the paper's motivating application): tasks
// are allocation requests alive over a time interval; the path is time, the
// capacity is the heap size, and a SAP solution is an offline allocation in
// which every accepted request receives a fixed contiguous address range
// for its whole lifetime.
//
// The example builds a day of synthetic allocation traffic, runs the SAP
// pipeline at several heap sizes, and prints acceptance and utilization —
// plus the DSA view: the makespan needed to host *all* requests.
#include <cstdio>
#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/dsa/dsa.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"

int main() {
  using namespace sap;
  Rng rng(2016);

  constexpr std::size_t kSlots = 48;  // half-hour slots over a day
  constexpr std::size_t kRequests = 120;

  // Build allocation requests: mostly short/small with a few large spikes.
  std::vector<Task> requests;
  requests.reserve(kRequests);
  while (requests.size() < kRequests) {
    const auto first =
        static_cast<EdgeId>(rng.uniform_int(0, kSlots - 1));
    const auto len = static_cast<EdgeId>(
        std::min<std::int64_t>(rng.uniform_int(1, 12),
                               static_cast<std::int64_t>(kSlots) - first));
    const bool big = rng.bernoulli(0.15);
    const Value bytes = big ? rng.uniform_int(24, 64)   // MiB
                            : rng.uniform_int(1, 8);
    const Weight value = bytes * len;  // value ~ reserved byte-time
    requests.push_back(
        {first, static_cast<EdgeId>(first + len - 1), bytes, value});
  }

  std::printf("offline contiguous memory allocation, %zu requests\n\n",
              requests.size());
  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "heap MiB", "accepted",
              "value", "of total", "feasible");

  for (Value heap : {64, 96, 128, 192, 256}) {
    std::vector<Value> caps(kSlots, heap);
    std::vector<Task> admissible;
    for (const Task& t : requests) {
      if (t.demand <= heap) admissible.push_back(t);
    }
    const PathInstance inst(caps, admissible);
    const SapSolution sol = solve_sap(inst);
    const bool ok = static_cast<bool>(verify_sap(inst, sol));
    const Weight total = inst.total_weight();
    std::printf("%-10lld %-10zu %-12lld %-11.1f%% %-10s\n",
                static_cast<long long>(heap), sol.size(),
                static_cast<long long>(sol.weight(inst)),
                100.0 * static_cast<double>(sol.weight(inst)) /
                    static_cast<double>(total),
                ok ? "yes" : "NO");
  }

  // DSA view: how much heap would hosting *every* request need?
  std::vector<Value> caps(kSlots, Value{1} << 30);
  const PathInstance everything(caps, requests);
  std::vector<TaskId> ids(requests.size());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  const DsaResult dsa = dsa_pack_portfolio(everything, ids);
  std::printf(
      "\nDSA: all %zu requests fit in a heap of %lld MiB "
      "(LOAD lower bound %lld, overhead %.1f%%)\n",
      requests.size(), static_cast<long long>(dsa.makespan),
      static_cast<long long>(dsa.load),
      100.0 * (static_cast<double>(dsa.makespan) /
                   static_cast<double>(dsa.load) -
               1.0));
  return 0;
}
