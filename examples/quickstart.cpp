// Quickstart: build a small SAP instance, run the full (9+eps) pipeline,
// print the resulting placement, and compare with the exact optimum.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/model/verify.hpp"

int main() {
  using namespace sap;

  // A path with 6 edges. Capacities dip in the middle (a congested link).
  //   capacity: 16 16 8 8 16 16
  const std::vector<Value> capacities{16, 16, 8, 8, 16, 16};

  // Tasks: {first edge, last edge, demand, weight}.
  const std::vector<Task> tasks{
      {0, 5, 2, 30},   // a long, thin task crossing everything
      {0, 2, 6, 25},   // wide task ending inside the dip
      {2, 3, 4, 40},   // sits exactly on the congested links
      {3, 5, 6, 25},   // wide task starting inside the dip
      {0, 1, 8, 20},   // tall task on the left plateau
      {4, 5, 8, 20},   // tall task on the right plateau
      {1, 4, 2, 15},   // thin task across the dip
  };

  const PathInstance instance(capacities, tasks);

  SolverParams params;
  params.eps = 0.5;
  SolveReport report;
  const SapSolution solution = solve_sap(instance, params, &report);

  const VerifyResult check = verify_sap(instance, solution);
  std::printf("solution feasible: %s\n", check.ok ? "yes" : check.reason.c_str());
  std::printf("classes: %zu small, %zu medium, %zu large\n",
              report.num_small, report.num_medium, report.num_large);
  std::printf("branch weights: small=%lld medium=%lld large=%lld\n",
              static_cast<long long>(report.small_weight),
              static_cast<long long>(report.medium_weight),
              static_cast<long long>(report.large_weight));

  std::printf("\nplacements (task: edges [s,t], demand, height):\n");
  for (const Placement& p : solution.placements) {
    const Task& t = instance.task(p.task);
    std::printf("  task %2d: [%d,%d] d=%lld h=%lld  (weight %lld)\n",
                p.task, t.first, t.last, static_cast<long long>(t.demand),
                static_cast<long long>(p.height),
                static_cast<long long>(t.weight));
  }

  const SapExactResult opt = sap_exact_profile_dp(instance);
  std::printf("\nalgorithm weight: %lld\n",
              static_cast<long long>(solution.weight(instance)));
  std::printf("exact optimum:    %lld (ratio %.3f)\n",
              static_cast<long long>(opt.weight),
              static_cast<double>(opt.weight) /
                  static_cast<double>(solution.weight(instance)));
  return check.ok ? 0 : 1;
}
