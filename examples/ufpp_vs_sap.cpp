// The price of contiguity (Figure 1 narrative): UFPP allows a task's
// bandwidth to occupy different positions on different edges; SAP pins each
// task to one contiguous band. This example walks through the paper's two
// gap gadgets, then sweeps random workloads to show how large the gap gets
// in practice.
#include <cstdio>
#include <numeric>

#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/gen/paper_instances.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"

int main() {
  using namespace sap;

  std::printf("-- Figure 1(a): non-uniform capacities --\n");
  {
    const PathInstance inst = fig1a_instance();
    std::vector<TaskId> all(inst.num_tasks());
    std::iota(all.begin(), all.end(), TaskId{0});
    std::printf("both tasks as flows: %s\n",
                verify_ufpp(inst, UfppSolution{all}) ? "feasible" : "NO");
    const SapExactResult opt = sap_exact_profile_dp(inst);
    std::printf("best storage allocation keeps %lld of %lld tasks\n",
                static_cast<long long>(opt.weight),
                static_cast<long long>(inst.total_weight()));
    std::printf("why: each task is pinned to height 0 at its own bottleneck "
                "and they collide on the middle edge.\n\n");
  }

  std::printf("-- Figure 1(b): uniform capacities (Chen et al.) --\n");
  {
    const PathInstance inst = fig1b_instance();
    std::vector<TaskId> all(inst.num_tasks());
    std::iota(all.begin(), all.end(), TaskId{0});
    std::printf("all %zu tasks as flows: %s\n", inst.num_tasks(),
                verify_ufpp(inst, UfppSolution{all}) ? "feasible" : "NO");
    const SapExactResult opt = sap_exact_profile_dp(inst);
    std::printf("best storage allocation keeps %lld of %lld tasks\n\n",
                static_cast<long long>(opt.weight),
                static_cast<long long>(inst.total_weight()));
  }

  std::printf("-- random workloads: OPT_UFPP / OPT_SAP --\n");
  std::printf("%-10s %-10s %-12s %-12s %-8s\n", "profile", "demands",
              "UFPP opt", "SAP opt", "gap");
  Rng rng(1848);
  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"}};
  const std::pair<DemandClass, const char*> demands[] = {
      {DemandClass::kSmall, "small"},
      {DemandClass::kLarge, "large"},
      {DemandClass::kMixed, "mixed"}};
  for (const auto& [profile, pname] : profiles) {
    for (const auto& [demand, dname] : demands) {
      Weight ufpp_total = 0;
      Weight sap_total = 0;
      for (int trial = 0; trial < 10; ++trial) {
        PathGenOptions opt;
        opt.num_edges = 8;
        opt.num_tasks = 12;
        opt.profile = profile;
        opt.demand = demand;
        opt.min_capacity = 4;
        opt.max_capacity = 16;
        const PathInstance inst = generate_path_instance(opt, rng);
        const UfppExactResult flows = ufpp_exact(inst);
        const SapExactResult storage = sap_exact_profile_dp(inst);
        if (!flows.proven_optimal || !storage.proven_optimal) continue;
        ufpp_total += flows.weight;
        sap_total += storage.weight;
      }
      std::printf("%-10s %-10s %-12lld %-12lld %.4f\n", pname, dname,
                  static_cast<long long>(ufpp_total),
                  static_cast<long long>(sap_total),
                  sap_total > 0 ? static_cast<double>(ufpp_total) /
                                      static_cast<double>(sap_total)
                                : 1.0);
    }
  }
  std::printf(
      "\ntakeaway: the UFPP/SAP gap exists (the gadgets) but random\n"
      "workloads rarely exhibit it -- contiguity is usually cheap, which\n"
      "is why a constant-factor SAP approximation is the right target.\n");
  return 0;
}
