// Blocking sapd client: one TCP connection, one outstanding request at a
// time. Transport failures throw std::runtime_error; typed server
// rejections (OVERLOADED, BAD_REQUEST, ...) are returned as values so
// callers can implement backoff without exception control flow.
//
// Robustness knobs (ClientOptions):
//   - connect/read/write timeouts so a dead, half-open, or never-replying
//     peer surfaces as a typed DEADLINE_EXCEEDED outcome instead of a hang;
//   - an optional retry policy (jittered exponential backoff, deterministic
//     under a fixed seed) applied by solve_with_retry. Solve requests are
//     idempotent — the server holds no per-request state — so retrying after
//     OVERLOADED or a transport failure is safe. DEADLINE_EXCEEDED is *not*
//     retried: the budget is the caller's contract, and a retry would spend
//     the same budget on the same losing race.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/service/protocol.hpp"
#include "src/util/rng.hpp"

namespace sap::service {

struct RetryPolicy {
  /// Total tries including the first. 1 = no retries.
  int max_attempts = 1;
  /// Backoff before retry k (1-based) is drawn uniformly from
  /// [base/2, base) with base = initial_backoff_ms * growth^(k-1) — the
  /// usual "equal jitter" scheme, capped at max_backoff_ms.
  std::int64_t initial_backoff_ms = 50;
  double growth = 2.0;
  std::int64_t max_backoff_ms = 2'000;
  /// Seed for the jitter stream; a fixed seed gives a reproducible backoff
  /// sequence (asserted by the unit tests).
  std::uint64_t seed = 0;
};

struct ClientOptions {
  /// 0 = OS default for all three. Timeouts apply per syscall, not per
  /// round trip, so a slow-but-live server is not cut off mid-response.
  std::int64_t connect_timeout_ms = 0;
  std::int64_t read_timeout_ms = 0;
  std::int64_t write_timeout_ms = 0;
  RetryPolicy retry;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Resolves `host` (numeric or named) and connects, honouring
  /// connect_timeout_ms. Throws std::runtime_error on failure.
  /// Reconnecting an open client closes the previous connection first.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Outcome of one round trip that reached the server — or that timed out
  /// locally (error_code == kDeadlineExceeded, `local_timeout` set).
  struct SolveOutcome {
    bool ok = false;
    SolveResponse response;  ///< valid when ok
    ErrorCode error_code = ErrorCode::kInternal;  ///< valid when !ok
    std::string error_message;
    /// True when the error was produced by this client's own read/write
    /// timeout rather than by a server rejection frame.
    bool local_timeout = false;
    int attempts = 1;  ///< round trips performed (retries + 1)
  };

  /// Sends a solve request and blocks for the matching response. Throws
  /// std::runtime_error on transport errors (closed connection, protocol
  /// violations); server-side rejections and local read/write timeouts come
  /// back in the outcome.
  [[nodiscard]] SolveOutcome solve(const SolveRequest& request);

  /// Sends `requests` as one kBatchSolveRequest frame and returns one
  /// outcome per request, position-matched. Version negotiation: a server
  /// that predates batching rejects the frame with BAD_REQUEST "unknown
  /// frame type", which this method detects and transparently falls back to
  /// sequential solve() round trips. Any other whole-frame rejection (e.g.
  /// the batch exceeds the server's item limit) is replicated into every
  /// slot. Throws std::runtime_error on transport errors.
  [[nodiscard]] std::vector<SolveOutcome> solve_batch(
      const std::vector<SolveRequest>& requests);

  /// solve() wrapped in the retry policy: reconnects and retries after
  /// OVERLOADED rejections and transport failures, with jittered
  /// exponential backoff. Never retries DEADLINE_EXCEEDED, BAD_REQUEST, or
  /// any other non-transient rejection. Requires a prior connect() (the
  /// remembered endpoint is reused for reconnects).
  [[nodiscard]] SolveOutcome solve_with_retry(const SolveRequest& request);

  /// Fetches the server's stats JSON (see docs/SERVICE.md).
  [[nodiscard]] std::string stats_json();

  /// Backoff (ms) the policy would apply before 1-based retry `attempt`,
  /// consuming the same jitter stream solve_with_retry uses. Exposed so
  /// tests can assert the deterministic schedule; `rng` must start from
  /// Rng(policy.seed).
  [[nodiscard]] static std::int64_t backoff_ms(const RetryPolicy& policy,
                                               int attempt, Rng& rng);

 private:
  struct Reply;
  Reply round_trip(FrameType type, const std::string& payload,
                   FrameType expected);
  void apply_io_timeouts();

  ClientOptions options_;
  int fd_ = -1;
  std::string last_host_;
  std::uint16_t last_port_ = 0;
};

}  // namespace sap::service
