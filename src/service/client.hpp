// Blocking sapd client: one TCP connection, one outstanding request at a
// time. Transport failures throw std::runtime_error; typed server
// rejections (OVERLOADED, BAD_REQUEST, ...) are returned as values so
// callers can implement backoff without exception control flow.
#pragma once

#include <cstdint>
#include <string>

#include "src/service/protocol.hpp"

namespace sap::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Resolves `host` (numeric or named) and connects. Throws
  /// std::runtime_error on failure. Reconnecting an open client closes the
  /// previous connection first.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Outcome of one round trip that reached the server.
  struct SolveOutcome {
    bool ok = false;
    SolveResponse response;  ///< valid when ok
    ErrorCode error_code = ErrorCode::kInternal;  ///< valid when !ok
    std::string error_message;
  };

  /// Sends a solve request and blocks for the matching response. Throws
  /// std::runtime_error on transport errors (closed connection, protocol
  /// violations); server-side rejections come back in the outcome.
  [[nodiscard]] SolveOutcome solve(const SolveRequest& request);

  /// Fetches the server's stats JSON (see docs/SERVICE.md).
  [[nodiscard]] std::string stats_json();

 private:
  struct Reply;
  Reply round_trip(FrameType type, const std::string& payload,
                   FrameType expected);

  int fd_ = -1;
};

}  // namespace sap::service
