#include "src/service/protocol.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace sap::service {
namespace {

void put_u32(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v & 0xff);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xff);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xff);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

/// Splits a payload into lines; `take(key)` consumes one "key value" line.
/// `rest()` hands back everything after the cursor verbatim (the embedded
/// instance/solution text).
class EnvelopeParser {
 public:
  explicit EnvelopeParser(std::string_view payload) : rest_(payload) {}

  std::string_view take(std::string_view key) {
    const std::string_view line = next_line(key);
    if (line.size() < key.size() || line.substr(0, key.size()) != key) {
      fail(std::string("expected '") + std::string(key) + "' line, got '" +
           std::string(line.substr(0, 40)) + "'");
    }
    std::string_view value = line.substr(key.size());
    if (!value.empty() && value.front() != ' ') {
      fail(std::string("expected '") + std::string(key) + "' line, got '" +
           std::string(line.substr(0, 40)) + "'");
    }
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    return value;
  }

  void expect_line(std::string_view literal) {
    const std::string_view line = next_line(literal);
    if (line != literal) {
      fail(std::string("expected '") + std::string(literal) + "', got '" +
           std::string(line.substr(0, 40)) + "'");
    }
  }

  /// Optional-key variant of take(): consumes and returns the value only if
  /// the next line starts with `key`; otherwise leaves the cursor in place
  /// and returns false. This is how additive envelope lines stay
  /// backward-compatible: old peers never emit them, new parsers peek.
  bool take_if(std::string_view key, std::string_view* value_out) {
    if (rest_.empty()) return false;
    const std::size_t nl = rest_.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest_ : rest_.substr(0, nl);
    if (line.size() < key.size() || line.substr(0, key.size()) != key) {
      return false;
    }
    std::string_view value = line.substr(key.size());
    if (!value.empty() && value.front() != ' ') return false;
    rest_ = nl == std::string_view::npos ? std::string_view{}
                                         : rest_.substr(nl + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    *value_out = value;
    return true;
  }

  /// Consumes exactly `n` raw bytes (a length-prefixed nested section).
  std::string_view take_bytes(std::size_t n, const char* what) {
    if (rest_.size() < n) {
      fail(std::string("truncated ") + what + " section: want " +
           std::to_string(n) + " bytes, have " + std::to_string(rest_.size()));
    }
    const std::string_view value = rest_.substr(0, n);
    rest_.remove_prefix(n);
    return value;
  }

  [[nodiscard]] std::string_view rest() const noexcept { return rest_; }

  [[noreturn]] static void fail(const std::string& why) {
    throw std::invalid_argument("sapd protocol: " + why);
  }

 private:
  std::string_view next_line(std::string_view what) {
    if (rest_.empty()) {
      fail(std::string("expected '") + std::string(what) +
           "', got end of payload");
    }
    const std::size_t nl = rest_.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? rest_ : rest_.substr(0, nl);
    rest_ = nl == std::string_view::npos ? std::string_view{}
                                         : rest_.substr(nl + 1);
    return line;
  }

  std::string_view rest_;
};

std::int64_t parse_i64(std::string_view value, const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("trailing bytes");
    return v;
  } catch (const std::exception&) {
    EnvelopeParser::fail(std::string("bad ") + what + " '" +
                         std::string(value.substr(0, 40)) + "'");
  }
}

std::uint64_t parse_u64(std::string_view value, const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("trailing bytes");
    return v;
  } catch (const std::exception&) {
    EnvelopeParser::fail(std::string("bad ") + what + " '" +
                         std::string(value.substr(0, 40)) + "'");
  }
}

double parse_f64(std::string_view value, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("trailing bytes");
    return v;
  } catch (const std::exception&) {
    EnvelopeParser::fail(std::string("bad ") + what + " '" +
                         std::string(value.substr(0, 40)) + "'");
  }
}

/// Hex float: exact decimal-free round trip for eps across the wire.
std::string format_f64(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

}  // namespace

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "INTERNAL";
}

ErrorCode parse_error_code(std::string_view name) {
  if (name == "BAD_REQUEST") return ErrorCode::kBadRequest;
  if (name == "OVERLOADED") return ErrorCode::kOverloaded;
  if (name == "SHUTTING_DOWN") return ErrorCode::kShuttingDown;
  if (name == "INTERNAL") return ErrorCode::kInternal;
  if (name == "DEADLINE_EXCEEDED") return ErrorCode::kDeadlineExceeded;
  throw std::invalid_argument("sapd protocol: unknown error code '" +
                              std::string(name) + "'");
}

void encode_frame_header(unsigned char* out, FrameType type,
                         std::uint32_t payload_length) noexcept {
  put_u32(out, kFrameMagic);
  put_u32(out + 4, static_cast<std::uint32_t>(type));
  put_u32(out + 8, payload_length);
}

bool decode_frame_header(const unsigned char* in, FrameHeader* out) noexcept {
  out->magic = get_u32(in);
  out->type = get_u32(in + 4);
  out->length = get_u32(in + 8);
  return out->magic == kFrameMagic;
}

std::string encode_solve_request(const SolveRequest& request) {
  std::string payload = "sapd-solve v1\n";
  payload += "kind ";
  switch (request.kind) {
    case SolveRequest::Kind::kPath:
      payload += "path";
      break;
    case SolveRequest::Kind::kRing:
      payload += "ring";
      break;
    case SolveRequest::Kind::kRoundUfp:
      payload += "round-ufp";
      break;
    case SolveRequest::Kind::kRoundSap:
      payload += "round-sap";
      break;
  }
  payload += "\nalgo " + request.algo;
  payload += "\neps " + format_f64(request.eps);
  payload += "\nseed " + std::to_string(request.seed);
  if (request.deadline_ms > 0) {
    payload += "\ndeadline_ms " + std::to_string(request.deadline_ms);
  }
  if (request.want_certificate) payload += "\ncertify 1";
  payload += "\ninstance\n";
  payload += request.instance_text;
  return payload;
}

SolveRequest parse_solve_request(std::string_view payload) {
  EnvelopeParser parser(payload);
  parser.expect_line("sapd-solve v1");
  SolveRequest request;
  const std::string_view kind = parser.take("kind");
  if (kind == "path") {
    request.kind = SolveRequest::Kind::kPath;
  } else if (kind == "ring") {
    request.kind = SolveRequest::Kind::kRing;
  } else if (kind == "round-ufp") {
    request.kind = SolveRequest::Kind::kRoundUfp;
  } else if (kind == "round-sap") {
    request.kind = SolveRequest::Kind::kRoundSap;
  } else {
    EnvelopeParser::fail("bad kind '" + std::string(kind.substr(0, 40)) +
                         "' (want path|ring|round-ufp|round-sap)");
  }
  request.algo = std::string(parser.take("algo"));
  if (request.algo.empty() || request.algo.size() > 32) {
    EnvelopeParser::fail("bad algo name");
  }
  request.eps = parse_f64(parser.take("eps"), "eps");
  request.seed = parse_u64(parser.take("seed"), "seed");
  std::string_view deadline;
  if (parser.take_if("deadline_ms", &deadline)) {
    request.deadline_ms = parse_i64(deadline, "deadline_ms");
    if (request.deadline_ms <= 0) {
      EnvelopeParser::fail("bad deadline_ms '" +
                           std::string(deadline.substr(0, 40)) +
                           "' (want a positive integer)");
    }
  }
  std::string_view certify;
  if (parser.take_if("certify", &certify)) {
    if (certify != "0" && certify != "1") {
      EnvelopeParser::fail("bad certify flag '" +
                           std::string(certify.substr(0, 40)) + "' (want 0|1)");
    }
    request.want_certificate = certify == "1";
  }
  parser.expect_line("instance");
  request.instance_text = std::string(parser.rest());
  return request;
}

std::string encode_solve_response(const SolveResponse& response) {
  std::string payload = "sapd-result v1\n";
  payload += "weight " + std::to_string(response.weight);
  payload += "\nplaced " + std::to_string(response.placed);
  payload += "\ntasks " + std::to_string(response.total_tasks);
  payload += "\nwall_micros " + std::to_string(response.wall_micros);
  payload += "\ntelemetry ";
  payload += response.telemetry_json.empty() ? "{}" : response.telemetry_json;
  if (response.is_round) {
    payload += "\nrounds " + std::to_string(response.rounds);
  }
  if (response.degraded) {
    payload += "\ndegraded 1";
    if (!response.skipped.empty()) payload += "\nskipped " + response.skipped;
  }
  if (!response.certificate_text.empty()) {
    payload += "\ncertificate " +
               std::to_string(response.certificate_text.size()) + "\n";
    payload += response.certificate_text;
    payload += "solution\n";
  } else {
    payload += "\nsolution\n";
  }
  payload += response.solution_text;
  return payload;
}

SolveResponse parse_solve_response(std::string_view payload) {
  EnvelopeParser parser(payload);
  parser.expect_line("sapd-result v1");
  SolveResponse response;
  response.weight = parse_i64(parser.take("weight"), "weight");
  response.placed = parse_u64(parser.take("placed"), "placed");
  response.total_tasks = parse_u64(parser.take("tasks"), "tasks");
  response.wall_micros = parse_i64(parser.take("wall_micros"), "wall_micros");
  response.telemetry_json = std::string(parser.take("telemetry"));
  std::string_view rounds;
  if (parser.take_if("rounds", &rounds)) {
    response.is_round = true;
    response.rounds = parse_u64(rounds, "rounds");
  }
  std::string_view degraded;
  if (parser.take_if("degraded", &degraded)) {
    if (degraded != "0" && degraded != "1") {
      EnvelopeParser::fail("bad degraded flag '" +
                           std::string(degraded.substr(0, 40)) +
                           "' (want 0|1)");
    }
    response.degraded = degraded == "1";
    std::string_view skipped;
    if (parser.take_if("skipped", &skipped)) {
      response.skipped = std::string(skipped);
    }
  }
  std::string_view cert_bytes;
  if (parser.take_if("certificate", &cert_bytes)) {
    const std::int64_t n = parse_i64(cert_bytes, "certificate byte count");
    if (n < 0) EnvelopeParser::fail("negative certificate byte count");
    response.certificate_text = std::string(
        parser.take_bytes(static_cast<std::size_t>(n), "certificate"));
  }
  parser.expect_line("solution");
  response.solution_text = std::string(parser.rest());
  return response;
}

std::string encode_batch_solve_request(
    const std::vector<std::string>& items) {
  std::string payload = "sapd-batch v1\n";
  payload += "count " + std::to_string(items.size()) + "\n";
  for (const std::string& item : items) {
    // Inner payloads are length-prefixed raw bytes with an explicit '\n'
    // terminator after the blob: inner text need not end in a newline, and
    // the parser must not have to guess where the next header line starts.
    payload += "request " + std::to_string(item.size()) + "\n";
    payload += item;
    payload += '\n';
  }
  return payload;
}

std::vector<std::string> parse_batch_solve_request(std::string_view payload,
                                                   std::size_t max_items) {
  EnvelopeParser parser(payload);
  parser.expect_line("sapd-batch v1");
  const std::int64_t count = parse_i64(parser.take("count"), "batch count");
  if (count < 1) {
    EnvelopeParser::fail("bad batch count " + std::to_string(count) +
                         " (want at least 1)");
  }
  if (static_cast<std::uint64_t>(count) > max_items) {
    EnvelopeParser::fail("batch count " + std::to_string(count) +
                         " exceeds receiver limit of " +
                         std::to_string(max_items) + " items");
  }
  std::vector<std::string> items;
  items.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t n =
        parse_i64(parser.take("request"), "request byte count");
    if (n < 0) EnvelopeParser::fail("negative request byte count");
    items.emplace_back(
        parser.take_bytes(static_cast<std::size_t>(n), "batch request"));
    if (parser.take_bytes(1, "batch request terminator") != "\n") {
      EnvelopeParser::fail("batch request blob not '\\n'-terminated");
    }
  }
  if (!parser.rest().empty()) {
    EnvelopeParser::fail("trailing bytes after the last batch request");
  }
  return items;
}

std::string encode_batch_solve_response(
    const std::vector<BatchItemResult>& items) {
  std::string payload = "sapd-batch-result v1\n";
  payload += "count " + std::to_string(items.size()) + "\n";
  for (const BatchItemResult& item : items) {
    payload += item.ok ? "ok " : "error ";
    payload += std::to_string(item.payload.size());
    payload += '\n';
    payload += item.payload;
    payload += '\n';
  }
  return payload;
}

std::vector<BatchItemResult> parse_batch_solve_response(
    std::string_view payload, std::size_t max_items) {
  EnvelopeParser parser(payload);
  parser.expect_line("sapd-batch-result v1");
  const std::int64_t count = parse_i64(parser.take("count"), "batch count");
  if (count < 0) EnvelopeParser::fail("negative batch count");
  if (static_cast<std::uint64_t>(count) > max_items) {
    EnvelopeParser::fail("batch count " + std::to_string(count) +
                         " exceeds receiver limit of " +
                         std::to_string(max_items) + " items");
  }
  std::vector<BatchItemResult> items;
  items.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    BatchItemResult item;
    std::string_view size_text;
    if (parser.take_if("ok", &size_text)) {
      item.ok = true;
    } else {
      size_text = parser.take("error");
      item.ok = false;
    }
    const std::int64_t n = parse_i64(size_text, "item byte count");
    if (n < 0) EnvelopeParser::fail("negative item byte count");
    item.payload = std::string(
        parser.take_bytes(static_cast<std::size_t>(n), "batch item"));
    if (parser.take_bytes(1, "batch item terminator") != "\n") {
      EnvelopeParser::fail("batch item blob not '\\n'-terminated");
    }
    items.push_back(std::move(item));
  }
  if (!parser.rest().empty()) {
    EnvelopeParser::fail("trailing bytes after the last batch item");
  }
  return items;
}

std::string encode_error_response(const ErrorResponse& error) {
  std::string payload = "sapd-error v1\ncode ";
  payload += error_code_name(error.code);
  payload += "\nmessage ";
  payload += error.message;
  return payload;
}

ErrorResponse parse_error_response(std::string_view payload) {
  EnvelopeParser parser(payload);
  parser.expect_line("sapd-error v1");
  ErrorResponse error;
  error.code = parse_error_code(parser.take("code"));
  error.message = std::string(parser.take("message"));
  const std::string_view more = parser.rest();
  if (!more.empty()) {
    error.message += '\n';
    error.message += more;
  }
  return error;
}

}  // namespace sap::service
