// Sharded solver workers for sapd: N independent bounded admission queues,
// each drained by its own worker threads, with best-effort CPU affinity so
// a shard's workers stay on their cores (cache-warm solver state, no
// cross-socket queue bouncing). The server routes by canonical instance
// digest, so identical instances always land on the same shard — which also
// makes shard-local coalescing effective and keeps one hot instance from
// bouncing between queues.
//
// Admission is per shard and bounded (`queue_capacity` jobs admitted but
// not yet started); submit() returns kFull instead of buffering unboundedly
// — the caller turns that into a typed OVERLOADED rejection. Work that was
// already admitted and must not be dropped (e.g. a coalesced waiter being
// re-dispatched after its owner's computation degraded) uses
// submit_admitted(), which bypasses the capacity check but still respects
// shutdown.
//
// drain() blocks until every queue is empty and every worker idle; jobs
// submitted *during* the drain by running jobs (re-dispatch) extend it.
// stop() then joins the workers. Jobs must not throw.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sap::service {

class ShardPool {
 public:
  struct Options {
    std::size_t shards = 1;
    /// Worker threads total, divided across shards (each shard gets at
    /// least one). 0 = hardware_concurrency.
    std::size_t threads = 0;
    /// Jobs admitted but not yet started, per shard.
    std::size_t queue_capacity = 64;
    /// Pin each shard's workers to distinct CPUs (Linux; best effort —
    /// failures are ignored). Only applied when shards > 1.
    bool pin_cpus = true;
  };

  enum class Submit { kOk, kFull, kStopped };

  struct ShardGauges {
    std::size_t queue_depth = 0;  ///< admitted, not yet started
    std::size_t active = 0;       ///< running right now
  };

  explicit ShardPool(const Options& options);
  ~ShardPool();  ///< drains and joins

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Shard index a route hash maps to (stable for the pool's lifetime).
  [[nodiscard]] std::size_t shard_of(std::uint64_t route_hash) const noexcept {
    return static_cast<std::size_t>(route_hash % shards_.size());
  }

  /// Enqueues `job` on the shard `route_hash` maps to, subject to that
  /// shard's capacity.
  [[nodiscard]] Submit submit(std::uint64_t route_hash,
                              std::function<void()> job);

  /// Capacity-exempt enqueue for work that was already admitted once and
  /// must run (coalesced-waiter re-dispatch). Still refuses after stop().
  [[nodiscard]] Submit submit_admitted(std::uint64_t route_hash,
                                       std::function<void()> job);

  /// Blocks until all queues are empty and all workers idle.
  void drain();

  /// Runs every queued job, then joins the workers. Idempotent.
  void stop();

  [[nodiscard]] std::vector<ShardGauges> gauges() const;
  [[nodiscard]] ShardGauges totals() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable idle;
    std::deque<std::function<void()>> queue;
    std::size_t active = 0;
    std::vector<std::thread> workers;
  };

  Submit enqueue(std::uint64_t route_hash, std::function<void()> job,
                 bool enforce_capacity);
  void worker_loop(Shard& shard);

  const std::size_t queue_capacity_;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sap::service
