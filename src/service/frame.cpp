#include "src/service/frame.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

namespace sap::service {
namespace {

enum class IoResult { kDone, kEof, kTimedOut, kError };

bool is_timeout_errno(int err) noexcept {
  // SO_RCVTIMEO/SO_SNDTIMEO expiry surfaces as EAGAIN (== EWOULDBLOCK on
  // Linux, but POSIX allows them to differ, so test both).
  return err == EAGAIN || err == EWOULDBLOCK;
}

/// Reads exactly `len` bytes, looping over partial reads and EINTR. kEof is
/// only reported when the peer closes before the *first* byte; a close in
/// the middle is the caller's kTruncated.
IoResult read_exact(int fd, void* buffer, std::size_t len, bool* midway) {
  auto* out = static_cast<unsigned char*>(buffer);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      *midway = got > 0;
      return IoResult::kEof;
    }
    if (errno == EINTR) continue;
    if (is_timeout_errno(errno)) return IoResult::kTimedOut;
    return IoResult::kError;
  }
  return IoResult::kDone;
}

/// Writes exactly `len` bytes with the same partial/EINTR discipline as
/// read_exact. A zero-byte ::write on a blocking stream makes no progress
/// and would spin, so it is reported as kError rather than retried.
IoResult write_exact(int fd, const void* buffer, std::size_t len) {
  const auto* in = static_cast<const unsigned char*>(buffer);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, in + sent, len - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoResult::kError;
    if (errno == EINTR) continue;
    if (is_timeout_errno(errno)) return IoResult::kTimedOut;
    return IoResult::kError;
  }
  return IoResult::kDone;
}

}  // namespace

const char* read_status_name(ReadStatus status) noexcept {
  switch (status) {
    case ReadStatus::kOk:
      return "OK";
    case ReadStatus::kEof:
      return "EOF";
    case ReadStatus::kBadMagic:
      return "BAD_MAGIC";
    case ReadStatus::kTooLarge:
      return "TOO_LARGE";
    case ReadStatus::kTruncated:
      return "TRUNCATED";
    case ReadStatus::kTimedOut:
      return "TIMED_OUT";
    case ReadStatus::kIoError:
      return "IO_ERROR";
  }
  return "IO_ERROR";
}

const char* write_status_name(WriteStatus status) noexcept {
  switch (status) {
    case WriteStatus::kOk:
      return "OK";
    case WriteStatus::kTimedOut:
      return "TIMED_OUT";
    case WriteStatus::kError:
      return "IO_ERROR";
  }
  return "IO_ERROR";
}

ReadStatus read_frame(int fd, Frame* frame, std::size_t max_payload) {
  unsigned char header_bytes[kFrameHeaderBytes];
  bool midway = false;
  switch (read_exact(fd, header_bytes, sizeof(header_bytes), &midway)) {
    case IoResult::kDone:
      break;
    case IoResult::kEof:
      return midway ? ReadStatus::kTruncated : ReadStatus::kEof;
    case IoResult::kTimedOut:
      return ReadStatus::kTimedOut;
    case IoResult::kError:
      return ReadStatus::kIoError;
  }

  FrameHeader header;
  if (!decode_frame_header(header_bytes, &header)) {
    return ReadStatus::kBadMagic;
  }
  if (header.length > max_payload) {
    return ReadStatus::kTooLarge;
  }

  frame->type = header.type;
  frame->payload.resize(header.length);
  if (header.length > 0) {
    switch (read_exact(fd, frame->payload.data(), header.length, &midway)) {
      case IoResult::kDone:
        break;
      case IoResult::kEof:
        return ReadStatus::kTruncated;
      case IoResult::kTimedOut:
        return ReadStatus::kTimedOut;
      case IoResult::kError:
        return ReadStatus::kIoError;
    }
  }
  return ReadStatus::kOk;
}

WriteStatus write_frame_status(int fd, FrameType type,
                               std::string_view payload) {
  // The wire length field is 32-bit; a silently truncated cast here would
  // desync the stream (the peer would read the payload tail as headers).
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    return WriteStatus::kError;
  }
  unsigned char header_bytes[kFrameHeaderBytes];
  encode_frame_header(header_bytes, type,
                      static_cast<std::uint32_t>(payload.size()));
  auto to_write_status = [](IoResult result) {
    return result == IoResult::kTimedOut ? WriteStatus::kTimedOut
                                         : WriteStatus::kError;
  };
  IoResult result = write_exact(fd, header_bytes, sizeof(header_bytes));
  if (result != IoResult::kDone) return to_write_status(result);
  if (!payload.empty()) {
    result = write_exact(fd, payload.data(), payload.size());
    if (result != IoResult::kDone) return to_write_status(result);
  }
  return WriteStatus::kOk;
}

bool write_frame(int fd, FrameType type, std::string_view payload) {
  return write_frame_status(fd, type, payload) == WriteStatus::kOk;
}

}  // namespace sap::service
