#include "src/service/frame.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

namespace sap::service {
namespace {

enum class IoResult { kDone, kEof, kError };

/// Reads exactly `len` bytes, looping over partial reads and EINTR. kEof is
/// only reported when the peer closes before the *first* byte; a close in
/// the middle is the caller's kTruncated.
IoResult read_exact(int fd, void* buffer, std::size_t len, bool* midway) {
  auto* out = static_cast<unsigned char*>(buffer);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      *midway = got > 0;
      return IoResult::kEof;
    }
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
  return IoResult::kDone;
}

bool write_exact(int fd, const void* buffer, std::size_t len) {
  const auto* in = static_cast<const unsigned char*>(buffer);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, in + sent, len - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

const char* read_status_name(ReadStatus status) noexcept {
  switch (status) {
    case ReadStatus::kOk:
      return "OK";
    case ReadStatus::kEof:
      return "EOF";
    case ReadStatus::kBadMagic:
      return "BAD_MAGIC";
    case ReadStatus::kTooLarge:
      return "TOO_LARGE";
    case ReadStatus::kTruncated:
      return "TRUNCATED";
    case ReadStatus::kIoError:
      return "IO_ERROR";
  }
  return "IO_ERROR";
}

ReadStatus read_frame(int fd, Frame* frame, std::size_t max_payload) {
  unsigned char header_bytes[kFrameHeaderBytes];
  bool midway = false;
  switch (read_exact(fd, header_bytes, sizeof(header_bytes), &midway)) {
    case IoResult::kDone:
      break;
    case IoResult::kEof:
      return midway ? ReadStatus::kTruncated : ReadStatus::kEof;
    case IoResult::kError:
      return ReadStatus::kIoError;
  }

  FrameHeader header;
  if (!decode_frame_header(header_bytes, &header)) {
    return ReadStatus::kBadMagic;
  }
  if (header.length > max_payload) {
    return ReadStatus::kTooLarge;
  }

  frame->type = header.type;
  frame->payload.resize(header.length);
  if (header.length > 0) {
    switch (read_exact(fd, frame->payload.data(), header.length, &midway)) {
      case IoResult::kDone:
        break;
      case IoResult::kEof:
        return ReadStatus::kTruncated;
      case IoResult::kError:
        return ReadStatus::kIoError;
    }
  }
  return ReadStatus::kOk;
}

bool write_frame(int fd, FrameType type, std::string_view payload) {
  // The wire length field is 32-bit; a silently truncated cast here would
  // desync the stream (the peer would read the payload tail as headers).
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  unsigned char header_bytes[kFrameHeaderBytes];
  encode_frame_header(header_bytes, type,
                      static_cast<std::uint32_t>(payload.size()));
  if (!write_exact(fd, header_bytes, sizeof(header_bytes))) return false;
  if (!payload.empty() &&
      !write_exact(fd, payload.data(), payload.size())) {
    return false;
  }
  return true;
}

}  // namespace sap::service
