// Length-prefixed frame I/O over POSIX file descriptors (sockets in the
// server/client, pipes in the unit tests). Blocking, EINTR-safe, and
// hardened against untrusted peers: the payload length is validated against
// a caller-supplied ceiling *before* any allocation, and a bad magic or a
// truncated frame is reported as a typed status rather than garbage data.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "src/service/protocol.hpp"

namespace sap::service {

enum class ReadStatus {
  kOk,
  kEof,       ///< clean close at a frame boundary
  kBadMagic,  ///< first 4 bytes are not the protocol magic
  kTooLarge,  ///< declared payload exceeds the receiver's ceiling
  kTruncated, ///< peer closed mid-frame
  kTimedOut,  ///< SO_RCVTIMEO expired before the frame completed
  kIoError,   ///< errno-level read failure
};

[[nodiscard]] const char* read_status_name(ReadStatus status) noexcept;

/// Outcome of writing one frame; mirrors ReadStatus for the send side so a
/// SO_SNDTIMEO expiry (half-open or stalled peer) is distinguishable from a
/// hard reset.
enum class WriteStatus {
  kOk,
  kTimedOut,  ///< SO_SNDTIMEO expired before the frame was fully written
  kError,     ///< errno-level write failure (e.g. EPIPE/ECONNRESET)
};

[[nodiscard]] const char* write_status_name(WriteStatus status) noexcept;

struct Frame {
  std::uint32_t type = 0;  ///< raw wire value; may not name a FrameType
  std::string payload;
};

/// Reads one complete frame into `frame`. On any status other than kOk the
/// frame contents are unspecified and the stream position may be inside a
/// partial frame — the caller must treat the connection as poisoned and
/// close it (optionally after sending a typed error).
[[nodiscard]] ReadStatus read_frame(
    int fd, Frame* frame,
    std::size_t max_payload = kDefaultMaxFramePayload);

/// Writes header + payload, retrying on EINTR / partial writes. On any
/// status other than kOk a partial frame may be on the wire — the caller
/// must treat the connection as poisoned and close it.
[[nodiscard]] WriteStatus write_frame_status(int fd, FrameType type,
                                             std::string_view payload);

/// Convenience wrapper: true iff write_frame_status returned kOk.
[[nodiscard]] bool write_frame(int fd, FrameType type,
                               std::string_view payload);

}  // namespace sap::service
