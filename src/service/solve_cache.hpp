// Bounded LRU cache of encoded solve responses, keyed by the canonical
// instance digest (src/io/canonical.hpp), with in-flight request
// coalescing: concurrent identical solves share one computation and every
// participant receives the byte-identical stored payload.
//
// Lifecycle of one key:
//   acquire(k)  -> kHit      the payload is cached; serve it immediately.
//               -> kOwner    nobody is computing k; the caller must solve
//                            and then publish() or abandon().
//               -> kWaiter   an owner is already solving k; the caller's
//                            waiter id was parked and will be returned by
//                            that owner's publish()/abandon().
//   publish(k)  stores the payload in the LRU (evicting beyond capacity)
//               and returns the parked waiter ids — the caller completes
//               them OUTSIDE the cache lock with the same bytes.
//   abandon(k)  drops the in-flight marker without storing anything and
//               returns the parked waiter ids for individual re-dispatch.
//               Degraded, errored, or deadline-expired computations MUST
//               abandon: a partial or budget-shaped result is a property of
//               one request's deadline, not of the instance, and must never
//               be served to a future request (docs/SERVICE.md).
//
// The cache never invokes callbacks and never blocks on solves — it only
// moves ids and strings under one mutex — so any thread (event loop or
// solver worker) may call any method without lock-ordering concerns.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/io/canonical.hpp"

namespace sap::service {

class SolveCache {
 public:
  enum class Role {
    kHit,       ///< payload returned; nothing to publish
    kOwner,     ///< caller computes, then publish() or abandon()
    kWaiter,    ///< parked behind an in-flight owner
    kDisabled,  ///< capacity 0: caller solves; no publish/abandon needed
  };

  struct Acquired {
    Role role = Role::kDisabled;
    std::string payload;  ///< valid when role == kHit
  };

  /// Monotonic counters + the entry-count gauge for the stats endpoint.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// `max_entries == 0` disables the cache: acquire() always returns
  /// kDisabled and records nothing.
  explicit SolveCache(std::size_t max_entries) : max_entries_(max_entries) {}

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return max_entries_ > 0; }

  /// Looks `key` up; on kWaiter the caller-supplied `waiter_id` is parked
  /// under the in-flight owner. A hit refreshes the entry's LRU position.
  [[nodiscard]] Acquired acquire(const InstanceDigest& key,
                                 std::uint64_t waiter_id);

  /// Resolves an owned in-flight computation with `payload`, storing it and
  /// evicting least-recently-used entries beyond capacity. Returns the
  /// parked waiter ids (possibly empty). No-op (returning {}) when the
  /// cache is disabled or the key is not in flight.
  [[nodiscard]] std::vector<std::uint64_t> publish(const InstanceDigest& key,
                                                   std::string payload);

  /// Drops an owned in-flight computation without caching anything and
  /// returns the parked waiter ids so the caller can re-dispatch each one.
  [[nodiscard]] std::vector<std::uint64_t> abandon(const InstanceDigest& key);

  [[nodiscard]] Stats stats() const;

 private:
  struct DigestHash {
    std::size_t operator()(const InstanceDigest& d) const noexcept {
      return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Entry {
    InstanceDigest key;
    std::string payload;
  };

  const std::size_t max_entries_;

  mutable std::mutex mutex_;
  // LRU order: front = most recent. The map indexes into the list.
  std::list<Entry> lru_;
  std::unordered_map<InstanceDigest, std::list<Entry>::iterator, DigestHash>
      entries_;
  std::unordered_map<InstanceDigest, std::vector<std::uint64_t>, DigestHash>
      in_flight_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sap::service
