// Single-threaded epoll event loop for sapd: non-blocking accept/read/write
// with a per-connection framing state machine, replacing the one
// reader-thread-per-connection model. One loop thread multiplexes every
// connection; solver work still runs on the sharded worker pools
// (shard.hpp), which hand finished responses back to the loop through the
// thread-safe send() — an eventfd wakes the loop, which owns all socket
// I/O.
//
// Responsibilities split:
//   - the loop assembles frames (header validation, payload bounds) and
//     reports complete frames / framing violations through callbacks, all
//     invoked on the loop thread;
//   - callers promise responses with EventConn::add_pending_response() and
//     fulfil each promise with exactly one send(..., completes_pending =
//     true) — possibly from a worker thread; the loop keeps a connection
//     alive (even after peer EOF or a framing error) until every promised
//     response has been enqueued and flushed, preserving the old reader
//     contract "an exiting connection never swallows a response in flight";
//   - backpressure: a connection whose output buffer exceeds the high-water
//     mark stops being read until it drains, so a peer that floods requests
//     and never reads can only pin bounded memory;
//   - poisoning: output that makes no progress for write_stall_timeout
//     (half-open or wedged peer) poisons the connection — buffered output
//     is dropped and the socket torn down — bounding the damage a dead
//     peer can do, like the SO_SNDTIMEO of the blocking design but without
//     a worker thread stuck in send().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/service/frame.hpp"
#include "src/service/protocol.hpp"

namespace sap::service {

class EventLoop;

/// One accepted connection. Shared between the loop and solver workers via
/// shared_ptr; all socket I/O happens on the loop thread.
class EventConn {
 public:
  explicit EventConn(int fd) : fd_(fd) {}
  ~EventConn();

  EventConn(const EventConn&) = delete;
  EventConn& operator=(const EventConn&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_relaxed);
  }

  /// Declares one future send(..., completes_pending = true). Call at
  /// admission time (loop thread) before handing work to another thread.
  void add_pending_response() noexcept {
    pending_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] int pending_responses() const noexcept {
    return pending_responses_.load(std::memory_order_acquire);
  }

 private:
  friend class EventLoop;

  const int fd_;
  std::atomic<bool> poisoned_{false};
  std::atomic<bool> closed_{false};
  std::atomic<int> pending_responses_{0};
  std::atomic<bool> dirty_{false};  ///< queued on the loop's dirty list

  // Output side: shared between send() callers and the loop.
  std::mutex out_mutex;
  std::deque<std::string> outq;
  std::size_t out_bytes = 0;
  std::size_t out_offset = 0;  ///< consumed prefix of outq.front()
  bool close_after_flush = false;

  // Input side and epoll bookkeeping: loop thread only.
  std::string inbuf;
  std::size_t in_offset = 0;  ///< consumed prefix of inbuf
  bool peer_eof = false;
  bool reads_stopped = false;  ///< framing error or drain: ignore input
  bool reads_paused = false;   ///< backpressure: output over high water
  bool registered = false;     ///< fd is in the epoll set
  std::uint32_t epoll_mask = 0;
  /// Guarded by out_mutex (written by the flushing loop, read by the stall
  /// checker).
  std::chrono::steady_clock::time_point last_write_progress{};
};

using ConnPtr = std::shared_ptr<EventConn>;

struct EventLoopOptions {
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Pending output making no progress for this long poisons the
  /// connection (half-open peer shedding).
  std::chrono::milliseconds write_stall_timeout{30'000};
  /// Stop reading a connection whose buffered output exceeds this; resume
  /// below half of it.
  std::size_t output_high_water = 4u << 20;
};

struct EventLoopHandlers {
  /// Loop thread: one complete frame (type is the raw wire value).
  std::function<void(const ConnPtr&, std::uint32_t type, std::string payload)>
      on_frame;
  /// Loop thread: framing violation — status is kBadMagic or kTooLarge
  /// (declared_length is the offending length for kTooLarge). Reading from
  /// the connection has already stopped; the handler typically sends a
  /// typed error with close_after_flush = true.
  std::function<void(const ConnPtr&, ReadStatus status,
                     std::uint32_t declared_length)>
      on_protocol_error;
  /// Loop thread: a connection was accepted (counter hook).
  std::function<void(const ConnPtr&)> on_accept;
};

class EventLoop {
 public:
  EventLoop(const EventLoopOptions& options, EventLoopHandlers handlers);
  ~EventLoop();  ///< drains nothing: call drain_and_stop() first

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Starts the loop thread, accepting on `listen_fd` (which must already
  /// be listening; the loop flips it non-blocking but does not own it).
  void start(int listen_fd);

  /// Stops accepting (removes the listen fd from the loop). Call before
  /// closing the listen fd. Thread-safe.
  void stop_listening();

  /// Enqueues one frame on `conn` and wakes the loop to flush it.
  /// Thread-safe. Returns false (dropping the payload) when the connection
  /// is already closed or poisoned. `completes_pending` consumes one
  /// add_pending_response() promise — it is consumed even when the payload
  /// is dropped, so accounting survives dead connections.
  bool send(const ConnPtr& conn, FrameType type, std::string_view payload,
            bool close_after_flush = false, bool completes_pending = false);

  /// Flushes every connection's remaining output (bounded by the stall
  /// timeout for wedged peers), closes all connections, stops the loop and
  /// joins its thread. Callers must first ensure no more work will be
  /// promised (pending responses drained). Idempotent.
  void drain_and_stop();

  /// Cross-thread wakeups delivered via the eventfd (stats).
  [[nodiscard]] std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void accept_ready();
  void handle_readable(const ConnPtr& conn);
  void process_input(const ConnPtr& conn);
  void flush_output(const ConnPtr& conn);
  void update_epoll_mask(const ConnPtr& conn);
  void maybe_close(const ConnPtr& conn);
  void close_conn(const ConnPtr& conn);
  void check_stalls();
  void mark_dirty(const ConnPtr& conn);
  void wake();

  EventLoopOptions options_;
  EventLoopHandlers handlers_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd
  int listen_fd_ = -1;
  std::atomic<bool> listening_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> wakeups_{0};
  std::thread thread_;

  // Loop thread only.
  std::unordered_map<int, ConnPtr> conns_;

  std::mutex dirty_mutex_;
  std::vector<ConnPtr> dirty_;
};

}  // namespace sap::service
