// sapd: a long-running SAP solver service over loopback/LAN TCP.
//
// Architecture (a miniature inference server, scale-out edition):
//   - ONE epoll event loop thread (event_loop.hpp) owns every socket:
//     non-blocking accept/read/write, per-connection framing state
//     machines, write backpressure and half-open-peer shedding. Stats
//     requests and typed rejections are answered inline on the loop;
//   - solves are routed by the canonical instance digest
//     (io/canonical.hpp) to N sharded worker pools (shard.hpp) with
//     best-effort CPU affinity — identical instances always land on the
//     same shard. Each shard's admission queue is *bounded*: when full the
//     request is rejected immediately with a typed OVERLOADED error
//     (backpressure, never unbounded buffering, never a silent drop);
//   - an optional bounded LRU solve cache (solve_cache.hpp), keyed by the
//     canonical digest, serves repeated instances without solving and
//     coalesces concurrent identical solves into one computation whose
//     byte-identical response fans out to every waiter. Degraded or
//     errored computations are never cached;
//   - a batched frame (kBatchSolveRequest) carries N independent solve
//     payloads in one round trip; items are individually admitted, cached
//     and sharded, and the aggregated response preserves order.
//
// Shutdown contract (SIGTERM-friendly, exercised under ASan): stop() closes
// the listener first, lets every admitted solve finish, flushes every
// buffered response (bounded by the write-stall timeout for wedged peers),
// then joins the loop and the workers. New work arriving while draining
// gets a SHUTTING_DOWN error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cert/certify.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/io/canonical.hpp"
#include "src/io/instance_io.hpp"
#include "src/service/event_loop.hpp"
#include "src/service/protocol.hpp"
#include "src/service/shard.hpp"
#include "src/service/solve_cache.hpp"
#include "src/util/deadline.hpp"
#include "src/util/latency_reservoir.hpp"

namespace sap::service {

/// Named interception points for the fault-injection test seam. Production
/// configs leave `ServerOptions::fault_injector` empty; the chaos harness
/// uses it to stall workers, provoke queue saturation, and time SIGTERM
/// against the degraded-solve window.
enum class FaultPoint {
  kPreSolve,     ///< worker thread: after dequeue, before solving
  kPreFallback,  ///< worker thread: deadline expired, before the fallback
  kPreResponse,  ///< worker thread: response built, before the write
};
using FaultInjector = std::function<void(FaultPoint)>;

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; query Server::port() after start
  std::size_t solver_threads = 0;  ///< 0 = hardware_concurrency
  /// Worker shards the solver threads are split across; instances route to
  /// shards by canonical digest. 1 = the classic single-queue behaviour.
  std::size_t shards = 1;
  /// Solves admitted but not yet started, per shard. Beyond this,
  /// OVERLOADED.
  std::size_t max_queue = 64;
  /// Solve-cache capacity in entries. 0 (default) disables caching AND
  /// in-flight coalescing — repeated identical requests then consume queue
  /// slots like distinct ones, which the admission tests rely on.
  std::size_t cache_entries = 0;
  /// Frame payload ceiling enforced before allocation.
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Items per kBatchSolveRequest frame, enforced before any inner parse.
  std::size_t max_batch_items = kDefaultMaxBatchItems;
  /// Caps applied when parsing network-supplied instance text.
  ReadLimits read_limits{.max_edges = 1'000'000,
                         .max_tasks = 1'000'000,
                         .max_placements = 1'000'000};
  /// Ladder/certification knobs applied when a request opts into a
  /// certificate ("certify 1"). Defaults keep per-request cert cost bounded.
  cert::CertifyOptions certify;
  /// Oracle knobs for `algo exact` requests (the exponential profile DP).
  SapExactOptions exact{.max_states = 5'000'000};
  /// Server-side default solve budget applied when a request carries no
  /// `deadline_ms` line. 0 = unlimited (the pre-deadline behaviour).
  std::int64_t default_deadline_ms = 0;
  /// When a deadline expires mid-request: true (default) falls back to the
  /// budget-capped approximation and marks the response `degraded 1`;
  /// false rejects with a typed DEADLINE_EXCEEDED error instead.
  bool degrade_on_deadline = true;
  /// Buffered response bytes making no progress toward a peer for this
  /// long poison the connection (the event-loop replacement for
  /// SO_SNDTIMEO): a dead or half-open peer can only pin resources for a
  /// bounded time.
  std::chrono::milliseconds send_timeout{30'000};
  /// Pin each shard's workers to distinct CPUs (Linux, best effort; only
  /// applied when shards > 1).
  bool pin_cpus = true;
  /// Fault-injection test seam: invoked at the named points on the worker
  /// thread. Production configs leave it empty.
  FaultInjector fault_injector;
};

/// Monotonic counters + gauges reported by the `stats` request.
struct ServerStats {
  double uptime_seconds = 0.0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_bad = 0;
  std::uint64_t requests_overloaded = 0;
  std::uint64_t requests_shutting_down = 0;
  std::uint64_t requests_internal_error = 0;
  std::uint64_t requests_deadline_exceeded = 0;
  std::uint64_t requests_degraded = 0;  ///< served ok, but degraded
  std::uint64_t stats_requests = 0;
  std::uint64_t batch_requests = 0;  ///< batch frames (items count above)
  std::size_t queue_depth = 0;    ///< admitted, not yet started (all shards)
  std::size_t active_solves = 0;  ///< running on the pools right now
  /// Per-shard gauges, index = shard id.
  std::vector<ShardPool::ShardGauges> shards;
  /// Solve cache counters (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::uint64_t loop_wakeups = 0;  ///< eventfd wakeups of the event loop
  std::size_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Formats a snapshot as the stats-response JSON object (docs/SERVICE.md).
[[nodiscard]] std::string stats_to_json(const ServerStats& stats);

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event loop + sharded solver pools.
  /// Throws std::runtime_error when the address cannot be bound.
  void start();

  /// Bound port (after start()); useful with an ephemeral `port = 0`.
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Graceful shutdown: refuse new work, drain in-flight solves (their
  /// responses are flushed), join every thread. Idempotent.
  void stop();

  [[nodiscard]] ServerStats stats_snapshot() const;

 private:
  struct BatchContext;

  /// Where a finished solve's bytes go: a connection's single-response
  /// frame, or one slot of a batch aggregate.
  struct ResponseTarget {
    ConnPtr conn;
    std::shared_ptr<BatchContext> batch;  ///< null = standalone response
    std::size_t slot = 0;
    bool counts_pending = false;  ///< completion consumes one promise
    std::size_t shard = 0;        ///< latency-reservoir stripe hint
    std::chrono::steady_clock::time_point admitted_at{};
  };

  /// A request parked behind an in-flight identical computation.
  struct WaiterRecord {
    ResponseTarget target;
    SolveRequest request;  ///< kept for re-dispatch if the owner abandons
  };

  void on_frame(const ConnPtr& conn, std::uint32_t type,
                std::string payload);
  void on_protocol_error(const ConnPtr& conn, ReadStatus status,
                         std::uint32_t declared_length);
  void handle_solve_frame(const ConnPtr& conn, std::string payload);
  void handle_batch_frame(const ConnPtr& conn, std::string payload);
  /// Parses, consults the cache, and routes to a shard (loop thread).
  void dispatch_payload(ResponseTarget target, const std::string& payload);
  void dispatch_request(ResponseTarget target, SolveRequest request,
                        bool allow_cache);
  /// Runs one solve and fans the outcome out (worker thread). `cache_key`
  /// is set iff this computation owns an in-flight cache slot.
  void run_and_respond(const ResponseTarget& target,
                       const SolveRequest& request,
                       const std::optional<InstanceDigest>& cache_key);
  /// Pure solve: fills response or rejection; true = served.
  bool run_solve_request(const SolveRequest& request, SolveResponse* response,
                         ErrorResponse* rejection);
  void complete_ok(const ResponseTarget& target, const std::string& payload);
  void complete_error(const ResponseTarget& target, ErrorCode code,
                      const std::string& message);
  void finish_batch_slot(const ResponseTarget& target, bool ok,
                         std::string payload);
  void count_rejection(ErrorCode code);
  /// Pops parked waiters and either completes them with the published
  /// payload or re-dispatches them cache-less after an abandon.
  void settle_waiters(const std::vector<std::uint64_t>& ids,
                      const std::string* published_payload);
  [[nodiscard]] InstanceDigest request_digest(
      const SolveRequest& request) const;
  void record_latency(const ResponseTarget& target);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point started_at_;

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ShardPool> shards_;
  std::unique_ptr<SolveCache> cache_;
  std::unique_ptr<LatencyReservoir> latency_;

  // Parked coalesced waiters, keyed by the id the cache holds. Records are
  // inserted *before* SolveCache::acquire so a publish can never return an
  // id that is not yet here.
  mutable std::mutex waiters_mutex_;
  std::uint64_t next_waiter_id_ = 1;
  std::unordered_map<std::uint64_t, WaiterRecord> waiters_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_bad_{0};
  std::atomic<std::uint64_t> requests_overloaded_{0};
  std::atomic<std::uint64_t> requests_shutting_down_{0};
  std::atomic<std::uint64_t> requests_internal_error_{0};
  std::atomic<std::uint64_t> requests_deadline_exceeded_{0};
  std::atomic<std::uint64_t> requests_degraded_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> batch_requests_{0};
};

}  // namespace sap::service
