// sapd: a long-running SAP solver service over loopback/LAN TCP.
//
// Threading model (a miniature inference server):
//   - one listener thread accepts connections;
//   - one reader thread per connection parses frames and either answers
//     inline (stats, rejections) or admits the solve into a *bounded*
//     admission queue — when the queue is full the request is rejected
//     immediately with a typed OVERLOADED error (backpressure, never
//     unbounded buffering, never a silent drop);
//   - admitted solves run on a shared ThreadPool; the worker writes the
//     response back on the request's connection under a per-connection
//     write lock (a connection may have responses from stats and solves
//     interleaving).
//
// Shutdown contract (SIGTERM-friendly, exercised under ASan): stop() closes
// the listener first, lets every admitted solve finish and flush its
// response, unblocks connection readers, then joins all threads. New work
// arriving while draining gets a SHUTTING_DOWN error.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cert/certify.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/io/instance_io.hpp"
#include "src/service/protocol.hpp"
#include "src/util/deadline.hpp"
#include "src/util/thread_pool.hpp"

namespace sap::service {

/// Named interception points for the fault-injection test seam. Production
/// configs leave `ServerOptions::fault_injector` empty; the chaos harness
/// uses it to stall workers, provoke queue saturation, and time SIGTERM
/// against the degraded-solve window.
enum class FaultPoint {
  kPreSolve,     ///< worker thread: after dequeue, before solving
  kPreFallback,  ///< worker thread: deadline expired, before the fallback
  kPreResponse,  ///< worker thread: response built, before the write
};
using FaultInjector = std::function<void(FaultPoint)>;

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; query Server::port() after start
  std::size_t solver_threads = 0;  ///< 0 = hardware_concurrency
  /// Solves admitted but not yet started. Beyond this, OVERLOADED.
  std::size_t max_queue = 64;
  /// Frame payload ceiling enforced before allocation.
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Caps applied when parsing network-supplied instance text.
  ReadLimits read_limits{.max_edges = 1'000'000,
                         .max_tasks = 1'000'000,
                         .max_placements = 1'000'000};
  /// Ladder/certification knobs applied when a request opts into a
  /// certificate ("certify 1"). Defaults keep per-request cert cost bounded.
  cert::CertifyOptions certify;
  /// Oracle knobs for `algo exact` requests (the exponential profile DP).
  SapExactOptions exact{.max_states = 5'000'000};
  /// Server-side default solve budget applied when a request carries no
  /// `deadline_ms` line. 0 = unlimited (the pre-deadline behaviour).
  std::int64_t default_deadline_ms = 0;
  /// When a deadline expires mid-request: true (default) falls back to the
  /// budget-capped approximation and marks the response `degraded 1`;
  /// false rejects with a typed DEADLINE_EXCEEDED error instead.
  bool degrade_on_deadline = true;
  /// SO_SNDTIMEO applied to accepted sockets: a worker must never block
  /// forever writing to a dead or half-open peer.
  std::chrono::milliseconds send_timeout{30'000};
  /// Fault-injection test seam: invoked at the named points on the worker
  /// thread. Production configs leave it empty.
  FaultInjector fault_injector;
};

/// Monotonic counters + gauges reported by the `stats` request.
struct ServerStats {
  double uptime_seconds = 0.0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_bad = 0;
  std::uint64_t requests_overloaded = 0;
  std::uint64_t requests_shutting_down = 0;
  std::uint64_t requests_internal_error = 0;
  std::uint64_t requests_deadline_exceeded = 0;
  std::uint64_t requests_degraded = 0;  ///< served ok, but degraded
  std::uint64_t stats_requests = 0;
  std::size_t queue_depth = 0;    ///< admitted, not yet started
  std::size_t active_solves = 0;  ///< running on the pool right now
  std::size_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Formats a snapshot as the stats-response JSON object (docs/SERVICE.md).
[[nodiscard]] std::string stats_to_json(const ServerStats& stats);

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the listener + solver pool. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Bound port (after start()); useful with an ephemeral `port = 0`.
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Graceful shutdown: refuse new work, drain in-flight solves (their
  /// responses are flushed), join every thread. Idempotent.
  void stop();

  [[nodiscard]] ServerStats stats_snapshot() const;

 private:
  struct Connection;

  void listener_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_solve_frame(const std::shared_ptr<Connection>& conn,
                          std::string payload);
  /// Returns true when a solution was served (latency samples cover only
  /// successful solves).
  bool run_solve_job(const std::shared_ptr<Connection>& conn,
                     const std::string& payload);
  void send_error(const std::shared_ptr<Connection>& conn, ErrorCode code,
                  const std::string& message);
  void record_latency(double ms);
  void reap_finished_connections();

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::chrono::steady_clock::time_point started_at_;

  mutable std::mutex conn_mutex_;
  std::vector<std::pair<std::thread, std::shared_ptr<Connection>>> conns_;

  // Admission accounting: queued_ + active_ is the in-flight total that
  // stop() drains to zero.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_done_;
  std::size_t queued_ = 0;
  std::size_t active_ = 0;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_bad_{0};
  std::atomic<std::uint64_t> requests_overloaded_{0};
  std::atomic<std::uint64_t> requests_shutting_down_{0};
  std::atomic<std::uint64_t> requests_internal_error_{0};
  std::atomic<std::uint64_t> requests_deadline_exceeded_{0};
  std::atomic<std::uint64_t> requests_degraded_{0};
  std::atomic<std::uint64_t> stats_requests_{0};

  // Bounded reservoir of recent solve latencies for the percentiles.
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::size_t latency_total_ = 0;
  double latency_max_ = 0.0;
};

}  // namespace sap::service
