#include "src/service/client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/service/frame.hpp"

namespace sap::service {

struct Client::Reply {
  bool is_error = false;
  std::string payload;        ///< expected-type payload when !is_error
  ErrorResponse error;        ///< valid when is_error
};

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  std::signal(SIGPIPE, SIG_IGN);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw std::runtime_error("sapd client: cannot resolve " + host + ": " +
                             ::gai_strerror(rc));
  }

  int last_errno = 0;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    throw std::runtime_error("sapd client: cannot connect to " + host + ":" +
                             port_text + ": " +
                             std::string(std::strerror(last_errno)));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client::Reply Client::round_trip(FrameType type, const std::string& payload,
                                 FrameType expected) {
  if (fd_ < 0) throw std::runtime_error("sapd client: not connected");
  if (!write_frame(fd_, type, payload)) {
    close();
    throw std::runtime_error("sapd client: send failed (connection lost)");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_, &frame);
  if (status != ReadStatus::kOk) {
    close();
    throw std::runtime_error(std::string("sapd client: receive failed (") +
                             read_status_name(status) + ")");
  }
  Reply reply;
  if (static_cast<FrameType>(frame.type) == FrameType::kErrorResponse) {
    reply.is_error = true;
    reply.error = parse_error_response(frame.payload);
    return reply;
  }
  if (static_cast<FrameType>(frame.type) != expected) {
    close();
    throw std::runtime_error("sapd client: unexpected response frame type " +
                             std::to_string(frame.type));
  }
  reply.payload = std::move(frame.payload);
  return reply;
}

Client::SolveOutcome Client::solve(const SolveRequest& request) {
  Reply reply = round_trip(FrameType::kSolveRequest,
                           encode_solve_request(request),
                           FrameType::kSolveResponse);
  SolveOutcome outcome;
  if (reply.is_error) {
    outcome.ok = false;
    outcome.error_code = reply.error.code;
    outcome.error_message = std::move(reply.error.message);
    return outcome;
  }
  outcome.ok = true;
  outcome.response = parse_solve_response(reply.payload);
  return outcome;
}

std::string Client::stats_json() {
  Reply reply =
      round_trip(FrameType::kStatsRequest, "", FrameType::kStatsResponse);
  if (reply.is_error) {
    throw std::runtime_error(
        std::string("sapd client: stats rejected: ") +
        error_code_name(reply.error.code) + ": " + reply.error.message);
  }
  return reply.payload;
}

}  // namespace sap::service
