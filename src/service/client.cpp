#include "src/service/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/service/frame.hpp"

namespace sap::service {
namespace {

void set_socket_timeout(int fd, int option, std::int64_t ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// connect(2) with a deadline: flip the socket non-blocking, start the
/// connect, poll for writability, then read SO_ERROR for the real outcome.
/// Returns 0 on success, the failing errno otherwise.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t addrlen,
                         std::int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    return ::connect(fd, addr, addrlen) == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno;
  }
  int result = 0;
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      result = errno;
    } else {
      pollfd pfd{.fd = fd, .events = POLLOUT, .revents = 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        result = ETIMEDOUT;
      } else if (rc < 0) {
        result = errno;
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
          result = errno;
        } else {
          result = so_error;
        }
      }
    }
  }
  // Restore blocking mode; the frame layer expects blocking I/O.
  (void)::fcntl(fd, F_SETFL, flags);
  return result;
}

}  // namespace

struct Client::Reply {
  bool is_error = false;
  std::string payload;        ///< expected-type payload when !is_error
  ErrorResponse error;        ///< valid when is_error
  bool local_timeout = false; ///< error came from this client's own timeout
};

Client::Client(ClientOptions options) : options_(options) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      last_host_(std::move(other.last_host_)),
      last_port_(other.last_port_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    last_host_ = std::move(other.last_host_);
    last_port_ = other.last_port_;
  }
  return *this;
}

void Client::apply_io_timeouts() {
  set_socket_timeout(fd_, SO_RCVTIMEO, options_.read_timeout_ms);
  set_socket_timeout(fd_, SO_SNDTIMEO, options_.write_timeout_ms);
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  std::signal(SIGPIPE, SIG_IGN);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw std::runtime_error("sapd client: cannot resolve " + host + ": " +
                             ::gai_strerror(rc));
  }

  int last_errno = 0;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int err = connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen,
                                         options_.connect_timeout_ms);
    if (err == 0) {
      fd_ = fd;
      break;
    }
    last_errno = err;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    throw std::runtime_error("sapd client: cannot connect to " + host + ":" +
                             port_text + ": " +
                             std::string(std::strerror(last_errno)));
  }
  // The frame layer writes header and payload as separate write(2)s; with
  // Nagle on, the payload would stall behind the peer's delayed ACK (~40ms
  // per request on loopback), dwarfing a cached solve.
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  apply_io_timeouts();
  last_host_ = host;
  last_port_ = port;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client::Reply Client::round_trip(FrameType type, const std::string& payload,
                                 FrameType expected) {
  if (fd_ < 0) throw std::runtime_error("sapd client: not connected");
  const WriteStatus sent = write_frame_status(fd_, type, payload);
  if (sent != WriteStatus::kOk) {
    // A partial frame may be on the wire either way: poison the connection.
    close();
    if (sent == WriteStatus::kTimedOut) {
      Reply reply;
      reply.is_error = true;
      reply.local_timeout = true;
      reply.error = {ErrorCode::kDeadlineExceeded,
                     "client write timed out after " +
                         std::to_string(options_.write_timeout_ms) + " ms"};
      return reply;
    }
    throw std::runtime_error("sapd client: send failed (connection lost)");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_, &frame);
  if (status != ReadStatus::kOk) {
    // Even on a read timeout the response may arrive later and desync the
    // stream, so the connection is poisoned in every non-kOk branch.
    close();
    if (status == ReadStatus::kTimedOut) {
      Reply reply;
      reply.is_error = true;
      reply.local_timeout = true;
      reply.error = {ErrorCode::kDeadlineExceeded,
                     "client read timed out after " +
                         std::to_string(options_.read_timeout_ms) + " ms"};
      return reply;
    }
    throw std::runtime_error(std::string("sapd client: receive failed (") +
                             read_status_name(status) + ")");
  }
  Reply reply;
  if (static_cast<FrameType>(frame.type) == FrameType::kErrorResponse) {
    reply.is_error = true;
    reply.error = parse_error_response(frame.payload);
    return reply;
  }
  if (static_cast<FrameType>(frame.type) != expected) {
    close();
    throw std::runtime_error("sapd client: unexpected response frame type " +
                             std::to_string(frame.type));
  }
  reply.payload = std::move(frame.payload);
  return reply;
}

Client::SolveOutcome Client::solve(const SolveRequest& request) {
  Reply reply = round_trip(FrameType::kSolveRequest,
                           encode_solve_request(request),
                           FrameType::kSolveResponse);
  SolveOutcome outcome;
  if (reply.is_error) {
    outcome.ok = false;
    outcome.error_code = reply.error.code;
    outcome.error_message = std::move(reply.error.message);
    outcome.local_timeout = reply.local_timeout;
    return outcome;
  }
  outcome.ok = true;
  outcome.response = parse_solve_response(reply.payload);
  return outcome;
}

std::vector<Client::SolveOutcome> Client::solve_batch(
    const std::vector<SolveRequest>& requests) {
  if (requests.empty()) return {};
  std::vector<std::string> items;
  items.reserve(requests.size());
  for (const SolveRequest& request : requests) {
    items.push_back(encode_solve_request(request));
  }
  Reply reply = round_trip(FrameType::kBatchSolveRequest,
                           encode_batch_solve_request(items),
                           FrameType::kBatchSolveResponse);
  if (reply.is_error) {
    if (!reply.local_timeout && reply.error.code == ErrorCode::kBadRequest &&
        reply.error.message.find("unknown frame type") != std::string::npos) {
      // Old server: it answered the probe with a typed error and kept the
      // connection usable, so fall back to sequential round trips.
      std::vector<SolveOutcome> outcomes;
      outcomes.reserve(requests.size());
      for (const SolveRequest& request : requests) {
        outcomes.push_back(solve(request));
      }
      return outcomes;
    }
    // Whole-frame rejection (malformed outer envelope, item limit, local
    // timeout): every slot shares the same fate.
    SolveOutcome failed;
    failed.ok = false;
    failed.error_code = reply.error.code;
    failed.error_message = reply.error.message;
    failed.local_timeout = reply.local_timeout;
    return std::vector<SolveOutcome>(requests.size(), failed);
  }
  const std::vector<BatchItemResult> slots =
      parse_batch_solve_response(reply.payload, requests.size());
  if (slots.size() != requests.size()) {
    close();
    throw std::runtime_error(
        "sapd client: batch response count mismatch (sent " +
        std::to_string(requests.size()) + ", got " +
        std::to_string(slots.size()) + ")");
  }
  std::vector<SolveOutcome> outcomes(requests.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].ok) {
      outcomes[i].ok = true;
      outcomes[i].response = parse_solve_response(slots[i].payload);
    } else {
      const ErrorResponse error = parse_error_response(slots[i].payload);
      outcomes[i].ok = false;
      outcomes[i].error_code = error.code;
      outcomes[i].error_message = error.message;
    }
  }
  return outcomes;
}

std::int64_t Client::backoff_ms(const RetryPolicy& policy, int attempt,
                                Rng& rng) {
  double base = static_cast<double>(policy.initial_backoff_ms);
  for (int k = 1; k < attempt; ++k) base *= policy.growth;
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  // Equal jitter: uniform in [base/2, base). Deterministic given the rng
  // state, so a fixed seed reproduces the whole schedule.
  const double jittered = base / 2.0 + rng.uniform01() * (base / 2.0);
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(jittered));
}

Client::SolveOutcome Client::solve_with_retry(const SolveRequest& request) {
  if (last_host_.empty()) {
    throw std::runtime_error("sapd client: solve_with_retry before connect");
  }
  Rng rng(options_.retry.seed);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  SolveOutcome outcome;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool transport_failure = false;
    std::string transport_message;
    try {
      if (!connected()) connect(last_host_, last_port_);
      outcome = solve(request);
    } catch (const std::runtime_error& error) {
      transport_failure = true;
      transport_message = error.what();
    }
    if (!transport_failure) {
      // OVERLOADED is the only transient server rejection: the queue was
      // full at admission time, nothing was solved. Everything else —
      // including DEADLINE_EXCEEDED (server-side or local) — reflects the
      // request itself and will not improve on replay.
      const bool retryable =
          !outcome.ok && outcome.error_code == ErrorCode::kOverloaded;
      if (!retryable) {
        outcome.attempts = attempt;
        return outcome;
      }
    }
    if (attempt == max_attempts) {
      if (transport_failure) {
        throw std::runtime_error("sapd client: " + transport_message +
                                 " (after " + std::to_string(attempt) +
                                 " attempts)");
      }
      outcome.attempts = attempt;
      return outcome;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_ms(options_.retry, attempt, rng)));
  }
  outcome.attempts = max_attempts;
  return outcome;  // unreachable; loop always returns or throws
}

std::string Client::stats_json() {
  Reply reply =
      round_trip(FrameType::kStatsRequest, "", FrameType::kStatsResponse);
  if (reply.is_error) {
    throw std::runtime_error(
        std::string("sapd client: stats rejected: ") +
        error_code_name(reply.error.code) + ": " + reply.error.message);
  }
  return reply.payload;
}

}  // namespace sap::service
