#include "src/service/event_loop.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sap::service {
namespace {

/// Loop tick: the stall checker's granularity; also bounds how late a
/// drain-completion or poison is noticed. Cross-thread sends don't wait for
/// it — the eventfd wakes epoll_wait immediately.
constexpr int kEpollTickMs = 50;

/// Per-readable-event read budget so one firehose connection cannot starve
/// the rest of the loop.
constexpr std::size_t kMaxReadPerEvent = 256u << 10;

constexpr std::size_t kReadChunk = 64u << 10;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

EventConn::~EventConn() {
  if (!closed_.load(std::memory_order_acquire) && fd_ >= 0) ::close(fd_);
}

EventLoop::EventLoop(const EventLoopOptions& options,
                     EventLoopHandlers handlers)
    : options_(options), handlers_(std::move(handlers)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("sapd: epoll_create1 failed: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const std::string why = std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("sapd: eventfd failed: " + why);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  drain_and_stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::start(int listen_fd) {
  listen_fd_ = listen_fd;
  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  listening_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop_listening() {
  if (listening_.exchange(false) && listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  for (;;) {
    if (::write(wake_fd_, &one, sizeof(one)) >= 0 || errno != EINTR) break;
  }
}

void EventLoop::mark_dirty(const ConnPtr& conn) {
  if (!conn->dirty_.exchange(true, std::memory_order_acq_rel)) {
    std::lock_guard lock(dirty_mutex_);
    dirty_.push_back(conn);
  }
}

bool EventLoop::send(const ConnPtr& conn, FrameType type,
                     std::string_view payload, bool close_after_flush,
                     bool completes_pending) {
  bool accepted = false;
  if (!conn->poisoned()) {
    std::string buf;
    buf.resize(kFrameHeaderBytes);
    encode_frame_header(reinterpret_cast<unsigned char*>(buf.data()), type,
                        static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
    std::lock_guard lock(conn->out_mutex);
    if (!conn->closed_.load(std::memory_order_acquire)) {
      conn->out_bytes += buf.size();
      conn->outq.push_back(std::move(buf));
      conn->close_after_flush =
          conn->close_after_flush || close_after_flush;
      accepted = true;
    }
  }
  if (completes_pending) {
    conn->pending_responses_.fetch_sub(1, std::memory_order_acq_rel);
  }
  mark_dirty(conn);
  wake();
  return accepted;
}

void EventLoop::run() {
  epoll_event events[64];
  while (!stopped_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               kEpollTickMs);
    if (n < 0 && errno != EINTR) break;  // epoll fd torn down
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (fd == listen_fd_ && listening_.load(std::memory_order_acquire)) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      const ConnPtr conn = it->second;   // keep alive across callbacks
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        // Hard hangup with nothing left to read: poison and tear down
        // (EPOLLHUP with EPOLLIN means data may still be pending — drain
        // it through the normal read path, which will observe EOF).
        conn->poisoned_.store(true, std::memory_order_release);
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(conn);
      if ((events[i].events & EPOLLOUT) != 0 &&
          conns_.find(fd) != conns_.end()) {
        flush_output(conn);
      }
    }

    // Cross-thread work: connections with freshly enqueued output (or
    // consumed response promises) flagged by send().
    std::vector<ConnPtr> dirty;
    {
      std::lock_guard lock(dirty_mutex_);
      dirty.swap(dirty_);
    }
    for (const ConnPtr& conn : dirty) {
      conn->dirty_.store(false, std::memory_order_release);
      if (!conn->closed_.load(std::memory_order_acquire)) {
        flush_output(conn);
      }
    }

    check_stalls();

    if (draining_.load(std::memory_order_acquire)) {
      // Stop reading everywhere, flush what remains, close as buffers
      // empty; exit once every connection is gone. Wedged peers are
      // bounded by the stall check above.
      std::vector<ConnPtr> open;
      open.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) open.push_back(conn);
      for (const ConnPtr& conn : open) {
        if (!conn->reads_stopped) {
          conn->reads_stopped = true;
          update_epoll_mask(conn);
        }
        bool flushed = false;
        {
          std::lock_guard lock(conn->out_mutex);
          flushed = conn->outq.empty();
        }
        if (flushed && conn->pending_responses() == 0) close_conn(conn);
      }
      if (conns_.empty()) break;
    }
  }
  // Tear down anything left (stop without drain, or epoll failure).
  std::vector<ConnPtr> open;
  open.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) open.push_back(conn);
  for (const ConnPtr& conn : open) close_conn(conn);
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or listener shut down
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<EventConn>(fd);
    {
      std::lock_guard lock(conn->out_mutex);
      conn->last_write_progress = std::chrono::steady_clock::now();
    }
    conns_.emplace(fd, conn);
    update_epoll_mask(conn);
    if (handlers_.on_accept) handlers_.on_accept(conn);
  }
}

void EventLoop::handle_readable(const ConnPtr& conn) {
  if (conn->reads_stopped || conn->reads_paused || conn->peer_eof) return;
  char buf[kReadChunk];
  std::size_t total = 0;
  while (total < kMaxReadPerEvent) {
    const ssize_t n = ::recv(conn->fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->poisoned_.store(true, std::memory_order_release);  // hard error
    close_conn(conn);
    return;
  }
  process_input(conn);
  if (conns_.find(conn->fd_) == conns_.end()) return;  // closed by handler
  update_epoll_mask(conn);
  maybe_close(conn);
}

void EventLoop::process_input(const ConnPtr& conn) {
  while (!conn->reads_stopped) {
    const std::size_t available = conn->inbuf.size() - conn->in_offset;
    if (available < kFrameHeaderBytes) break;
    const auto* base = reinterpret_cast<const unsigned char*>(
        conn->inbuf.data() + conn->in_offset);
    FrameHeader header;
    if (!decode_frame_header(base, &header)) {
      conn->reads_stopped = true;
      if (handlers_.on_protocol_error) {
        handlers_.on_protocol_error(conn, ReadStatus::kBadMagic, 0);
      }
      break;
    }
    if (header.length > options_.max_frame_payload) {
      conn->reads_stopped = true;
      if (handlers_.on_protocol_error) {
        handlers_.on_protocol_error(conn, ReadStatus::kTooLarge,
                                    header.length);
      }
      break;
    }
    if (available < kFrameHeaderBytes + header.length) break;
    std::string payload(
        conn->inbuf.data() + conn->in_offset + kFrameHeaderBytes,
        header.length);
    conn->in_offset += kFrameHeaderBytes + header.length;
    if (handlers_.on_frame) {
      handlers_.on_frame(conn, header.type, std::move(payload));
    }
  }
  // Compact the consumed prefix once it dominates the buffer.
  if (conn->in_offset == conn->inbuf.size()) {
    conn->inbuf.clear();
    conn->in_offset = 0;
  } else if (conn->in_offset > (64u << 10)) {
    conn->inbuf.erase(0, conn->in_offset);
    conn->in_offset = 0;
  }
}

void EventLoop::flush_output(const ConnPtr& conn) {
  if (conn->closed_.load(std::memory_order_acquire)) return;
  if (conn->poisoned()) {
    close_conn(conn);
    return;
  }
  {
    std::lock_guard lock(conn->out_mutex);
    while (!conn->outq.empty()) {
      const std::string& front = conn->outq.front();
      const ssize_t n =
          ::send(conn->fd_, front.data() + conn->out_offset,
                 front.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<std::size_t>(n);
        conn->out_bytes -= static_cast<std::size_t>(n);
        conn->last_write_progress = std::chrono::steady_clock::now();
        if (conn->out_offset == front.size()) {
          conn->outq.pop_front();
          conn->out_offset = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // Peer reset mid-frame: nothing sent later could be framed.
      conn->poisoned_.store(true, std::memory_order_release);
      break;
    }
  }
  if (conn->poisoned()) {
    close_conn(conn);
    return;
  }
  update_epoll_mask(conn);
  maybe_close(conn);
}

void EventLoop::update_epoll_mask(const ConnPtr& conn) {
  bool have_output = false;
  {
    std::lock_guard lock(conn->out_mutex);
    have_output = !conn->outq.empty();
    // Backpressure: a peer that floods requests faster than it reads
    // responses stops being read until its output drains below half the
    // high-water mark; combined with bounded admission this caps the
    // memory any one connection can pin.
    if (conn->out_bytes > options_.output_high_water) {
      conn->reads_paused = true;
    } else if (conn->out_bytes < options_.output_high_water / 2) {
      conn->reads_paused = false;
    }
  }
  std::uint32_t mask = 0;
  if (!conn->peer_eof && !conn->reads_stopped && !conn->reads_paused) {
    mask |= EPOLLIN;
  }
  if (have_output) mask |= EPOLLOUT;
  if (conn->registered && mask == conn->epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn->fd_;
  (void)::epoll_ctl(epoll_fd_,
                    conn->registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD,
                    conn->fd_, &ev);
  conn->registered = true;
  conn->epoll_mask = mask;
}

void EventLoop::maybe_close(const ConnPtr& conn) {
  if (conn->closed_.load(std::memory_order_acquire)) return;
  if (conn->poisoned()) {
    close_conn(conn);
    return;
  }
  bool flushed = false;
  bool close_requested = false;
  {
    std::lock_guard lock(conn->out_mutex);
    flushed = conn->outq.empty();
    close_requested = conn->close_after_flush;
  }
  // A connection closes once it will never produce more output: the peer
  // went away (EOF) or we decided to hang up (close_after_flush) — and
  // everything already promised or buffered is out the door.
  if ((close_requested || conn->peer_eof) && flushed &&
      conn->pending_responses() == 0) {
    close_conn(conn);
  }
}

void EventLoop::close_conn(const ConnPtr& conn) {
  bool drop = false;
  {
    std::lock_guard lock(conn->out_mutex);
    if (!conn->closed_.exchange(true, std::memory_order_acq_rel)) {
      conn->outq.clear();
      conn->out_bytes = 0;
      conn->out_offset = 0;
      drop = true;
    }
  }
  if (!drop) return;
  // FIN the peer before closing so a graceful close flushes through the
  // kernel buffer; a poisoned close is an abort either way.
  (void)::shutdown(conn->fd_, SHUT_RDWR);
  (void)::close(conn->fd_);  // also removes the fd from the epoll set
  conns_.erase(conn->fd_);
}

void EventLoop::check_stalls() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<ConnPtr> stalled;
  for (const auto& [fd, conn] : conns_) {
    bool is_stalled = false;
    {
      std::lock_guard lock(conn->out_mutex);
      is_stalled = !conn->outq.empty() &&
                   now - conn->last_write_progress >
                       options_.write_stall_timeout;
    }
    if (is_stalled) {
      conn->poisoned_.store(true, std::memory_order_release);
      stalled.push_back(conn);
    }
  }
  for (const ConnPtr& conn : stalled) close_conn(conn);
}

void EventLoop::drain_and_stop() {
  if (!thread_.joinable()) return;
  draining_.store(true, std::memory_order_release);
  wake();
  thread_.join();
  stopped_.store(true, std::memory_order_release);
}

}  // namespace sap::service
