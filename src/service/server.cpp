#include "src/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/sapu/sapu_solver.hpp"
#include "src/util/telemetry.hpp"

namespace sap::service {
namespace {

constexpr std::size_t kLatencyReservoirCapacity = 4096;

/// One-line {"name": value, ...} over the (deterministic) counters only;
/// timer seconds are scheduling noise a service client rarely wants.
std::string compact_counters_json(const TelemetryReport& report) {
  std::string json = "{";
  bool first = true;
  for (const auto& [name, value] : report.counters()) {
    if (!first) json += ", ";
    first = false;
    json += '"';
    json += name;  // counter names are plain identifiers
    json += "\": ";
    json += std::to_string(value);
  }
  json += '}';
  return json;
}

std::vector<TaskId> all_task_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

/// Budget-capped heuristic configuration used when a deadline expires and
/// the server degrades instead of rejecting: every stage runs with small
/// polynomial caps, so the fallback completes promptly with no deadline of
/// its own (and therefore never throws DeadlineExceeded).
SolverParams degraded_params(double eps, std::uint64_t seed) {
  SolverParams params;
  params.eps = eps;
  params.seed = seed;
  params.small_backend = SmallTaskBackend::kLocalRatio;  // no LP solves
  params.medium_exact_capacity_limit = 0;  // always the grounded heuristic
  params.large_max_nodes = 100'000;
  return params;
}

}  // namespace

/// Aggregation state for one kBatchSolveRequest frame. Each item's solve
/// writes its own slot (distinct indices, so no lock is needed); the solve
/// that decrements `remaining` to zero encodes and sends the response —
/// the acq_rel decrement orders every slot write before that encode.
struct Server::BatchContext {
  BatchContext(ConnPtr conn_in, std::size_t n)
      : conn(std::move(conn_in)), slots(n), remaining(n) {}

  ConnPtr conn;
  std::vector<BatchItemResult> slots;
  std::atomic<std::size_t> remaining;
};

std::string stats_to_json(const ServerStats& stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"uptime_seconds\": " << stats.uptime_seconds << ",\n";
  os << "  \"connections_accepted\": " << stats.connections_accepted
     << ",\n";
  os << "  \"requests\": {\n";
  os << "    \"ok\": " << stats.requests_ok << ",\n";
  os << "    \"bad_request\": " << stats.requests_bad << ",\n";
  os << "    \"overloaded\": " << stats.requests_overloaded << ",\n";
  os << "    \"shutting_down\": " << stats.requests_shutting_down << ",\n";
  os << "    \"internal\": " << stats.requests_internal_error << ",\n";
  os << "    \"deadline_exceeded\": " << stats.requests_deadline_exceeded
     << ",\n";
  os << "    \"degraded\": " << stats.requests_degraded << ",\n";
  os << "    \"stats\": " << stats.stats_requests << ",\n";
  os << "    \"batch\": " << stats.batch_requests << "\n";
  os << "  },\n";
  os << "  \"queue_depth\": " << stats.queue_depth << ",\n";
  os << "  \"active_solves\": " << stats.active_solves << ",\n";
  os << "  \"shards\": [";
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    if (s != 0) os << ", ";
    os << "{\"queue_depth\": " << stats.shards[s].queue_depth
       << ", \"active\": " << stats.shards[s].active << "}";
  }
  os << "],\n";
  os << "  \"cache\": {\n";
  os << "    \"hits\": " << stats.cache_hits << ",\n";
  os << "    \"misses\": " << stats.cache_misses << ",\n";
  os << "    \"coalesced\": " << stats.cache_coalesced << ",\n";
  os << "    \"evictions\": " << stats.cache_evictions << ",\n";
  os << "    \"entries\": " << stats.cache_entries << "\n";
  os << "  },\n";
  os << "  \"event_loop\": {\n";
  os << "    \"wakeups\": " << stats.loop_wakeups << "\n";
  os << "  },\n";
  os << "  \"latency_ms\": {\n";
  os << "    \"samples\": " << stats.latency_samples << ",\n";
  os << "    \"p50\": " << stats.latency_p50_ms << ",\n";
  os << "    \"p95\": " << stats.latency_p95_ms << ",\n";
  os << "    \"p99\": " << stats.latency_p99_ms << ",\n";
  os << "    \"max\": " << stats.latency_max_ms << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_) throw std::logic_error("sapd: server already started");

  // A peer resetting mid-write must surface as EPIPE, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("sapd: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("sapd: bad bind address '" +
                             options_.bind_address + "' (want IPv4 dotted)");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("sapd: cannot listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + why);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  cache_ = std::make_unique<SolveCache>(options_.cache_entries);

  ShardPool::Options pool_options;
  pool_options.shards = options_.shards == 0 ? 1 : options_.shards;
  pool_options.threads = options_.solver_threads;
  pool_options.queue_capacity = options_.max_queue;
  pool_options.pin_cpus = options_.pin_cpus;
  shards_ = std::make_unique<ShardPool>(pool_options);

  latency_ = std::make_unique<LatencyReservoir>(kLatencyReservoirCapacity,
                                                shards_->shard_count());

  EventLoopOptions loop_options;
  loop_options.max_frame_payload = options_.max_frame_payload;
  loop_options.write_stall_timeout = options_.send_timeout;
  EventLoopHandlers handlers;
  handlers.on_accept = [this](const ConnPtr&) {
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  };
  handlers.on_frame = [this](const ConnPtr& conn, std::uint32_t type,
                             std::string payload) {
    on_frame(conn, type, std::move(payload));
  };
  handlers.on_protocol_error = [this](const ConnPtr& conn, ReadStatus status,
                                      std::uint32_t declared_length) {
    on_protocol_error(conn, status, declared_length);
  };
  loop_ = std::make_unique<EventLoop>(loop_options, std::move(handlers));

  started_at_ = std::chrono::steady_clock::now();
  stopping_ = false;
  running_ = true;
  loop_->start(listen_fd_);
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // After this, every new dispatch (loop thread) rejects with SHUTTING_DOWN,
  // so the shard drain below terminates.
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting, then close the listen socket.
  loop_->stop_listening();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Every admitted solve finishes and enqueues its response (coalesced
  //    waiters re-dispatched by an abandoning owner extend the drain; they
  //    run cache-less, so the drain cannot cascade).
  shards_->drain();

  // 3. Flush buffered responses (bounded by the write-stall timeout for
  //    wedged peers) and join the loop. All response promises were
  //    fulfilled in step 2, so the loop's drain terminates.
  loop_->drain_and_stop();

  // 4. No work left; joining the workers is immediate.
  shards_->stop();
}

void Server::on_frame(const ConnPtr& conn, std::uint32_t type,
                      std::string payload) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kSolveRequest:
      handle_solve_frame(conn, std::move(payload));
      break;
    case FrameType::kBatchSolveRequest:
      handle_batch_frame(conn, std::move(payload));
      break;
    case FrameType::kStatsRequest:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      loop_->send(conn, FrameType::kStatsResponse,
                  stats_to_json(stats_snapshot()));
      break;
    default:
      // Frame boundary intact; answer and keep the connection. This is also
      // what an old server sends a new client probing kBatchSolveRequest,
      // so the client can fall back to sequential frames.
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      loop_->send(conn, FrameType::kErrorResponse,
                  encode_error_response(
                      {ErrorCode::kBadRequest,
                       "unknown frame type " + std::to_string(type)}));
      break;
  }
}

void Server::on_protocol_error(const ConnPtr& conn, ReadStatus status,
                               std::uint32_t declared_length) {
  (void)declared_length;
  requests_bad_.fetch_add(1, std::memory_order_relaxed);
  const std::string message =
      status == ReadStatus::kTooLarge
          ? "frame payload exceeds server limit of " +
                std::to_string(options_.max_frame_payload) + " bytes"
          : "bad frame magic";
  // The stream is poisoned mid-frame; flush the rejection, then close.
  loop_->send(conn, FrameType::kErrorResponse,
              encode_error_response({ErrorCode::kBadRequest, message}),
              /*close_after_flush=*/true);
}

void Server::handle_solve_frame(const ConnPtr& conn, std::string payload) {
  ResponseTarget target;
  target.conn = conn;
  target.counts_pending = true;
  target.admitted_at = std::chrono::steady_clock::now();
  // Promise the response before any other thread can get involved, so the
  // loop keeps the connection alive until this request is answered.
  conn->add_pending_response();
  dispatch_payload(std::move(target), payload);
}

void Server::handle_batch_frame(const ConnPtr& conn, std::string payload) {
  batch_requests_.fetch_add(1, std::memory_order_relaxed);
  // One promise for the whole frame, fulfilled by the aggregated response.
  conn->add_pending_response();

  std::vector<std::string> items;
  try {
    items = parse_batch_solve_request(payload, options_.max_batch_items);
  } catch (const std::invalid_argument& error) {
    // Malformed *outer* envelope: reject the frame as a whole. (A malformed
    // inner item only rejects that slot, below.)
    requests_bad_.fetch_add(1, std::memory_order_relaxed);
    ResponseTarget target;
    target.conn = conn;
    target.counts_pending = true;
    complete_error(target, ErrorCode::kBadRequest, error.what());
    return;
  }

  const auto batch = std::make_shared<BatchContext>(conn, items.size());
  const auto admitted_at = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < items.size(); ++i) {
    ResponseTarget target;
    target.conn = conn;
    target.batch = batch;
    target.slot = i;
    // The batch's single pending promise is consumed by the aggregated
    // send in finish_batch_slot, not by the per-item completions.
    target.counts_pending = false;
    target.admitted_at = admitted_at;
    dispatch_payload(std::move(target), items[i]);
  }
}

void Server::dispatch_payload(ResponseTarget target,
                              const std::string& payload) {
  SolveRequest request;
  try {
    request = parse_solve_request(payload);
  } catch (const std::invalid_argument& error) {
    requests_bad_.fetch_add(1, std::memory_order_relaxed);
    complete_error(target, ErrorCode::kBadRequest, error.what());
    return;
  }
  dispatch_request(std::move(target), std::move(request),
                   /*allow_cache=*/true);
}

void Server::dispatch_request(ResponseTarget target, SolveRequest request,
                              bool allow_cache) {
  if (stopping_.load(std::memory_order_acquire)) {
    count_rejection(ErrorCode::kShuttingDown);
    complete_error(target, ErrorCode::kShuttingDown, "server is draining");
    return;
  }

  // The digest costs a canonicalization pass on the loop thread; skip it
  // when nothing consumes it (cache off, single shard).
  InstanceDigest key{};
  if ((allow_cache && cache_->enabled()) || shards_->shard_count() > 1) {
    key = request_digest(request);
  }
  target.shard = shards_->shard_of(key.hi);

  std::optional<InstanceDigest> cache_key;
  if (allow_cache && cache_->enabled()) {
    // Park the record *before* acquire: a concurrent publish can then never
    // return a waiter id that settle_waiters cannot find.
    std::uint64_t waiter_id = 0;
    {
      std::lock_guard lock(waiters_mutex_);
      waiter_id = next_waiter_id_++;
      waiters_.emplace(waiter_id, WaiterRecord{target, request});
    }
    const SolveCache::Acquired acquired = cache_->acquire(key, waiter_id);
    if (acquired.role == SolveCache::Role::kWaiter) {
      return;  // the in-flight owner will settle this record
    }
    {
      std::lock_guard lock(waiters_mutex_);
      waiters_.erase(waiter_id);
    }
    if (acquired.role == SolveCache::Role::kHit) {
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      // Record before enqueueing the response: once a client holds the
      // reply, a stats snapshot must already include its sample.
      record_latency(target);
      complete_ok(target, acquired.payload);
      return;
    }
    if (acquired.role == SolveCache::Role::kOwner) cache_key = key;
  }

  const ShardPool::Submit admitted = shards_->submit(
      key.hi, [this, target, request = std::move(request), cache_key] {
        run_and_respond(target, request, cache_key);
      });
  if (admitted == ShardPool::Submit::kOk) return;

  if (cache_key) {
    // Drop the in-flight marker we own; acquire() only runs on the loop
    // thread, so no waiter can have parked behind it yet.
    settle_waiters(cache_->abandon(*cache_key), nullptr);
  }
  if (admitted == ShardPool::Submit::kFull) {
    count_rejection(ErrorCode::kOverloaded);
    complete_error(target, ErrorCode::kOverloaded,
                   "admission queue full (" +
                       std::to_string(options_.max_queue) + " pending)");
  } else {
    count_rejection(ErrorCode::kShuttingDown);
    complete_error(target, ErrorCode::kShuttingDown, "server is draining");
  }
}

void Server::run_and_respond(const ResponseTarget& target,
                             const SolveRequest& request,
                             const std::optional<InstanceDigest>& cache_key) {
  if (options_.fault_injector) options_.fault_injector(FaultPoint::kPreSolve);

  SolveResponse response;
  ErrorResponse rejection;
  const bool served = run_solve_request(request, &response, &rejection);

  if (served) {
    const std::string payload = encode_solve_response(response);
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    if (response.degraded) {
      requests_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.fault_injector) {
      options_.fault_injector(FaultPoint::kPreResponse);
    }
    // Settle the cache BEFORE enqueueing our own response: once any client
    // holds a reply, the published entry must already be visible (a
    // sequential identical request must hit, not re-solve or park).
    if (cache_key) {
      if (response.degraded) {
        // A degraded result is shaped by this request's deadline, not by
        // the instance — never cache it; re-dispatch the waiters instead.
        settle_waiters(cache_->abandon(*cache_key), nullptr);
      } else {
        const auto waiters = cache_->publish(*cache_key, payload);
        settle_waiters(waiters, &payload);
      }
    }
    // Likewise record before enqueueing: a stats snapshot taken by a client
    // that holds the reply must already include its latency sample.
    record_latency(target);
    complete_ok(target, payload);
  } else {
    count_rejection(rejection.code);
    if (cache_key) {
      // An error is not a property of the instance either (a transient
      // overload or this request's deadline); waiters each get their own
      // attempt.
      settle_waiters(cache_->abandon(*cache_key), nullptr);
    }
    complete_error(target, rejection.code, rejection.message);
  }
}

bool Server::run_solve_request(const SolveRequest& request,
                               SolveResponse* response,
                               ErrorResponse* rejection) {
  try {
    TelemetryReport telemetry;
    std::ostringstream solution_os;
    const auto solve_start = std::chrono::steady_clock::now();
    // Per-request budget: the client's deadline_ms wins; otherwise the
    // server default applies; otherwise unlimited (the legacy behaviour).
    const std::int64_t budget_ms = request.deadline_ms > 0
                                       ? request.deadline_ms
                                       : options_.default_deadline_ms;
    const Deadline deadline =
        budget_ms > 0 ? Deadline::after_ms(budget_ms) : Deadline::unlimited();
    // Degradation ladder: when a stage's slice runs out, either fall back
    // to the budget-capped approximation (degraded response, `skipped`
    // names the stages cut short) or rethrow into a DEADLINE_EXCEEDED
    // rejection, per options_.degrade_on_deadline.
    auto note_skipped = [response](const std::string& stage) {
      response->degraded = true;
      if (!response->skipped.empty()) response->skipped += ',';
      response->skipped += stage;
    };
    if (request.kind == SolveRequest::Kind::kPath) {
      std::istringstream is(request.instance_text);
      const PathInstance inst = read_path_instance(is, options_.read_limits);
      SolverParams params;
      params.eps = request.eps;
      params.seed = request.seed;
      params.deadline = deadline;
      SapSolution sol;
      {
        TelemetrySession session(&telemetry);
        try {
          if (request.algo == "full") {
            sol = solve_sap(inst, params);
          } else if (request.algo == "exact") {
            SapExactOptions exact = options_.exact;
            exact.deadline = exact.deadline.min(deadline);
            const SapExactResult oracle = sap_exact_profile_dp(inst, exact);
            if (oracle.timed_out) throw DeadlineExceeded("exact oracle");
            sol = oracle.solution;
          } else if (request.algo == "uniform") {
            sol = solve_sap_uniform(inst);
          } else if (request.algo == "small") {
            sol = solve_small_tasks(inst, all_task_ids(inst), params);
          } else if (request.algo == "medium") {
            sol = solve_medium_tasks(inst, all_task_ids(inst), params);
          } else if (request.algo == "large") {
            sol = solve_large_tasks(inst, all_task_ids(inst), params);
          } else {
            throw std::invalid_argument("unknown algo '" + request.algo +
                                        "' (want full|exact|uniform|small|"
                                        "medium|large)");
          }
        } catch (const DeadlineExceeded&) {
          if (!options_.degrade_on_deadline) throw;
          if (options_.fault_injector) {
            options_.fault_injector(FaultPoint::kPreFallback);
          }
          note_skipped("solve." + request.algo);
          sol = solve_sap(inst, degraded_params(request.eps, request.seed));
        }
        if (request.want_certificate) {
          // Certification runs inside the telemetry session (cert.ladder.*
          // counters surface in telemetry_json) and inside the solve timer,
          // so wall_micros reflects the true cost of a certified request.
          // Rungs share the request deadline: one that times out is skipped
          // and the ladder falls through to a cheaper bound.
          cert::CertifyOptions certify = options_.certify;
          certify.ladder.deadline = certify.ladder.deadline.min(deadline);
          const cert::CertifyOutcome outcome =
              cert::certify_solution(inst, sol, certify);
          for (const cert::LadderRungAttempt& attempt :
               outcome.ladder.attempts) {
            if (attempt.timed_out) {
              note_skipped(std::string("cert.") +
                           cert::ub_rung_name(attempt.rung));
            }
          }
          if (outcome.certified) {
            std::ostringstream cert_os;
            write_certificate(cert_os, outcome.cert);
            response->certificate_text = cert_os.str();
          }
        }
      }
      response->weight = sol.weight(inst);
      response->placed = sol.size();
      response->total_tasks = inst.num_tasks();
      write_sap_solution(solution_os, sol);
    } else if (request.kind == SolveRequest::Kind::kRoundUfp ||
               request.kind == SolveRequest::Kind::kRoundSap) {
      if (request.want_certificate) {
        throw std::invalid_argument(
            "certificates are not defined for round kinds");
      }
      std::istringstream is(request.instance_text);
      const PathInstance inst = read_path_instance(is, options_.read_limits);
      const round::RoundKind rkind =
          request.kind == SolveRequest::Kind::kRoundUfp
              ? round::RoundKind::kUfp
              : round::RoundKind::kSap;
      round::RoundAssignment assignment;
      {
        TelemetrySession session(&telemetry);
        try {
          if (request.algo == "full") {
            round::RoundApproxOptions approx;
            approx.deadline = deadline;
            assignment = rkind == round::RoundKind::kUfp
                             ? round::solve_round_ufp_approx(inst, approx)
                             : round::solve_round_sap_approx(inst, approx);
          } else if (request.algo == "exact") {
            round::RoundExactOptions exact;
            exact.deadline = deadline;
            const round::RoundExactResult oracle =
                round::solve_round_exact(inst, rkind, exact);
            if (oracle.timed_out) {
              throw DeadlineExceeded("round exact oracle");
            }
            assignment = oracle.assignment;
          } else {
            throw std::invalid_argument("unknown algo '" + request.algo +
                                        "' for a round kind (want "
                                        "full|exact)");
          }
        } catch (const DeadlineExceeded&) {
          if (!options_.degrade_on_deadline) throw;
          if (options_.fault_injector) {
            options_.fault_injector(FaultPoint::kPreFallback);
          }
          note_skipped("solve." + request.algo);
          // Budget-free fallback: plain first fit (no strip-packing
          // portfolio, no oracle) is polynomial and always yields a valid
          // packing — more rounds instead of a rejection.
          round::RoundApproxOptions fallback;
          fallback.portfolio = false;
          assignment = rkind == round::RoundKind::kUfp
                           ? round::solve_round_ufp_approx(inst, fallback)
                           : round::solve_round_sap_approx(inst, fallback);
        }
      }
      // Round packings place every task; weight reports the packed total.
      response->weight = inst.total_weight();
      response->placed = assignment.total_placements();
      response->total_tasks = inst.num_tasks();
      response->is_round = true;
      response->rounds = assignment.num_rounds();
      write_round_assignment(solution_os, assignment);
    } else {
      std::istringstream is(request.instance_text);
      const RingInstance inst = read_ring_instance(is, options_.read_limits);
      RingSolverParams params;
      params.path.eps = request.eps;
      params.path.seed = request.seed;
      params.path.deadline = deadline;
      RingSapSolution sol;
      {
        TelemetrySession session(&telemetry);
        try {
          sol = solve_ring_sap(inst, params);
        } catch (const DeadlineExceeded&) {
          if (!options_.degrade_on_deadline) throw;
          if (options_.fault_injector) {
            options_.fault_injector(FaultPoint::kPreFallback);
          }
          note_skipped("solve.ring");
          RingSolverParams fallback;
          fallback.path = degraded_params(request.eps, request.seed);
          sol = solve_ring_sap(inst, fallback);
        }
        if (request.want_certificate) {
          cert::CertifyOptions certify = options_.certify;
          certify.ladder.deadline = certify.ladder.deadline.min(deadline);
          const cert::CertifyOutcome outcome =
              cert::certify_solution(inst, sol, certify);
          for (const cert::LadderRungAttempt& attempt :
               outcome.ladder.attempts) {
            if (attempt.timed_out) {
              note_skipped(std::string("cert.") +
                           cert::ub_rung_name(attempt.rung));
            }
          }
          if (outcome.certified) {
            std::ostringstream cert_os;
            write_certificate(cert_os, outcome.cert);
            response->certificate_text = cert_os.str();
          }
        }
      }
      response->weight = inst.solution_weight(sol);
      response->placed = sol.size();
      response->total_tasks = inst.num_tasks();
      write_ring_solution(solution_os, sol);
    }
    response->wall_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - solve_start)
            .count();
    response->telemetry_json = compact_counters_json(telemetry);
    response->solution_text = solution_os.str();
    return true;
  } catch (const std::invalid_argument& error) {
    *rejection = {ErrorCode::kBadRequest, error.what()};
  } catch (const DeadlineExceeded& error) {
    // Reached only with degrade_on_deadline == false (otherwise the inner
    // handler already served the fallback). Must precede std::exception:
    // DeadlineExceeded derives from std::runtime_error.
    *rejection = {ErrorCode::kDeadlineExceeded, error.what()};
  } catch (const std::exception& error) {
    *rejection = {ErrorCode::kInternal, error.what()};
  } catch (...) {
    *rejection = {ErrorCode::kInternal, "unknown solver failure"};
  }
  return false;
}

void Server::complete_ok(const ResponseTarget& target,
                         const std::string& payload) {
  if (target.batch) {
    finish_batch_slot(target, true, payload);
  } else {
    loop_->send(target.conn, FrameType::kSolveResponse, payload,
                /*close_after_flush=*/false,
                /*completes_pending=*/target.counts_pending);
  }
}

void Server::complete_error(const ResponseTarget& target, ErrorCode code,
                            const std::string& message) {
  const std::string payload = encode_error_response({code, message});
  if (target.batch) {
    finish_batch_slot(target, false, payload);
  } else {
    loop_->send(target.conn, FrameType::kErrorResponse, payload,
                /*close_after_flush=*/false,
                /*completes_pending=*/target.counts_pending);
  }
}

void Server::finish_batch_slot(const ResponseTarget& target, bool ok,
                               std::string payload) {
  BatchContext& batch = *target.batch;
  batch.slots[target.slot] = {ok, std::move(payload)};
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    loop_->send(batch.conn, FrameType::kBatchSolveResponse,
                encode_batch_solve_response(batch.slots),
                /*close_after_flush=*/false, /*completes_pending=*/true);
  }
}

void Server::count_rejection(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ErrorCode::kOverloaded:
      requests_overloaded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ErrorCode::kShuttingDown:
      requests_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ErrorCode::kDeadlineExceeded:
      requests_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ErrorCode::kInternal:
      requests_internal_error_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Server::settle_waiters(const std::vector<std::uint64_t>& ids,
                            const std::string* published_payload) {
  for (const std::uint64_t id : ids) {
    WaiterRecord record;
    {
      std::lock_guard lock(waiters_mutex_);
      const auto it = waiters_.find(id);
      if (it == waiters_.end()) continue;
      record = std::move(it->second);
      waiters_.erase(it);
    }
    if (published_payload != nullptr) {
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      record_latency(record.target);
      complete_ok(record.target, *published_payload);
      continue;
    }
    // The owner's computation degraded or failed: its outcome reflects that
    // request's deadline, not the instance, so each waiter gets its own
    // cache-less solve. The waiter was admitted once already; bypass the
    // capacity check so backpressure cannot turn coalescing into a drop.
    const InstanceDigest key = request_digest(record.request);
    const ShardPool::Submit admitted = shards_->submit_admitted(
        key.hi, [this, target = record.target, request = record.request] {
          run_and_respond(target, request, std::nullopt);
        });
    if (admitted != ShardPool::Submit::kOk) {
      count_rejection(ErrorCode::kShuttingDown);
      complete_error(record.target, ErrorCode::kShuttingDown,
                     "server is draining");
    }
  }
}

InstanceDigest Server::request_digest(const SolveRequest& request) const {
  // Everything that shapes the response bytes participates in the key
  // EXCEPT the deadline: a published (necessarily non-degraded) response is
  // a full-quality answer valid under any budget, and degraded responses
  // are never published. eps and seed are mixed bit-exactly.
  InstanceHasher hasher;
  std::uint64_t kind_lane = 1;
  switch (request.kind) {
    case SolveRequest::Kind::kPath:
      kind_lane = 1;
      break;
    case SolveRequest::Kind::kRing:
      kind_lane = 2;
      break;
    case SolveRequest::Kind::kRoundUfp:
      kind_lane = 3;
      break;
    case SolveRequest::Kind::kRoundSap:
      kind_lane = 4;
      break;
  }
  hasher.update_u64(kind_lane);
  hasher.update(request.algo);
  std::uint64_t eps_bits = 0;
  static_assert(sizeof(eps_bits) == sizeof(request.eps));
  std::memcpy(&eps_bits, &request.eps, sizeof(eps_bits));
  hasher.update_u64(eps_bits);
  hasher.update_u64(request.seed);
  hasher.update_u64(request.want_certificate ? 1 : 0);
  hasher.update(canonical_instance_text(request.instance_text));
  return hasher.digest();
}

void Server::record_latency(const ResponseTarget& target) {
  const double ms = 1e3 * std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              target.admitted_at)
                              .count();
  latency_->record(ms, target.shard);
}

ServerStats Server::stats_snapshot() const {
  ServerStats stats;
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  stats.requests_bad = requests_bad_.load(std::memory_order_relaxed);
  stats.requests_overloaded =
      requests_overloaded_.load(std::memory_order_relaxed);
  stats.requests_shutting_down =
      requests_shutting_down_.load(std::memory_order_relaxed);
  stats.requests_internal_error =
      requests_internal_error_.load(std::memory_order_relaxed);
  stats.requests_deadline_exceeded =
      requests_deadline_exceeded_.load(std::memory_order_relaxed);
  stats.requests_degraded = requests_degraded_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  stats.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  if (shards_) {
    stats.shards = shards_->gauges();
    for (const ShardPool::ShardGauges& shard : stats.shards) {
      stats.queue_depth += shard.queue_depth;
      stats.active_solves += shard.active;
    }
  }
  if (cache_) {
    const SolveCache::Stats cache = cache_->stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_coalesced = cache.coalesced;
    stats.cache_evictions = cache.evictions;
    stats.cache_entries = cache.entries;
  }
  if (loop_) stats.loop_wakeups = loop_->wakeups();
  if (latency_) {
    const LatencyReservoir::Snapshot latency = latency_->snapshot();
    stats.latency_samples = latency.samples;
    stats.latency_p50_ms = latency.p50_ms;
    stats.latency_p95_ms = latency.p95_ms;
    stats.latency_p99_ms = latency.p99_ms;
    stats.latency_max_ms = latency.max_ms;
  }
  return stats;
}

}  // namespace sap::service
