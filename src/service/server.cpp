#include "src/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/sapu/sapu_solver.hpp"
#include "src/service/frame.hpp"
#include "src/util/stats.hpp"
#include "src/util/telemetry.hpp"

namespace sap::service {
namespace {

constexpr std::size_t kLatencyRingCapacity = 4096;

/// One-line {"name": value, ...} over the (deterministic) counters only;
/// timer seconds are scheduling noise a service client rarely wants.
std::string compact_counters_json(const TelemetryReport& report) {
  std::string json = "{";
  bool first = true;
  for (const auto& [name, value] : report.counters()) {
    if (!first) json += ", ";
    first = false;
    json += '"';
    json += name;  // counter names are plain identifiers
    json += "\": ";
    json += std::to_string(value);
  }
  json += '}';
  return json;
}

std::vector<TaskId> all_task_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

void set_send_timeout(int fd, std::chrono::milliseconds timeout) {
  // A worker must never block forever writing to a dead or half-open peer.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Budget-capped heuristic configuration used when a deadline expires and
/// the server degrades instead of rejecting: every stage runs with small
/// polynomial caps, so the fallback completes promptly with no deadline of
/// its own (and therefore never throws DeadlineExceeded).
SolverParams degraded_params(double eps, std::uint64_t seed) {
  SolverParams params;
  params.eps = eps;
  params.seed = seed;
  params.small_backend = SmallTaskBackend::kLocalRatio;  // no LP solves
  params.medium_exact_capacity_limit = 0;  // always the grounded heuristic
  params.large_max_nodes = 100'000;
  return params;
}

}  // namespace

/// Shared between the reader thread and solver workers; the fd closes when
/// the last holder lets go, so a response can always be flushed.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::mutex write_mutex;
  std::atomic<bool> reader_done{false};
  // Set on the first failed response write (send timeout or hard error): a
  // partial frame may be on the wire, so nothing sent afterwards could be
  // framed correctly. Poisoning shuts the socket down, which also unblocks
  // the reader and makes every later write on this connection fail fast
  // instead of re-paying the send timeout per queued response.
  std::atomic<bool> poisoned{false};

  void poison() {
    if (!poisoned.exchange(true)) ::shutdown(fd, SHUT_RDWR);
  }

  // Solves admitted from this connection whose responses are not yet
  // written. The reader waits for zero before shutting the socket down, so
  // an exiting connection never swallows a response in flight.
  std::mutex inflight_mutex;
  std::condition_variable inflight_done;
  int inflight = 0;

  void job_admitted() {
    std::lock_guard lock(inflight_mutex);
    ++inflight;
  }
  void job_responded() {
    std::lock_guard lock(inflight_mutex);
    --inflight;
    if (inflight == 0) inflight_done.notify_all();
  }
  void wait_for_inflight() {
    std::unique_lock lock(inflight_mutex);
    inflight_done.wait(lock, [this] { return inflight == 0; });
  }
};

std::string stats_to_json(const ServerStats& stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"uptime_seconds\": " << stats.uptime_seconds << ",\n";
  os << "  \"connections_accepted\": " << stats.connections_accepted
     << ",\n";
  os << "  \"requests\": {\n";
  os << "    \"ok\": " << stats.requests_ok << ",\n";
  os << "    \"bad_request\": " << stats.requests_bad << ",\n";
  os << "    \"overloaded\": " << stats.requests_overloaded << ",\n";
  os << "    \"shutting_down\": " << stats.requests_shutting_down << ",\n";
  os << "    \"internal\": " << stats.requests_internal_error << ",\n";
  os << "    \"deadline_exceeded\": " << stats.requests_deadline_exceeded
     << ",\n";
  os << "    \"degraded\": " << stats.requests_degraded << ",\n";
  os << "    \"stats\": " << stats.stats_requests << "\n";
  os << "  },\n";
  os << "  \"queue_depth\": " << stats.queue_depth << ",\n";
  os << "  \"active_solves\": " << stats.active_solves << ",\n";
  os << "  \"latency_ms\": {\n";
  os << "    \"samples\": " << stats.latency_samples << ",\n";
  os << "    \"p50\": " << stats.latency_p50_ms << ",\n";
  os << "    \"p95\": " << stats.latency_p95_ms << ",\n";
  os << "    \"p99\": " << stats.latency_p99_ms << ",\n";
  os << "    \"max\": " << stats.latency_max_ms << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_) throw std::logic_error("sapd: server already started");

  // A peer resetting mid-write must surface as EPIPE, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("sapd: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("sapd: bad bind address '" +
                             options_.bind_address + "' (want IPv4 dotted)");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("sapd: cannot listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + why);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(options_.solver_threads);
  started_at_ = std::chrono::steady_clock::now();
  stopping_ = false;
  running_ = true;
  listener_ = std::thread([this] { listener_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  {
    // stopping_ flips inside the admission lock: after this block no new
    // solve can enter the queue, so the drain below terminates.
    std::lock_guard lock(jobs_mutex_);
    stopping_ = true;
  }

  // 1. Stop accepting: wake the listener out of accept() and join it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: every admitted solve finishes and flushes its response.
  {
    std::unique_lock lock(jobs_mutex_);
    jobs_done_.wait(lock, [this] { return queued_ + active_ == 0; });
  }

  // 3. Unblock and join connection readers.
  {
    std::lock_guard lock(conn_mutex_);
    for (auto& [thread, conn] : conns_) ::shutdown(conn->fd, SHUT_RD);
  }
  for (;;) {
    std::pair<std::thread, std::shared_ptr<Connection>> entry;
    {
      std::lock_guard lock(conn_mutex_);
      if (conns_.empty()) break;
      entry = std::move(conns_.back());
      conns_.pop_back();
    }
    if (entry.first.joinable()) entry.first.join();
  }

  // 4. The pool has no pending work left; joining it is immediate.
  pool_.reset();
}

void Server::listener_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (stop()) or unrecoverable
    }
    if (stopping_) {
      ::close(fd);
      continue;
    }
    set_send_timeout(fd, options_.send_timeout);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    std::thread reader([this, conn] { connection_loop(conn); });
    {
      std::lock_guard lock(conn_mutex_);
      conns_.emplace_back(std::move(reader), conn);
    }
    reap_finished_connections();
  }
}

void Server::reap_finished_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard lock(conn_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->reader_done.load()) {
        finished.push_back(std::move(it->first));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& thread : finished) {
    if (thread.joinable()) thread.join();
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    Frame frame;
    const ReadStatus status =
        read_frame(conn->fd, &frame, options_.max_frame_payload);
    if (status == ReadStatus::kEof) break;
    if (status == ReadStatus::kBadMagic || status == ReadStatus::kTooLarge) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, ErrorCode::kBadRequest,
                 status == ReadStatus::kTooLarge
                     ? "frame payload exceeds server limit of " +
                           std::to_string(options_.max_frame_payload) +
                           " bytes"
                     : "bad frame magic");
      break;  // the stream is poisoned mid-frame; close it
    }
    if (status != ReadStatus::kOk) break;  // truncated / io error

    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::kSolveRequest:
        handle_solve_frame(conn, std::move(frame.payload));
        break;
      case FrameType::kStatsRequest: {
        stats_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::string json = stats_to_json(stats_snapshot());
        std::lock_guard lock(conn->write_mutex);
        if (!write_frame(conn->fd, FrameType::kStatsResponse, json)) {
          conn->reader_done = true;
          return;
        }
        break;
      }
      default:
        requests_bad_.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, ErrorCode::kBadRequest,
                   "unknown frame type " + std::to_string(frame.type));
        break;  // frame boundary intact; keep the connection
    }
  }
  // Flush every admitted solve's response, then FIN the peer; the fd itself
  // closes when the last shared_ptr (possibly a worker's) lets go.
  conn->wait_for_inflight();
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->reader_done = true;
}

void Server::handle_solve_frame(const std::shared_ptr<Connection>& conn,
                                std::string payload) {
  enum class Rejection { kNone, kShuttingDown, kOverloaded };
  Rejection rejection = Rejection::kNone;
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) {
      requests_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      rejection = Rejection::kShuttingDown;
    } else if (queued_ >= options_.max_queue) {
      requests_overloaded_.fetch_add(1, std::memory_order_relaxed);
      rejection = Rejection::kOverloaded;
    } else {
      ++queued_;
      conn->job_admitted();
      const auto admitted_at = std::chrono::steady_clock::now();
      pool_->submit([this, conn, admitted_at,
                     payload = std::move(payload)]() mutable {
        {
          std::lock_guard job_lock(jobs_mutex_);
          --queued_;
          ++active_;
        }
        if (options_.fault_injector) {
          options_.fault_injector(FaultPoint::kPreSolve);
        }
        const bool served = run_solve_job(conn, payload);
        conn->job_responded();
        if (served) {
          record_latency(
              1e3 * std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - admitted_at)
                        .count());
        }
        {
          std::lock_guard job_lock(jobs_mutex_);
          --active_;
          if (queued_ + active_ == 0) jobs_done_.notify_all();
        }
      });
      return;
    }
  }
  // Rejected: say so immediately — backpressure must be visible, not a hang.
  if (rejection == Rejection::kShuttingDown) {
    send_error(conn, ErrorCode::kShuttingDown, "server is draining");
  } else {
    send_error(conn, ErrorCode::kOverloaded,
               "admission queue full (" +
                   std::to_string(options_.max_queue) + " pending)");
  }
}

bool Server::run_solve_job(const std::shared_ptr<Connection>& conn,
                           const std::string& payload) {
  SolveResponse response;
  ErrorResponse rejection;
  bool ok = false;
  try {
    const SolveRequest request = parse_solve_request(payload);
    TelemetryReport telemetry;
    std::ostringstream solution_os;
    const auto solve_start = std::chrono::steady_clock::now();
    // Per-request budget: the client's deadline_ms wins; otherwise the
    // server default applies; otherwise unlimited (the legacy behaviour).
    const std::int64_t budget_ms = request.deadline_ms > 0
                                       ? request.deadline_ms
                                       : options_.default_deadline_ms;
    const Deadline deadline =
        budget_ms > 0 ? Deadline::after_ms(budget_ms) : Deadline::unlimited();
    // Degradation ladder: when a stage's slice runs out, either fall back
    // to the budget-capped approximation (degraded response, `skipped`
    // names the stages cut short) or rethrow into a DEADLINE_EXCEEDED
    // rejection, per options_.degrade_on_deadline.
    auto note_skipped = [&response](const std::string& stage) {
      response.degraded = true;
      if (!response.skipped.empty()) response.skipped += ',';
      response.skipped += stage;
    };
    if (request.kind == SolveRequest::Kind::kPath) {
      std::istringstream is(request.instance_text);
      const PathInstance inst = read_path_instance(is, options_.read_limits);
      SolverParams params;
      params.eps = request.eps;
      params.seed = request.seed;
      params.deadline = deadline;
      SapSolution sol;
      {
        TelemetrySession session(&telemetry);
        try {
          if (request.algo == "full") {
            sol = solve_sap(inst, params);
          } else if (request.algo == "exact") {
            SapExactOptions exact = options_.exact;
            exact.deadline = exact.deadline.min(deadline);
            const SapExactResult oracle = sap_exact_profile_dp(inst, exact);
            if (oracle.timed_out) throw DeadlineExceeded("exact oracle");
            sol = oracle.solution;
          } else if (request.algo == "uniform") {
            sol = solve_sap_uniform(inst);
          } else if (request.algo == "small") {
            sol = solve_small_tasks(inst, all_task_ids(inst), params);
          } else if (request.algo == "medium") {
            sol = solve_medium_tasks(inst, all_task_ids(inst), params);
          } else if (request.algo == "large") {
            sol = solve_large_tasks(inst, all_task_ids(inst), params);
          } else {
            throw std::invalid_argument("unknown algo '" + request.algo +
                                        "' (want full|exact|uniform|small|"
                                        "medium|large)");
          }
        } catch (const DeadlineExceeded&) {
          if (!options_.degrade_on_deadline) throw;
          if (options_.fault_injector) {
            options_.fault_injector(FaultPoint::kPreFallback);
          }
          note_skipped("solve." + request.algo);
          sol = solve_sap(inst, degraded_params(request.eps, request.seed));
        }
        if (request.want_certificate) {
          // Certification runs inside the telemetry session (cert.ladder.*
          // counters surface in telemetry_json) and inside the solve timer,
          // so wall_micros reflects the true cost of a certified request.
          // Rungs share the request deadline: one that times out is skipped
          // and the ladder falls through to a cheaper bound.
          cert::CertifyOptions certify = options_.certify;
          certify.ladder.deadline = certify.ladder.deadline.min(deadline);
          const cert::CertifyOutcome outcome =
              cert::certify_solution(inst, sol, certify);
          for (const cert::LadderRungAttempt& attempt :
               outcome.ladder.attempts) {
            if (attempt.timed_out) {
              note_skipped(std::string("cert.") +
                           cert::ub_rung_name(attempt.rung));
            }
          }
          if (outcome.certified) {
            std::ostringstream cert_os;
            write_certificate(cert_os, outcome.cert);
            response.certificate_text = cert_os.str();
          }
        }
      }
      response.weight = sol.weight(inst);
      response.placed = sol.size();
      response.total_tasks = inst.num_tasks();
      write_sap_solution(solution_os, sol);
    } else {
      std::istringstream is(request.instance_text);
      const RingInstance inst = read_ring_instance(is, options_.read_limits);
      RingSolverParams params;
      params.path.eps = request.eps;
      params.path.seed = request.seed;
      params.path.deadline = deadline;
      RingSapSolution sol;
      {
        TelemetrySession session(&telemetry);
        try {
          sol = solve_ring_sap(inst, params);
        } catch (const DeadlineExceeded&) {
          if (!options_.degrade_on_deadline) throw;
          if (options_.fault_injector) {
            options_.fault_injector(FaultPoint::kPreFallback);
          }
          note_skipped("solve.ring");
          RingSolverParams fallback;
          fallback.path = degraded_params(request.eps, request.seed);
          sol = solve_ring_sap(inst, fallback);
        }
        if (request.want_certificate) {
          cert::CertifyOptions certify = options_.certify;
          certify.ladder.deadline = certify.ladder.deadline.min(deadline);
          const cert::CertifyOutcome outcome =
              cert::certify_solution(inst, sol, certify);
          for (const cert::LadderRungAttempt& attempt :
               outcome.ladder.attempts) {
            if (attempt.timed_out) {
              note_skipped(std::string("cert.") +
                           cert::ub_rung_name(attempt.rung));
            }
          }
          if (outcome.certified) {
            std::ostringstream cert_os;
            write_certificate(cert_os, outcome.cert);
            response.certificate_text = cert_os.str();
          }
        }
      }
      response.weight = inst.solution_weight(sol);
      response.placed = sol.size();
      response.total_tasks = inst.num_tasks();
      write_ring_solution(solution_os, sol);
    }
    response.wall_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - solve_start)
            .count();
    response.telemetry_json = compact_counters_json(telemetry);
    response.solution_text = solution_os.str();
    ok = true;
  } catch (const std::invalid_argument& error) {
    rejection = {ErrorCode::kBadRequest, error.what()};
  } catch (const DeadlineExceeded& error) {
    // Reached only with degrade_on_deadline == false (otherwise the inner
    // handler already served the fallback). Must precede std::exception:
    // DeadlineExceeded derives from std::runtime_error.
    rejection = {ErrorCode::kDeadlineExceeded, error.what()};
  } catch (const std::exception& error) {
    rejection = {ErrorCode::kInternal, error.what()};
  } catch (...) {
    rejection = {ErrorCode::kInternal, "unknown solver failure"};
  }

  if (ok) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    if (response.degraded) {
      requests_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.fault_injector) {
      options_.fault_injector(FaultPoint::kPreResponse);
    }
    std::lock_guard lock(conn->write_mutex);
    if (conn->poisoned.load() ||
        write_frame_status(conn->fd, FrameType::kSolveResponse,
                           encode_solve_response(response)) !=
            WriteStatus::kOk) {
      conn->poison();
    }
  } else {
    if (rejection.code == ErrorCode::kBadRequest) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
    } else if (rejection.code == ErrorCode::kDeadlineExceeded) {
      requests_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      requests_internal_error_.fetch_add(1, std::memory_order_relaxed);
    }
    send_error(conn, rejection.code, rejection.message);
  }
  return ok;
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        ErrorCode code, const std::string& message) {
  std::lock_guard lock(conn->write_mutex);
  if (conn->poisoned.load() ||
      write_frame_status(conn->fd, FrameType::kErrorResponse,
                         encode_error_response({code, message})) !=
          WriteStatus::kOk) {
    conn->poison();
  }
}

void Server::record_latency(double ms) {
  std::lock_guard lock(latency_mutex_);
  if (latency_ring_.size() < kLatencyRingCapacity) {
    latency_ring_.push_back(ms);
  } else {
    latency_ring_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyRingCapacity;
  }
  ++latency_total_;
  if (ms > latency_max_) latency_max_ = ms;
}

ServerStats Server::stats_snapshot() const {
  ServerStats stats;
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  stats.requests_bad = requests_bad_.load(std::memory_order_relaxed);
  stats.requests_overloaded =
      requests_overloaded_.load(std::memory_order_relaxed);
  stats.requests_shutting_down =
      requests_shutting_down_.load(std::memory_order_relaxed);
  stats.requests_internal_error =
      requests_internal_error_.load(std::memory_order_relaxed);
  stats.requests_deadline_exceeded =
      requests_deadline_exceeded_.load(std::memory_order_relaxed);
  stats.requests_degraded = requests_degraded_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(jobs_mutex_);
    stats.queue_depth = queued_;
    stats.active_solves = active_;
  }
  std::vector<double> sample;
  {
    std::lock_guard lock(latency_mutex_);
    sample = latency_ring_;
    stats.latency_samples = latency_total_;
    stats.latency_max_ms = latency_max_;
  }
  if (!sample.empty()) {
    stats.latency_p50_ms = percentile(sample, 50.0);
    stats.latency_p95_ms = percentile(sample, 95.0);
    stats.latency_p99_ms = percentile(sample, 99.0);
  }
  return stats;
}

}  // namespace sap::service
