#include "src/service/shard.hpp"

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace sap::service {
namespace {

void pin_to_cpu(std::thread& thread, std::size_t cpu) {
#ifdef __linux__
  // Best effort: a failed pin (cpuset restrictions, fewer CPUs than
  // shards*workers) degrades to the scheduler's placement, never an error.
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  (void)::pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}

}  // namespace

ShardPool::ShardPool(const Options& options)
    : queue_capacity_(std::max<std::size_t>(1, options.queue_capacity)) {
  const std::size_t shard_count = std::max<std::size_t>(1, options.shards);
  const std::size_t threads_total =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t per_shard =
      std::max<std::size_t>(1, threads_total / shard_count);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard& shard = *shards_[s];
    shard.workers.reserve(per_shard);
    for (std::size_t w = 0; w < per_shard; ++w) {
      shard.workers.emplace_back([this, &shard] { worker_loop(shard); });
      if (options.pin_cpus && shard_count > 1) {
        pin_to_cpu(shard.workers.back(), (s * per_shard + w) % hw);
      }
    }
  }
}

ShardPool::~ShardPool() { stop(); }

ShardPool::Submit ShardPool::enqueue(std::uint64_t route_hash,
                                     std::function<void()> job,
                                     bool enforce_capacity) {
  Shard& shard = *shards_[shard_of(route_hash)];
  {
    std::lock_guard lock(shard.mutex);
    if (stopping_.load(std::memory_order_relaxed)) return Submit::kStopped;
    if (enforce_capacity && shard.queue.size() >= queue_capacity_) {
      return Submit::kFull;
    }
    shard.queue.push_back(std::move(job));
  }
  shard.work_ready.notify_one();
  return Submit::kOk;
}

ShardPool::Submit ShardPool::submit(std::uint64_t route_hash,
                                    std::function<void()> job) {
  return enqueue(route_hash, std::move(job), /*enforce_capacity=*/true);
}

ShardPool::Submit ShardPool::submit_admitted(std::uint64_t route_hash,
                                             std::function<void()> job) {
  return enqueue(route_hash, std::move(job), /*enforce_capacity=*/false);
}

void ShardPool::worker_loop(Shard& shard) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(shard.mutex);
      shard.work_ready.wait(lock, [this, &shard] {
        return stopping_.load(std::memory_order_relaxed) ||
               !shard.queue.empty();
      });
      if (shard.queue.empty()) return;  // stopping, nothing left
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
      ++shard.active;
    }
    job();
    {
      std::lock_guard lock(shard.mutex);
      --shard.active;
      if (shard.queue.empty() && shard.active == 0) shard.idle.notify_all();
    }
  }
}

void ShardPool::drain() {
  // A running job may re-dispatch onto *another* shard (coalesced-waiter
  // hand-off), so one pass per shard is not enough: loop until a verify
  // pass over all shards observes simultaneous quiescence. Terminates
  // because re-dispatched jobs run with coalescing disabled and thus never
  // spawn further work.
  for (;;) {
    for (const auto& shard : shards_) {
      std::unique_lock lock(shard->mutex);
      shard->idle.wait(lock, [&shard] {
        return shard->queue.empty() && shard->active == 0;
      });
    }
    bool all_idle = true;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mutex);
      if (!shard->queue.empty() || shard->active != 0) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) return;
  }
}

void ShardPool::stop() {
  stopping_.store(true);
  for (const auto& shard : shards_) {
    // Taking the mutex before notifying closes the race with a worker that
    // checked the predicate just before stopping_ flipped.
    std::lock_guard lock(shard->mutex);
    shard->work_ready.notify_all();
  }
  for (const auto& shard : shards_) {
    for (std::thread& worker : shard->workers) {
      if (worker.joinable()) worker.join();
    }
    shard->workers.clear();
  }
}

std::vector<ShardPool::ShardGauges> ShardPool::gauges() const {
  std::vector<ShardGauges> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    out.push_back(ShardGauges{shard->queue.size(), shard->active});
  }
  return out;
}

ShardPool::ShardGauges ShardPool::totals() const {
  ShardGauges total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total.queue_depth += shard->queue.size();
    total.active += shard->active;
  }
  return total;
}

}  // namespace sap::service
