#include "src/service/solve_cache.hpp"

#include <utility>

namespace sap::service {

SolveCache::Acquired SolveCache::acquire(const InstanceDigest& key,
                                         std::uint64_t waiter_id) {
  if (!enabled()) return {Role::kDisabled, {}};
  std::lock_guard lock(mutex_);
  if (const auto hit = entries_.find(key); hit != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, hit->second);  // refresh recency
    return {Role::kHit, hit->second->payload};
  }
  if (const auto flight = in_flight_.find(key); flight != in_flight_.end()) {
    ++coalesced_;
    flight->second.push_back(waiter_id);
    return {Role::kWaiter, {}};
  }
  ++misses_;
  in_flight_.emplace(key, std::vector<std::uint64_t>{});
  return {Role::kOwner, {}};
}

std::vector<std::uint64_t> SolveCache::publish(const InstanceDigest& key,
                                               std::string payload) {
  if (!enabled()) return {};
  std::lock_guard lock(mutex_);
  const auto flight = in_flight_.find(key);
  if (flight == in_flight_.end()) return {};
  std::vector<std::uint64_t> waiters = std::move(flight->second);
  in_flight_.erase(flight);
  if (entries_.find(key) == entries_.end()) {
    lru_.push_front(Entry{key, std::move(payload)});
    entries_.emplace(key, lru_.begin());
    while (entries_.size() > max_entries_) {
      entries_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }
  return waiters;
}

std::vector<std::uint64_t> SolveCache::abandon(const InstanceDigest& key) {
  if (!enabled()) return {};
  std::lock_guard lock(mutex_);
  const auto flight = in_flight_.find(key);
  if (flight == in_flight_.end()) return {};
  std::vector<std::uint64_t> waiters = std::move(flight->second);
  in_flight_.erase(flight);
  return waiters;
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced = coalesced_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace sap::service
