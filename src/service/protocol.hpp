// sapd wire protocol: typed frames whose payloads are line-oriented text
// envelopes carrying the instance_io formats (docs/SERVICE.md is the spec).
//
// Everything here is pure encode/parse on in-memory buffers — the socket
// layer lives in frame.{hpp,cpp} (fd framing) and server/client (endpoints),
// so the protocol can be unit tested without a network.
//
// Frame layout (all fields little-endian uint32):
//   magic   0x53415044 ("SAPD" read as big-endian bytes 'S','A','P','D')
//   type    FrameType
//   length  payload byte count (bounded by the receiver's max payload)
// followed by `length` payload bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/model/task.hpp"

namespace sap::service {

inline constexpr std::uint32_t kFrameMagic = 0x44504153u;  // 'S','A','P','D'
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Hard ceiling on a frame payload; receivers reject larger lengths before
/// allocating (an attacker-supplied length can never OOM an endpoint).
inline constexpr std::size_t kDefaultMaxFramePayload = 16u << 20;  // 16 MiB

enum class FrameType : std::uint32_t {
  kSolveRequest = 1,
  kStatsRequest = 2,
  /// Version-negotiated batch: one frame carrying N independent solve
  /// request payloads (a sweep in one round trip). A server that predates
  /// batching answers the whole frame with a BAD_REQUEST "unknown frame
  /// type" error and keeps the connection usable, so a new client can fall
  /// back to sequential kSolveRequest frames.
  kBatchSolveRequest = 3,
  kSolveResponse = 17,
  kStatsResponse = 18,
  kErrorResponse = 19,
  kBatchSolveResponse = 20,
};

/// Typed rejection codes carried by kErrorResponse frames.
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,        ///< unparseable frame/envelope/instance
  kOverloaded = 2,        ///< admission queue full — retry later
  kShuttingDown = 3,      ///< server draining; no new work accepted
  kInternal = 4,          ///< solver threw; request was well-formed
  kDeadlineExceeded = 5,  ///< per-request deadline expired before a result
};

[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;
/// Inverse of error_code_name; throws std::invalid_argument on unknown.
[[nodiscard]] ErrorCode parse_error_code(std::string_view name);

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint32_t type = 0;  ///< raw on the wire; may be an unknown value
  std::uint32_t length = 0;
};

/// Serializes a header into exactly kFrameHeaderBytes at `out`.
void encode_frame_header(unsigned char* out, FrameType type,
                         std::uint32_t payload_length) noexcept;
/// Decodes kFrameHeaderBytes from `in`; returns false on a magic mismatch.
[[nodiscard]] bool decode_frame_header(const unsigned char* in,
                                       FrameHeader* out) noexcept;

/// A solve request: solver selection (mirroring `sapkit_cli solve`) plus
/// the instance text in sap-path v1 / sap-ring v1 format.
struct SolveRequest {
  /// Version-negotiated problem family. kRoundUfp/kRoundSap ("round-ufp" /
  /// "round-sap" on the wire) ask for a minimum-round packing of *all*
  /// tasks of a sap-path v1 instance instead of a max-weight single-round
  /// selection. A server that predates the round family rejects the unknown
  /// kind with a typed BAD_REQUEST and keeps the connection usable.
  enum class Kind { kPath, kRing, kRoundUfp, kRoundSap };
  Kind kind = Kind::kPath;
  /// Path pipelines: full|uniform|small|medium|large. Round kinds accept
  /// full (approximation) | exact (oracle). Ignored for rings.
  std::string algo = "full";
  double eps = 0.5;
  std::uint64_t seed = 1;
  /// Per-request solve budget in milliseconds; 0 = no client deadline (the
  /// server may still apply its own default). Version-negotiated like
  /// `certify`: encoded as an extra "deadline_ms N" line only when nonzero,
  /// so old peers interoperate unchanged.
  std::int64_t deadline_ms = 0;
  /// Version-negotiated certificate opt-in: encoded as an extra "certify 1"
  /// line that clients which predate certification never send, so old
  /// clients and old servers interoperate unchanged.
  bool want_certificate = false;
  std::string instance_text;
};

[[nodiscard]] std::string encode_solve_request(const SolveRequest& request);
/// Throws std::invalid_argument on a malformed envelope. The instance text
/// is carried opaquely; the server parses it separately (instance_io).
[[nodiscard]] SolveRequest parse_solve_request(std::string_view payload);

/// A successful solve: the solution exactly as write_sap_solution /
/// write_ring_solution emits it (byte-identical to an in-process solve with
/// the same parameters), plus per-request observability.
struct SolveResponse {
  Weight weight = 0;
  std::uint64_t placed = 0;
  std::uint64_t total_tasks = 0;
  std::int64_t wall_micros = 0;
  std::string telemetry_json;  ///< single-line counters object ("{}" if none)
  /// Round-family responses only: round count of the packing, carried as an
  /// additive "rounds N" line (after telemetry) that plain solves never
  /// emit, so old peers interoperate unchanged. `solution_text` then holds
  /// round-solution v1 text instead of sap-solution v1.
  bool is_round = false;
  std::uint64_t rounds = 0;
  /// Degradation ladder marker: the deadline ran out mid-request and the
  /// server fell back to the approximation result instead of rejecting.
  /// `skipped` names the stages that were cut short (comma-separated, e.g.
  /// "cert.exact_dp,cert.ufpp_bnb"). Additive lines; old peers never see
  /// them (only emitted when degraded).
  bool degraded = false;
  std::string skipped;
  /// Optional sap-cert v1 text, present only when the request asked for a
  /// certificate and the server could produce one. Carried as a
  /// length-prefixed "certificate <nbytes>" section so the multi-line text
  /// nests inside the envelope unambiguously.
  std::string certificate_text;
  std::string solution_text;
};

[[nodiscard]] std::string encode_solve_response(const SolveResponse& response);
[[nodiscard]] SolveResponse parse_solve_response(std::string_view payload);

struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

[[nodiscard]] std::string encode_error_response(const ErrorResponse& error);
[[nodiscard]] ErrorResponse parse_error_response(std::string_view payload);

/// Item ceiling a receiver applies to batch frames before touching any
/// inner payload (like max_frame_payload, an attacker-declared count can
/// never drive allocation).
inline constexpr std::size_t kDefaultMaxBatchItems = 64;

/// Batch envelope (kBatchSolveRequest):
///   sapd-batch v1
///   count <N>
///   request <nbytes>\n<nbytes raw bytes>     (N times)
/// Every inner blob is a complete sapd-solve v1 payload, carried opaquely
/// — the server parses each one independently, so one malformed item
/// rejects that item, not the batch.
[[nodiscard]] std::string encode_batch_solve_request(
    const std::vector<std::string>& items);
/// Throws std::invalid_argument on a malformed outer envelope (bad count,
/// count over `max_items`, truncated inner section, trailing bytes).
[[nodiscard]] std::vector<std::string> parse_batch_solve_request(
    std::string_view payload, std::size_t max_items = kDefaultMaxBatchItems);

/// One slot of a batch response: a solve-response payload (ok) or an
/// error-response payload (rejected item), position-matched to the request.
struct BatchItemResult {
  bool ok = false;
  std::string payload;
};

/// Batch response envelope (kBatchSolveResponse):
///   sapd-batch-result v1
///   count <N>
///   ok <nbytes>\n<bytes> | error <nbytes>\n<bytes>   (N times)
[[nodiscard]] std::string encode_batch_solve_response(
    const std::vector<BatchItemResult>& items);
[[nodiscard]] std::vector<BatchItemResult> parse_batch_solve_response(
    std::string_view payload, std::size_t max_items = kDefaultMaxBatchItems);

}  // namespace sap::service
