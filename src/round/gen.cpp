#include "src/round/gen.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace sap::round {

PathInstance generate_round_instance(const RoundGenOptions& options,
                                     Rng& rng) {
  PathInstance inst = generate_path_instance(options.base, rng);
  if (!options.enforce_nba || inst.num_tasks() == 0) return inst;
  const Value cmin = inst.min_capacity();
  std::vector<Value> caps(inst.capacities().begin(), inst.capacities().end());
  std::vector<Task> tasks(inst.tasks().begin(), inst.tasks().end());
  for (Task& t : tasks) {
    // Demands are >= 1 and cmin >= 1, so the clamp keeps tasks admissible.
    t.demand = std::min(t.demand, cmin);
  }
  return PathInstance(std::move(caps), std::move(tasks));
}

}  // namespace sap::round
