// Integer-only round-count ratio measurement for the differential sweeps
// and the batch harness. No floating point enters src/round (exact-arith
// discipline); callers that want a double ratio form it from the two
// integer counts (src/harness does).
#pragma once

#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/round/solution.hpp"

namespace sap::round {

struct RoundRatioMeasurement {
  Value approx_rounds = 0;
  Value oracle_rounds = 0;    ///< == approx_rounds when the oracle bailed
  Value lower_bound = 0;
  bool oracle_proven = false;
  bool oracle_timed_out = false;
  bool approx_valid = false;  ///< verifier verdict on the approx assignment
  bool slab_arm_won = false;
};

/// Runs the approximation, independently verifies it, and runs the exact
/// oracle, returning both round counts. Throws DeadlineExceeded only if the
/// approximation itself cannot finish; an oracle timeout is reported in the
/// measurement (with oracle_rounds falling back to approx_rounds).
[[nodiscard]] RoundRatioMeasurement measure_round_ratio(
    const PathInstance& inst, RoundKind kind,
    const RoundApproxOptions& approx_options = {},
    const RoundExactOptions& exact_options = {});

}  // namespace sap::round
