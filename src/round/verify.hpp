// Independent verifier for round assignments, in the style of model/verify:
// written against the problem definition, sharing no code with the round
// solvers, so it catches their bugs instead of inheriting them.
//
// A valid assignment is (1) a partition — every task of the instance placed
// in exactly one round, ids in range, no duplicates anywhere — and (2)
// per-round feasible: verify_ufpp for Round-UFP rounds (whose heights must
// all be zero), verify_sap for Round-SAP rounds. All arithmetic on the
// untrusted solution is overflow-checked by the underlying verifiers.
#pragma once

#include "src/model/path_instance.hpp"
#include "src/model/verify.hpp"
#include "src/round/solution.hpp"

namespace sap::round {

/// Full validity check; failure reasons name the offending round index.
[[nodiscard]] VerifyResult verify_round_assignment(
    const PathInstance& inst, const RoundAssignment& assignment);

}  // namespace sap::round
