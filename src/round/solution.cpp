#include "src/round/solution.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sap::round {

const char* round_kind_name(RoundKind kind) noexcept {
  switch (kind) {
    case RoundKind::kUfp:
      return "round-ufp";
    case RoundKind::kSap:
      return "round-sap";
  }
  return "round-ufp";
}

RoundKind parse_round_kind(std::string_view name) {
  if (name == "round-ufp") return RoundKind::kUfp;
  if (name == "round-sap") return RoundKind::kSap;
  throw std::invalid_argument("unknown round kind '" + std::string(name) +
                              "' (want round-ufp|round-sap)");
}

std::size_t RoundAssignment::total_placements() const noexcept {
  std::size_t total = 0;
  for (const SapSolution& r : rounds) total += r.size();
  return total;
}

Value round_lower_bound(const PathInstance& inst) {
  if (inst.num_tasks() == 0) return 0;
  const std::size_t m = inst.num_edges();
  // Per-edge load, accumulated wide: adversarial instances can push the sum
  // of demands on one edge past int64 even though each demand fits.
  std::vector<Int128> load(m, 0);
  std::vector<Value> conflicts(m, 0);
  for (const Task& t : inst.tasks()) {
    const Value d = t.demand;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      const auto idx = static_cast<std::size_t>(e);
      load[idx] += d;
      const Value cap = inst.capacities()[idx];
      // 2*d > cap, exact: two such tasks overflow the edge together.
      if (static_cast<Int128>(d) * 2 > cap) conflicts[idx] += 1;
    }
  }
  Value best = 1;  // at least one round once any task exists
  for (std::size_t e = 0; e < m; ++e) {
    const Value cap = inst.capacities()[e];
    const Int128 ceil_load = (load[e] + cap - 1) / cap;
    // Round counts are bounded by the task count, so this narrowing is safe
    // for any instance the constructors admit (each task fits alone).
    best = std::max(best, static_cast<Value>(ceil_load));
    best = std::max(best, conflicts[e]);
  }
  return best;
}

}  // namespace sap::round
