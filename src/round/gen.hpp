// Instance generators for the round family. Round-UFP/Round-SAP must pack
// *every* task, so the interesting regimes differ from single-round SAP:
// the no-bottleneck assumption (NBA: max demand <= min capacity) is what
// the constant-factor results need, and without it hardness is
// super-constant — both regimes are generated here, NBA by clamping.
#pragma once

#include "src/gen/generators.hpp"
#include "src/model/path_instance.hpp"
#include "src/util/rng.hpp"

namespace sap::round {

struct RoundGenOptions {
  /// Base path-instance distribution (profile, demand class, spans, ...).
  PathGenOptions base{};
  /// Clamp every demand to min-capacity so the no-bottleneck assumption
  /// holds; false leaves the base instance (d_j <= b(j) only) untouched.
  bool enforce_nba = true;
};

/// Deterministic in (options, rng state), like generate_path_instance.
[[nodiscard]] PathInstance generate_round_instance(
    const RoundGenOptions& options, Rng& rng);

}  // namespace sap::round
