// Kar–Khan-style approximation pipelines for Round-UFP and Round-SAP:
// classify-and-pack first-fit over the existing single-round substrates.
//
// Round-UFP (classify-and-pack):
//   Tasks are split into *small* (2 d_j <= b(j)) and *large* (the rest) and
//   each class is packed by first fit in left-endpoint order into its own
//   pool of rounds, with exact per-edge load feasibility. Under uniform
//   capacity c (which implies the no-bottleneck assumption) this is a
//   proven 3-approximation:
//    - Smalls: when task j opens round R+1, every round r <= R is load-
//      blocked at some edge e in I_j, i.e. load_r(e) > c - d_j >= c/2.
//      Every task contributing to load_r(e) started at or before s_j and
//      ends at or after e >= s_j, so it is alive at s_j and
//      load_r(s_j) >= load_r(e) > c/2. Summing over rounds,
//      LOAD(s_j) > R c / 2, while OPT >= ceil(LOAD(s_j)/c), so the smalls
//      use at most 2 OPT rounds.
//    - Larges: two overlapping larges have d_i + d_j > c and can never
//      share a round, so the larges form an interval graph whose clique
//      number w_L lower-bounds OPT; first fit in left-endpoint order
//      colours an interval graph with exactly w_L colours, and the load
//      check reduces to exactly that conflict test. R_large = w_L <= OPT.
//   General capacities: the packing is always valid (verified), and the
//   factor is measured empirically by the ratio harness — Round-UFP
//   without the no-bottleneck assumption has super-constant hardness, so
//   no constant is claimed there.
//
// Round-SAP:
//   Larges (2 d_j > b(j)): first fit in left-endpoint order with an exact
//   lowest-feasible-height probe per round. Under uniform capacity this
//   degenerates to the interval colouring above (R_large = w_L <= OPT).
//   Smalls (2 d_j <= b(j)): two arms, keep whichever uses fewer rounds —
//    - profiled first fit: same left-endpoint first fit, placing each task
//      at the lowest feasible height of the first round that has one.
//      Under uniform capacity with demands drawn from one power-of-two
//      class (d in (2^{i-1}, 2^i]) this is a proven O(1): when j opens
//      round R+1, every height y = k d_j (k = 0..K-1, K >= c/(2 d_j)
//      disjoint windows of height d_j) is blocked in every round, every
//      blocker is alive at s_j (left-endpoint order, as above), a blocker
//      spans at most 3 disjoint windows (d_b < 2 d_j), and each blocker
//      carries d_b > d_j / 2 — so load_r(s_j) > (K/3)(d_j/2) >= c/12 and
//      R_small <= 12 OPT; the bound asserted by the differential tests is
//      the combined 13 OPT. Mixed classes are valid-but-measured (the
//      class-mixing loss is exactly what makes the source paper hard).
//    - slab cut: dsa_pack_portfolio packs the d <= floor(c_min/2) subset
//      into an unbounded strip; cutting the strip at multiples of
//      s = floor(c_min/2) and rebasing each task against the slab holding
//      its bottom yields rounds of height < 2 s <= c_min <= c_e, each a
//      feasible SAP round. Smalls too tall for a slab (possible only under
//      non-uniform capacities) are first-fitted into extra rounds.
//
// Both entry points take the house Deadline/Arena contract: expiry throws
// DeadlineExceeded (never a partial answer), scratch comes from the given
// arena (nullptr = the calling thread's) and is rewound on return.
#pragma once

#include "src/model/path_instance.hpp"
#include "src/round/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {
class Arena;
}  // namespace sap

namespace sap::round {

struct RoundApproxOptions {
  /// Cooperative budget; checked at per-task/per-round probe granularity.
  Deadline deadline{};
  /// Scratch allocator; nullptr uses the calling thread's arena.
  Arena* arena = nullptr;
  /// Round-SAP only: run the DSA slab arm alongside profiled first fit and
  /// keep the better packing. Off = first fit only (the cheap pipeline the
  /// server's deadline degradation uses).
  bool portfolio = true;
};

struct RoundApproxReport {
  std::size_t small_rounds = 0;
  std::size_t large_rounds = 0;
  Value lower_bound = 0;      ///< round_lower_bound(inst)
  bool slab_arm_won = false;  ///< Round-SAP: the slab arm beat first fit
};

[[nodiscard]] RoundAssignment solve_round_ufp_approx(
    const PathInstance& inst, const RoundApproxOptions& options = {},
    RoundApproxReport* report = nullptr);

[[nodiscard]] RoundAssignment solve_round_sap_approx(
    const PathInstance& inst, const RoundApproxOptions& options = {},
    RoundApproxReport* report = nullptr);

}  // namespace sap::round
