// Exact oracle for Round-UFP / Round-SAP round counts, for differential
// testing of the approximation pipelines on tiny instances.
//
// Branch and bound over round counts: the first-fit approximation supplies
// a valid upper bound R_ff (and its assignment), round_lower_bound supplies
// LB; for each k = LB .. R_ff - 1 in ascending order a DFS assigns tasks
// (left-endpoint order, symmetry-broken: a task may only open round
// used + 1) to at most k rounds under an incremental per-edge load check —
// necessary for both variants. For Round-SAP each extension additionally
// probes the grown round through sap_exact_profile_dp on a unit-weight twin
// of the instance (a round's task set is SAP-feasible iff the max-weight
// placement takes every member); SAP feasibility is subset-monotone, so
// probing at every extension is a sound prune. Probe verdicts are memoized
// by round task-bitmask (n <= 64) — feasibility depends on the set only.
//
// The first k that admits an assignment is optimal; if none does, the
// approximation was already optimal. Trust accounting: a beam-truncated
// (non-proven) probe that reports infeasible may prune a real solution, so
// it clears `proven_optimal` while keeping the returned assignment valid;
// the node budget does the same. The deadline mirrors SapExactResult
// semantics: `timed_out` with an empty assignment, never a partial answer.
#pragma once

#include <cstdint>

#include "src/model/path_instance.hpp"
#include "src/round/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {
class Arena;
}  // namespace sap

namespace sap::round {

struct RoundExactOptions {
  /// Cooperative cancellation; expiry yields `timed_out`, empty assignment.
  Deadline deadline{};
  /// Scratch allocator; nullptr uses the calling thread's arena.
  Arena* arena = nullptr;
  /// DFS node budget across all tried round counts; exceeding it returns
  /// the best known assignment with `proven_optimal` cleared.
  std::uint64_t max_nodes = 1'000'000;
  /// Beam cap forwarded to each SAP feasibility probe.
  std::size_t max_probe_states = 200'000;
};

struct RoundExactResult {
  RoundAssignment assignment;
  /// assignment.num_rounds() as a Value, for ratio arithmetic.
  Value rounds = 0;
  /// True iff `rounds` is the certified optimum (no budget truncation and
  /// no untrusted probe verdict influenced the search).
  bool proven_optimal = false;
  /// Deadline expired: assignment is empty and rounds is 0.
  bool timed_out = false;
  /// DFS nodes expanded (0 when the bounds already met).
  std::uint64_t nodes = 0;
};

[[nodiscard]] RoundExactResult solve_round_exact(
    const PathInstance& inst, RoundKind kind,
    const RoundExactOptions& options = {});

}  // namespace sap::round
