#include "src/round/exact.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/exact/profile_dp.hpp"
#include "src/round/approx.hpp"
#include "src/util/arena.hpp"

namespace sap::round {
namespace {

// Probe verdicts: trusted feasible / trusted infeasible / beam-truncated
// infeasible (may be wrong) / deadline hit mid-probe.
enum class Verdict : std::int8_t {
  kFeasible,
  kInfeasible,
  kUntrustedInfeasible,
  kExpired,
};

struct Search {
  const PathInstance& inst;
  const PathInstance* twin;  // unit-weight copy; nullptr for Round-UFP
  RoundKind kind;
  const RoundExactOptions& options;
  std::vector<TaskId> order;
  const Value* caps = nullptr;
  std::size_t m = 0;
  std::size_t k = 0;  // rounds allowed in the current attempt

  std::vector<Value> loads;                 // k * m, row per round
  std::vector<std::vector<TaskId>> members;  // per-round task sets
  std::vector<std::uint64_t> masks;         // per-round bitmask (n <= 64)
  std::uint64_t nodes = 0;
  bool out_of_budget = false;
  bool expired = false;
  bool tainted = false;  // an untrusted probe verdict pruned a branch
  bool use_masks = false;
  // Memoized probe verdicts by task bitmask; std::map keeps iteration (and
  // behaviour) deterministic, though it is never iterated anyway.
  std::map<std::uint64_t, Verdict> memo;

  Search(const PathInstance& instance, const PathInstance* unit_twin,
         RoundKind round_kind, const RoundExactOptions& opts)
      : inst(instance), twin(unit_twin), kind(round_kind), options(opts) {
    m = inst.num_edges();
    caps = inst.capacities().data();
    const auto n = static_cast<TaskId>(inst.num_tasks());
    use_masks = inst.num_tasks() <= 64;
    order.reserve(inst.num_tasks());
    for (TaskId j = 0; j < n; ++j) order.push_back(j);
    std::sort(order.begin(), order.end(), [this](TaskId x, TaskId y) {
      const Task& a = inst.task(x);
      const Task& b = inst.task(y);
      if (a.first != b.first) return a.first < b.first;
      if (a.demand != b.demand) return a.demand > b.demand;
      return x < y;
    });
  }

  void reset(std::size_t rounds_allowed) {
    k = rounds_allowed;
    loads.assign(k * m, 0);
    members.assign(k, {});
    masks.assign(k, 0);
  }

  Verdict probe(const std::vector<TaskId>& set, std::uint64_t mask) {
    if (use_masks) {
      const auto it = memo.find(mask);
      if (it != memo.end()) return it->second;
    }
    SapExactOptions probe_opts;
    probe_opts.max_states = options.max_probe_states;
    probe_opts.deadline = options.deadline;
    probe_opts.arena = options.arena;
    const SapExactResult r = sap_exact_profile_dp(*twin, set, probe_opts);
    if (r.timed_out) return Verdict::kExpired;
    Verdict v = Verdict::kUntrustedInfeasible;
    // Unit weights: the set is SAP-feasible iff every member is placed. A
    // found full placement is its own certificate even when beam-truncated;
    // an infeasible verdict is trusted only from an untruncated sweep.
    if (r.weight == static_cast<Weight>(set.size())) {
      v = Verdict::kFeasible;
    } else if (r.proven_optimal) {
      v = Verdict::kInfeasible;
    }
    if (use_masks) memo.emplace(mask, v);
    return v;
  }

  bool dfs(std::size_t idx, std::size_t used) {
    if (expired || out_of_budget) return false;
    ++nodes;
    if (nodes > options.max_nodes) {
      out_of_budget = true;
      return false;
    }
    if ((nodes & 255) == 0 && options.deadline.expired()) {
      expired = true;
      return false;
    }
    if (idx == order.size()) return true;
    const TaskId j = order[idx];
    const Task& t = inst.task(j);
    const Value d = t.demand;
    const std::size_t limit = std::min(used + 1, k);
    for (std::size_t r = 0; r < limit; ++r) {
      Value* row = loads.data() + r * m;
      bool fits = true;
      for (EdgeId e = t.first; e <= t.last; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        // Headroom by subtraction; the sum load + d may not fit int64.
        if (caps[ei] - row[ei] < d) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      const std::uint64_t bit =
          use_masks ? std::uint64_t{1} << static_cast<unsigned>(j) : 0;
      if (kind == RoundKind::kSap) {
        members[r].push_back(j);
        const Verdict v = probe(members[r], masks[r] | bit);
        if (v != Verdict::kFeasible) {
          members[r].pop_back();
          if (v == Verdict::kExpired) {
            expired = true;
            return false;
          }
          if (v == Verdict::kUntrustedInfeasible) tainted = true;
          continue;
        }
      } else {
        members[r].push_back(j);
      }
      masks[r] |= bit;
      for (EdgeId e = t.first; e <= t.last; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        row[ei] += d;  // bounded by caps[ei] via the fit check above
      }
      if (dfs(idx + 1, std::max(used, r + 1))) return true;
      for (EdgeId e = t.first; e <= t.last; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        row[ei] -= d;
      }
      masks[r] &= ~bit;
      members[r].pop_back();
      if (expired || out_of_budget) return false;
    }
    return false;
  }

  // Rebuild the found assignment as concrete rounds. Round-SAP placements
  // come from one final probe per round (its full placement is a
  // certificate; verdicts above guarantee one exists).
  RoundAssignment extract() {
    RoundAssignment out;
    out.kind = kind;
    for (std::size_t r = 0; r < k; ++r) {
      if (members[r].empty()) continue;
      SapSolution sol;
      if (kind == RoundKind::kUfp) {
        sol.placements.reserve(members[r].size());
        for (const TaskId j : members[r]) {
          sol.placements.push_back(Placement{j, 0});
        }
      } else {
        SapExactOptions probe_opts;
        probe_opts.max_states = options.max_probe_states;
        probe_opts.deadline = options.deadline;
        probe_opts.arena = options.arena;
        const SapExactResult res =
            sap_exact_profile_dp(*twin, members[r], probe_opts);
        if (res.timed_out ||
            res.weight != static_cast<Weight>(members[r].size())) {
          expired = true;  // deadline raced the re-probe; caller bails
          return out;
        }
        sol = res.solution;
      }
      std::sort(sol.placements.begin(), sol.placements.end(),
                [](const Placement& a, const Placement& b) {
                  return a.task < b.task;
                });
      out.rounds.push_back(std::move(sol));
    }
    return out;
  }
};

}  // namespace

RoundExactResult solve_round_exact(const PathInstance& inst, RoundKind kind,
                                   const RoundExactOptions& options) {
  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  ArenaScope scope(arena);
  RoundExactResult out;
  out.assignment.kind = kind;
  if (inst.num_tasks() == 0) {
    out.proven_optimal = true;
    return out;
  }

  // Upper bound: the approximation's assignment (always valid).
  RoundApproxOptions approx_opts;
  approx_opts.deadline = options.deadline;
  approx_opts.arena = options.arena;
  RoundAssignment upper;
  try {
    upper = kind == RoundKind::kUfp ? solve_round_ufp_approx(inst, approx_opts)
                                    : solve_round_sap_approx(inst, approx_opts);
  } catch (const DeadlineExceeded&) {
    out.timed_out = true;
    return out;
  }
  const Value lb = round_lower_bound(inst);
  out.assignment = std::move(upper);
  out.rounds = static_cast<Value>(out.assignment.num_rounds());
  if (out.rounds == lb) {
    out.proven_optimal = true;
    return out;
  }

  // Unit-weight twin for Round-SAP feasibility probes: max-weight == |set|
  // iff the set fits one round.
  PathInstance twin_storage({1}, {});
  const PathInstance* twin = nullptr;
  if (kind == RoundKind::kSap) {
    std::vector<Value> caps(inst.capacities().begin(),
                            inst.capacities().end());
    std::vector<Task> unit_tasks(inst.tasks().begin(), inst.tasks().end());
    for (Task& t : unit_tasks) t.weight = 1;
    twin_storage = PathInstance(std::move(caps), std::move(unit_tasks));
    twin = &twin_storage;
  }

  Search search(inst, twin, kind, options);
  bool found = false;
  for (Value k = lb; k < out.rounds; ++k) {
    search.reset(static_cast<std::size_t>(k));
    const bool ok = search.dfs(0, 0);
    out.nodes = search.nodes;
    if (search.expired) {
      out = RoundExactResult{};
      out.assignment.kind = kind;
      out.timed_out = true;
      return out;
    }
    if (ok) {
      RoundAssignment exact_assignment = search.extract();
      if (search.expired) {
        out = RoundExactResult{};
        out.assignment.kind = kind;
        out.timed_out = true;
        return out;
      }
      out.assignment = std::move(exact_assignment);
      out.rounds = static_cast<Value>(out.assignment.num_rounds());
      found = true;
      break;
    }
    if (search.out_of_budget) break;
  }
  // The first admitting k is optimal — unless an untrusted probe verdict
  // may have pruned a smaller k, or the budget cut a search short.
  out.proven_optimal = !search.tainted && !search.out_of_budget;
  if (!found && search.out_of_budget) out.proven_optimal = false;
  return out;
}

}  // namespace sap::round
