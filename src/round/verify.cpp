#include "src/round/verify.hpp"

#include <string>
#include <vector>

namespace sap::round {

VerifyResult verify_round_assignment(const PathInstance& inst,
                                     const RoundAssignment& assignment) {
  const std::size_t n = inst.num_tasks();
  // Partition check first: ids valid, no task twice (within or across
  // rounds), nothing left unassigned.
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t r = 0; r < assignment.rounds.size(); ++r) {
    for (const Placement& p : assignment.rounds[r].placements) {
      if (p.task < 0 || static_cast<std::size_t>(p.task) >= n) {
        return VerifyResult::failure(
            VerifyError::kIdOutOfRange,
            "round " + std::to_string(r) + ": task id " +
                std::to_string(p.task) + " outside [0, " + std::to_string(n) +
                ")");
      }
      if (seen[static_cast<std::size_t>(p.task)] != 0) {
        return VerifyResult::failure(
            VerifyError::kDuplicateId,
            "round " + std::to_string(r) + ": task " + std::to_string(p.task) +
                " assigned more than once");
      }
      seen[static_cast<std::size_t>(p.task)] = 1;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (seen[j] == 0) {
      return VerifyResult::failure("task " + std::to_string(j) +
                                   " is not assigned to any round");
    }
  }

  // Per-round feasibility through the independent single-round verifiers.
  for (std::size_t r = 0; r < assignment.rounds.size(); ++r) {
    const SapSolution& sol = assignment.rounds[r];
    if (assignment.kind == RoundKind::kUfp) {
      for (const Placement& p : sol.placements) {
        if (p.height != 0) {
          return VerifyResult::failure(
              "round " + std::to_string(r) + ": round-ufp placement of task " +
                  std::to_string(p.task) + " carries nonzero height " +
                  std::to_string(p.height));
        }
      }
      const VerifyResult inner = verify_ufpp(inst, sol.to_ufpp());
      if (!inner.ok) {
        return VerifyResult::failure(
            inner.error, "round " + std::to_string(r) + ": " + inner.reason);
      }
    } else {
      const VerifyResult inner = verify_sap(inst, sol);
      if (!inner.ok) {
        return VerifyResult::failure(
            inner.error, "round " + std::to_string(r) + ": " + inner.reason);
      }
    }
  }
  return VerifyResult::success();
}

}  // namespace sap::round
