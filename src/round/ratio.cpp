#include "src/round/ratio.hpp"

#include "src/round/verify.hpp"

namespace sap::round {

RoundRatioMeasurement measure_round_ratio(
    const PathInstance& inst, RoundKind kind,
    const RoundApproxOptions& approx_options,
    const RoundExactOptions& exact_options) {
  RoundRatioMeasurement out;
  RoundApproxReport report;
  const RoundAssignment approx =
      kind == RoundKind::kUfp
          ? solve_round_ufp_approx(inst, approx_options, &report)
          : solve_round_sap_approx(inst, approx_options, &report);
  out.approx_rounds = static_cast<Value>(approx.num_rounds());
  out.lower_bound = report.lower_bound;
  out.slab_arm_won = report.slab_arm_won;
  out.approx_valid = verify_round_assignment(inst, approx).ok;

  const RoundExactResult oracle = solve_round_exact(inst, kind, exact_options);
  out.oracle_timed_out = oracle.timed_out;
  out.oracle_proven = oracle.proven_optimal && !oracle.timed_out;
  out.oracle_rounds = oracle.timed_out ? out.approx_rounds : oracle.rounds;
  return out;
}

}  // namespace sap::round
