#include "src/round/approx.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "src/dsa/dsa.hpp"
#include "src/util/arena.hpp"

namespace sap::round {
namespace {

// The small/large classification threshold: small means 2 d_j <= b(j).
constexpr Ratio kHalf{1, 2};

// Deterministic packing order shared by every pipeline: left endpoint
// ascending (the order the blocking arguments in approx.hpp need), then
// demand descending (FFD flavour among ties), then id.
void sort_packing_order(const PathInstance& inst, std::vector<TaskId>& ids) {
  std::sort(ids.begin(), ids.end(), [&inst](TaskId x, TaskId y) {
    const Task& a = inst.task(x);
    const Task& b = inst.task(y);
    if (a.first != b.first) return a.first < b.first;
    if (a.demand != b.demand) return a.demand > b.demand;
    return x < y;
  });
}

// First fit by per-edge load (the Round-UFP round test): task j fits round
// r iff every edge of I_j has headroom d_j. Returns the task partition.
std::vector<std::vector<TaskId>> load_first_fit(const PathInstance& inst,
                                                std::span<const TaskId> order,
                                                DeadlineGate& gate) {
  const std::size_t m = inst.num_edges();
  const Value* caps = inst.capacities().data();
  std::vector<std::vector<Value>> loads;
  std::vector<std::vector<TaskId>> rounds;
  for (const TaskId j : order) {
    const Task& t = inst.task(j);
    const Value d = t.demand;
    std::size_t chosen = rounds.size();
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      gate.check();
      const Value* row = loads[r].data();
      bool fits = true;
      for (EdgeId e = t.first; e <= t.last; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        // Headroom by subtraction only: load + d can reach 2^63 on
        // admissible instances, the difference cannot overflow.
        if (caps[ei] - row[ei] < d) {
          fits = false;
          break;
        }
      }
      if (fits) {
        chosen = r;
        break;
      }
    }
    if (chosen == rounds.size()) {
      rounds.emplace_back();
      loads.emplace_back(m, 0);
    }
    rounds[chosen].push_back(j);
    Value* row = loads[chosen].data();
    for (EdgeId e = t.first; e <= t.last; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      row[ei] += d;  // bounded by caps[ei] via the fit check above
    }
  }
  return rounds;
}

// A placed rectangle inside one Round-SAP round. `top` is precomputed at
// insertion so probe loops never re-derive it from quantity members.
struct Box {
  EdgeId first = 0;
  EdgeId last = 0;
  Value bot = 0;
  Value top = 0;
  TaskId task = 0;
};

// Lowest feasible height for a task (demand d, range bottleneck `bound`)
// against the boxes of one round, or -1 when the round cannot take it.
// The optimum is always 0 or the top of an overlapping box, so scanning
// the sorted candidate set yields the true lowest feasible height.
Value lowest_feasible_height(const Task& t, Value d, Value bound,
                             const std::vector<Box>& boxes,
                             std::vector<Value>& cand) {
  cand.clear();
  cand.push_back(0);
  for (const Box& b : boxes) {
    if (b.last < t.first || b.first > t.last) continue;
    cand.push_back(b.top);
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  for (const Value y : cand) {
    // Overflow order matters: establish headroom by subtraction before the
    // sum y + d is ever formed (it is then <= bound <= 2^62). Candidates
    // ascend, so the first without headroom ends the scan.
    if (bound - y < d) break;
    const Value yt = y + d;
    bool clash = false;
    for (const Box& b : boxes) {
      if (b.last < t.first || b.first > t.last) continue;
      if (b.bot < yt && b.top > y) {
        clash = true;
        break;
      }
    }
    if (!clash) return y;
  }
  return -1;
}

// Profiled first fit (the Round-SAP round test): place each task at the
// lowest feasible height of the first round that has one; open a new round
// otherwise (height 0 always fits a fresh round — the instance constructor
// guarantees d_j <= b(j)).
std::vector<std::vector<Box>> profiled_first_fit(
    const PathInstance& inst, std::span<const TaskId> order,
    DeadlineGate& gate, std::vector<Value>& cand) {
  std::vector<std::vector<Box>> rounds;
  for (const TaskId j : order) {
    const Task& t = inst.task(j);
    const Value d = t.demand;
    const Value bound = inst.range_bottleneck(t.first, t.last);
    bool placed = false;
    for (std::vector<Box>& boxes : rounds) {
      gate.check();
      const Value y = lowest_feasible_height(t, d, bound, boxes, cand);
      if (y >= 0) {
        const Value yt = y + d;
        boxes.push_back(Box{t.first, t.last, y, yt, j});
        placed = true;
        break;
      }
    }
    if (!placed) {
      rounds.emplace_back();
      rounds.back().push_back(Box{t.first, t.last, 0, d, j});
    }
  }
  return rounds;
}

// The slab arm: strip-pack the subset (demands all <= s) with the DSA
// portfolio, then cut the strip at multiples of s. A box is assigned to
// the slab holding its bottom and rebased against that slab, so its new
// top is < s + d <= 2 s <= c_min <= every c_e, and same-slab boxes keep
// the vertical disjointness the strip gave them (both shift by the same
// amount). Empty slabs (a box can span one entirely from below) are
// dropped.
std::vector<std::vector<Box>> slab_cut(const PathInstance& inst,
                                       std::span<const TaskId> subset,
                                       Value s) {
  const DsaResult strip = dsa_pack_portfolio(inst, subset);
  std::vector<std::vector<Box>> rounds;
  for (const Placement& p : strip.solution.placements) {
    const Task& t = inst.task(p.task);
    const Value d = t.demand;
    const Value h = p.height;
    const Value k = h / s;
    const Value base = k * s;  // <= h, no overflow
    const Value bot = h - base;
    const Value top = bot + d;  // < 2 s <= c_min, no overflow
    const auto slab = static_cast<std::size_t>(k);
    if (rounds.size() <= slab) rounds.resize(slab + 1);
    rounds[slab].push_back(Box{t.first, t.last, bot, top, p.task});
  }
  std::erase_if(rounds, [](const std::vector<Box>& r) { return r.empty(); });
  return rounds;
}

// Canonical conversion: rounds ordered large-pool-then-small-pool, and each
// round's placements sorted by task id, so equal inputs produce
// byte-identical serialized assignments.
void append_ufp_rounds(const std::vector<std::vector<TaskId>>& rounds,
                       RoundAssignment& out) {
  for (const std::vector<TaskId>& ids : rounds) {
    SapSolution sol;
    sol.placements.reserve(ids.size());
    for (const TaskId j : ids) sol.placements.push_back(Placement{j, 0});
    std::sort(sol.placements.begin(), sol.placements.end(),
              [](const Placement& a, const Placement& b) {
                return a.task < b.task;
              });
    out.rounds.push_back(std::move(sol));
  }
}

void append_sap_rounds(const std::vector<std::vector<Box>>& rounds,
                       RoundAssignment& out) {
  for (const std::vector<Box>& boxes : rounds) {
    SapSolution sol;
    sol.placements.reserve(boxes.size());
    for (const Box& b : boxes) {
      sol.placements.push_back(Placement{b.task, b.bot});
    }
    std::sort(sol.placements.begin(), sol.placements.end(),
              [](const Placement& a, const Placement& b) {
                return a.task < b.task;
              });
    out.rounds.push_back(std::move(sol));
  }
}

void classify(const PathInstance& inst, std::vector<TaskId>& small_ids,
              std::vector<TaskId>& large_ids) {
  const auto n = static_cast<TaskId>(inst.num_tasks());
  for (TaskId j = 0; j < n; ++j) {
    (inst.is_small(j, kHalf) ? small_ids : large_ids).push_back(j);
  }
  sort_packing_order(inst, small_ids);
  sort_packing_order(inst, large_ids);
}

}  // namespace

RoundAssignment solve_round_ufp_approx(const PathInstance& inst,
                                       const RoundApproxOptions& options,
                                       RoundApproxReport* report) {
  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  ArenaScope scope(arena);
  DeadlineGate gate(options.deadline, /*stride=*/64);
  RoundAssignment out;
  out.kind = RoundKind::kUfp;
  if (report != nullptr) *report = RoundApproxReport{};
  if (inst.num_tasks() == 0) return out;

  std::vector<TaskId> small_ids;
  std::vector<TaskId> large_ids;
  classify(inst, small_ids, large_ids);
  const std::vector<std::vector<TaskId>> large_rounds =
      load_first_fit(inst, large_ids, gate);
  const std::vector<std::vector<TaskId>> small_rounds =
      load_first_fit(inst, small_ids, gate);
  append_ufp_rounds(large_rounds, out);
  append_ufp_rounds(small_rounds, out);
  if (report != nullptr) {
    report->small_rounds = small_rounds.size();
    report->large_rounds = large_rounds.size();
    report->lower_bound = round_lower_bound(inst);
  }
  return out;
}

RoundAssignment solve_round_sap_approx(const PathInstance& inst,
                                       const RoundApproxOptions& options,
                                       RoundApproxReport* report) {
  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  ArenaScope scope(arena);
  DeadlineGate gate(options.deadline, /*stride=*/64);
  RoundAssignment out;
  out.kind = RoundKind::kSap;
  if (report != nullptr) *report = RoundApproxReport{};
  if (inst.num_tasks() == 0) return out;

  std::vector<TaskId> small_ids;
  std::vector<TaskId> large_ids;
  classify(inst, small_ids, large_ids);
  std::vector<Value> cand;
  const std::vector<std::vector<Box>> large_rounds =
      profiled_first_fit(inst, large_ids, gate, cand);

  // Smalls, arm A (always; carries the proven bound from approx.hpp).
  std::vector<std::vector<Box>> small_rounds =
      profiled_first_fit(inst, small_ids, gate, cand);
  bool slab_won = false;
  if (options.portfolio && !small_ids.empty()) {
    const Value cmin = inst.min_capacity();
    const Value s = cmin / 2;
    if (s >= 1) {
      // Arm B: slab-cut the strip packing. The portfolio packer is not
      // deadline-gated internally, so the budget is checked on both sides.
      gate.check();
      std::vector<TaskId> slabable;
      std::vector<TaskId> leftover;
      for (const TaskId j : small_ids) {
        if (inst.task(j).demand <= s) {
          slabable.push_back(j);
        } else {
          leftover.push_back(j);  // only under non-uniform capacities
        }
      }
      std::vector<std::vector<Box>> slab_rounds = slab_cut(inst, slabable, s);
      gate.check();
      const std::vector<std::vector<Box>> extra =
          profiled_first_fit(inst, leftover, gate, cand);
      if (slab_rounds.size() + extra.size() < small_rounds.size()) {
        slab_won = true;
        slab_rounds.insert(slab_rounds.end(), extra.begin(), extra.end());
        small_rounds = std::move(slab_rounds);
      }
    }
  }

  append_sap_rounds(large_rounds, out);
  append_sap_rounds(small_rounds, out);
  if (report != nullptr) {
    report->small_rounds = small_rounds.size();
    report->large_rounds = large_rounds.size();
    report->lower_bound = round_lower_bound(inst);
    report->slab_arm_won = slab_won;
  }
  return out;
}

}  // namespace sap::round
