// Solution model for the Round-SAP / Round-UFP problem family (Kar–Khan,
// arXiv:2202.03492): pack *all* tasks of an instance into a minimum number
// of rounds, where each round on its own must be UFP-feasible (Round-UFP:
// per-edge load within capacity) or SAP-feasible (Round-SAP: a contiguous,
// non-overlapping vertical placement within capacity).
//
// A round is represented as a SapSolution so both variants share one shape:
// Round-UFP rounds carry every height as 0 (enforced by the verifier), and
// Round-SAP rounds carry real placements. The assignment must be a
// *partition* of the task set — unlike single-round SAP/UFPP, nothing may
// be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap::round {

enum class RoundKind : std::uint8_t {
  kUfp,  ///< rounds are UFPP-feasible task sets (heights ignored / zero)
  kSap,  ///< rounds are SAP-feasible placements
};

/// Wire/CLI spelling: "round-ufp" / "round-sap".
[[nodiscard]] const char* round_kind_name(RoundKind kind) noexcept;
/// Inverse of round_kind_name; throws std::invalid_argument on unknown.
[[nodiscard]] RoundKind parse_round_kind(std::string_view name);

/// A candidate solution: tasks partitioned into rounds. Validity (partition
/// property plus per-round feasibility) is checked by
/// verify_round_assignment, never assumed.
struct RoundAssignment {
  RoundKind kind = RoundKind::kUfp;
  std::vector<SapSolution> rounds;

  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return rounds.size();
  }
  [[nodiscard]] bool empty() const noexcept { return rounds.empty(); }
  /// Total placements across rounds (== num_tasks for a valid assignment).
  [[nodiscard]] std::size_t total_placements() const noexcept;
};

/// Exact lower bound on the optimal round count, valid for both variants:
/// the per-edge load bound max_e ceil(load(e) / c_e), combined with the
/// conflict-clique bound max_e |{j using e : 2 d_j > c_e}| (two such tasks
/// sharing e can never share a round). Returns 0 for an empty task set.
/// All arithmetic is exact (Int128 accumulation; loads may exceed int64
/// only on adversarial instances, which this still handles).
[[nodiscard]] Value round_lower_bound(const PathInstance& inst);

}  // namespace sap::round
