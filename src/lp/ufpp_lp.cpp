#include "src/lp/ufpp_lp.hpp"

#include <numeric>
#include <vector>

namespace sap {

LpProblem build_ufpp_relaxation(const PathInstance& inst,
                                std::span<const TaskId> subset) {
  const std::size_t n = subset.size();
  LpProblem lp;
  lp.objective.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    lp.objective[v] = static_cast<double>(inst.task(subset[v]).weight);
  }

  // Capacity rows, one per edge used by at least one selected task.
  std::vector<std::vector<std::size_t>> edge_users(inst.num_edges());
  for (std::size_t v = 0; v < n; ++v) {
    const Task& t = inst.task(subset[v]);
    for (EdgeId e = t.first; e <= t.last; ++e) {
      edge_users[static_cast<std::size_t>(e)].push_back(v);
    }
  }
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    if (edge_users[e].empty()) continue;
    LpConstraint row;
    row.coeffs.assign(n, 0.0);
    for (std::size_t v : edge_users[e]) {
      row.coeffs[v] = static_cast<double>(inst.task(subset[v]).demand);
    }
    row.relation = LpRelation::kLessEqual;
    row.rhs = static_cast<double>(inst.capacities()[e]);
    lp.constraints.push_back(std::move(row));
  }

  // Box rows x_v <= 1.
  for (std::size_t v = 0; v < n; ++v) {
    LpConstraint row;
    row.coeffs.assign(n, 0.0);
    row.coeffs[v] = 1.0;
    row.relation = LpRelation::kLessEqual;
    row.rhs = 1.0;
    lp.constraints.push_back(std::move(row));
  }
  return lp;
}

LpProblem build_ufpp_relaxation(const PathInstance& inst) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return build_ufpp_relaxation(inst, all);
}

LpSolution solve_ufpp_relaxation(const PathInstance& inst,
                                 std::span<const TaskId> subset) {
  return solve_lp(build_ufpp_relaxation(inst, subset));
}

LpSolution solve_ufpp_relaxation(const PathInstance& inst,
                                 std::span<const TaskId> subset,
                                 const LpOptions& options) {
  return solve_lp(build_ufpp_relaxation(inst, subset), options);
}

double ufpp_lp_upper_bound(const PathInstance& inst) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  const LpSolution sol = solve_ufpp_relaxation(inst, all);
  return sol.objective;
}

}  // namespace sap
