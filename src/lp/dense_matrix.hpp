// Minimal dense row-major matrix used by the simplex tableau.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sap {

/// Dense row-major matrix of doubles with bounds-checked-in-debug access.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() entries).
  [[nodiscard]] double* row(std::size_t r) { return &data_[r * cols_]; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return &data_[r * cols_];
  }

  /// row(target) += factor * row(source); the inner loop of every pivot.
  void axpy_row(std::size_t target, std::size_t source, double factor);

  /// row(r) *= factor.
  void scale_row(std::size_t r, double factor);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sap
