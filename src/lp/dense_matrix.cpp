#include "src/lp/dense_matrix.hpp"

namespace sap {

void DenseMatrix::axpy_row(std::size_t target, std::size_t source,
                           double factor) {
  assert(target < rows_ && source < rows_ && target != source);
  double* t = row(target);
  const double* s = row(source);
  for (std::size_t c = 0; c < cols_; ++c) t[c] += factor * s[c];
}

void DenseMatrix::scale_row(std::size_t r, double factor) {
  double* t = row(r);
  for (std::size_t c = 0; c < cols_; ++c) t[c] *= factor;
}

}  // namespace sap
