// The LP relaxation of the natural UFPP integer program — ILP (1) in the
// paper: max sum w_j x_j s.t. sum_{j in S(e)} d_j x_j <= c_e, x in [0,1]^n.
//
// Its optimum upper-bounds OPT_UFPP and hence OPT_SAP, which is how the
// ratio harness bounds approximation factors on instances too large for the
// exact oracles.
#pragma once

#include <span>

#include "src/lp/simplex.hpp"
#include "src/model/path_instance.hpp"

namespace sap {

/// Builds the relaxation over `subset` (variables indexed by position in
/// subset). Edges no selected task uses contribute no row.
[[nodiscard]] LpProblem build_ufpp_relaxation(const PathInstance& inst,
                                              std::span<const TaskId> subset);

/// Convenience: relaxation over all tasks.
[[nodiscard]] LpProblem build_ufpp_relaxation(const PathInstance& inst);

/// Solves the relaxation over `subset`; x is indexed by subset position.
[[nodiscard]] LpSolution solve_ufpp_relaxation(const PathInstance& inst,
                                               std::span<const TaskId> subset);

/// Same, with explicit LP options (pricing rule, deadline, arena). Bound
/// consumers that only need the objective value pass steepest-edge here;
/// anything that consumes x fractionally sticks with the default overload.
[[nodiscard]] LpSolution solve_ufpp_relaxation(const PathInstance& inst,
                                               std::span<const TaskId> subset,
                                               const LpOptions& options);

/// Fractional optimum over all tasks: an upper bound on OPT_UFPP >= OPT_SAP.
[[nodiscard]] double ufpp_lp_upper_bound(const PathInstance& inst);

}  // namespace sap
