// Two-phase primal simplex, built from scratch.
//
// This is the LP substrate behind (a) the UFPP LP relaxation used by the
// small-task LP-rounding pipeline (the relaxation of ILP (1) in the paper),
// (b) LP upper bounds on OPT used by the ratio harness when instances exceed
// the exact oracles, and (c) bounding in the exact UFPP branch-and-bound.
//
// The tableau lives in flat arena-backed storage (src/util/flat.hpp): a
// solve borrows the calling thread's arena (or one supplied via LpOptions)
// and releases its whole footprint on return, so repeated solves -- the
// branch-and-bound bound loop above all -- touch the heap only to copy the
// final x vector out.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/deadline.hpp"

namespace sap {

class Arena;

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeout,  ///< the deadline expired mid-solve; no solution is returned
};

enum class LpRelation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum_i coeffs[i] * x[i] (rel) rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program in n non-negative variables: maximize objective . x
/// subject to the constraints (x >= 0 implicit; upper bounds are rows).
struct LpProblem {
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  [[nodiscard]] std::size_t num_vars() const noexcept {
    return objective.size();
  }
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Entering-column pricing rule.
enum class LpPricing {
  /// Dantzig: most negative reduced cost. The default; every consumer whose
  /// downstream output is locked byte-identical (golden fixtures) uses it.
  kDantzig,
  /// Steepest-edge (recomputed form): maximize cost_c^2 / (1 + ||A_c||^2).
  /// Typically far fewer pivots on the degenerate knapsack-like relaxations
  /// the branch-and-bound bound loop solves; the optimum reached is the
  /// same LP optimum, but the path (and float round-off in the objective)
  /// may differ, so only bound-style consumers opt in.
  kSteepestEdge,
};

struct LpOptions {
  /// Pivot budget across both phases; 0 picks an automatic budget scaled to
  /// the problem size. Bland's anti-cycling rule takes over halfway through.
  std::size_t max_iterations = 0;
  /// Polled once per pivot; on expiry the solve returns LpStatus::kTimeout
  /// with no solution (never a partial basis).
  Deadline deadline{};
  LpPricing pricing = LpPricing::kDantzig;
  /// Arena for the tableau. nullptr borrows the calling thread's arena;
  /// either way the solve's footprint is recycled on return.
  Arena* arena = nullptr;
};

/// Solves `problem` with dense two-phase primal simplex on a flat
/// arena-backed tableau. Pricing is per LpOptions with a Bland's-rule
/// fallback after a stall to guarantee termination.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  const LpOptions& options);

/// Convenience wrapper: Dantzig pricing on the calling thread's arena.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  std::size_t max_iterations = 0,
                                  Deadline deadline = {});

}  // namespace sap
