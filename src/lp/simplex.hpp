// Two-phase primal simplex, built from scratch.
//
// This is the LP substrate behind (a) the UFPP LP relaxation used by the
// small-task LP-rounding pipeline (the relaxation of ILP (1) in the paper),
// (b) LP upper bounds on OPT used by the ratio harness when instances exceed
// the exact oracles, and (c) bounding in the exact UFPP branch-and-bound.
#pragma once

#include <cstddef>
#include <vector>

#include "src/lp/dense_matrix.hpp"
#include "src/util/deadline.hpp"

namespace sap {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeout,  ///< the deadline expired mid-solve; no solution is returned
};

enum class LpRelation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum_i coeffs[i] * x[i] (rel) rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program in n non-negative variables: maximize objective . x
/// subject to the constraints (x >= 0 implicit; upper bounds are rows).
struct LpProblem {
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  [[nodiscard]] std::size_t num_vars() const noexcept {
    return objective.size();
  }
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves `problem` with dense two-phase primal simplex. Largest-coefficient
/// pricing with a Bland's-rule fallback kicks in after a stall to guarantee
/// termination; `max_iterations` (0 = automatic) is a final backstop.
/// `deadline` is polled once per pivot: on expiry the solve stops with
/// LpStatus::kTimeout and an empty solution (never a partial basis).
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  std::size_t max_iterations = 0,
                                  Deadline deadline = {});

}  // namespace sap
