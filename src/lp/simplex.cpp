#include "src/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/telemetry.hpp"

namespace sap {
namespace {

constexpr double kEps = 1e-9;

/// Dense tableau state shared by both phases.
struct Tableau {
  DenseMatrix a;               // m x total coefficient matrix
  std::vector<double> rhs;     // m, kept >= -kEps
  std::vector<double> cost;    // reduced-cost row (minimization)
  double cost_rhs = 0.0;       // negated objective value so far
  std::vector<std::size_t> basis;  // m entries, column of basic var per row
  std::size_t iterations = 0;      // pivots taken across both phases

  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = a(row, col);
    a.scale_row(row, 1.0 / pivot_value);
    rhs[row] /= pivot_value;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      if (r == row) continue;
      const double factor = a(r, col);
      if (std::abs(factor) < kEps) continue;
      a.axpy_row(r, row, -factor);
      rhs[r] -= factor * rhs[row];
      a(r, col) = 0.0;  // clear residual round-off exactly
    }
    const double cost_factor = cost[col];
    if (std::abs(cost_factor) > 0.0) {
      const double* src = a.row(row);
      for (std::size_t c = 0; c < cost.size(); ++c) {
        cost[c] -= cost_factor * src[c];
      }
      cost_rhs -= cost_factor * rhs[row];
      cost[col] = 0.0;
    }
    basis[row] = col;
  }

  /// Runs simplex iterations on the current cost row until optimal,
  /// unbounded, the iteration budget runs out, or `gate` expires. A pivot on
  /// a dense tableau is heavy, so the gate is polled every iteration (the
  /// gate's stride amortizes the clock read).
  LpStatus iterate(std::size_t max_iterations, DeadlineGate* gate) {
    const std::size_t bland_after = max_iterations / 2;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      if (gate != nullptr && gate->expired()) return LpStatus::kTimeout;
      const bool bland = iter >= bland_after;
      // Entering column: most negative reduced cost (or first, under Bland).
      std::size_t enter = cost.size();
      double best = -kEps;
      for (std::size_t c = 0; c < cost.size(); ++c) {
        if (cost[c] < best) {
          enter = c;
          if (bland) break;
          best = cost[c];
        }
      }
      if (enter == cost.size()) return LpStatus::kOptimal;

      // Ratio test: tightest row; ties to the smallest basis column (keeps
      // Bland's rule anti-cycling valid in the fallback regime).
      std::size_t leave = a.rows();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < a.rows(); ++r) {
        const double coeff = a(r, enter);
        if (coeff <= kEps) continue;
        const double ratio = rhs[r] / coeff;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave < a.rows() &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
      if (leave == a.rows()) return LpStatus::kUnbounded;
      pivot(leave, enter);
      ++iterations;
    }
    return LpStatus::kIterationLimit;
  }
};

/// Reports pivot counts on every exit path of solve_lp (including error
/// returns), so "lp.iterations" matches the work actually done.
struct PivotTelemetry {
  const Tableau& tableau;
  ~PivotTelemetry() {
    telemetry::count("lp.solves");
    telemetry::count("lp.iterations",
                     static_cast<std::int64_t>(tableau.iterations));
  }
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, std::size_t max_iterations,
                    Deadline deadline) {
  ScopedTimer timer("lp.solve");
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  if (max_iterations == 0) max_iterations = 200 * (n + m + 16);
  // Pivots are O(m * columns) apiece, so a short stride keeps cancellation
  // prompt without measurable overhead.
  DeadlineGate gate(deadline, /*stride=*/16);

  // Column layout: [0, n) structural, [n, n + m) slack/surplus (one per
  // row; unused for equalities), [n + m, n + m + artificials) artificial.
  std::size_t num_artificial = 0;
  std::vector<bool> row_flipped(m, false);
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& con = problem.constraints[r];
    double rhs = con.rhs;
    LpRelation rel = con.relation;
    if (rhs < 0.0) {  // normalize to rhs >= 0 by negating the row
      row_flipped[r] = true;
      rhs = -rhs;
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    // >= rows and equalities need an artificial; <= rows start on slack.
    if (rel != LpRelation::kLessEqual) ++num_artificial;
  }

  const std::size_t total = n + m + num_artificial;
  Tableau t;
  const PivotTelemetry pivot_telemetry{t};
  t.a = DenseMatrix(m, total);
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, 0);

  std::size_t next_artificial = n + m;
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& con = problem.constraints[r];
    const double sign = row_flipped[r] ? -1.0 : 1.0;
    for (std::size_t c = 0; c < std::min(n, con.coeffs.size()); ++c) {
      t.a(r, c) = sign * con.coeffs[c];
    }
    double rhs = sign * con.rhs;
    LpRelation rel = con.relation;
    if (row_flipped[r]) {
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    t.rhs[r] = rhs;
    switch (rel) {
      case LpRelation::kLessEqual:
        t.a(r, n + r) = 1.0;
        t.basis[r] = n + r;
        break;
      case LpRelation::kGreaterEqual:
        t.a(r, n + r) = -1.0;  // surplus
        t.a(r, next_artificial) = 1.0;
        t.basis[r] = next_artificial++;
        break;
      case LpRelation::kEqual:
        t.a(r, next_artificial) = 1.0;
        t.basis[r] = next_artificial++;
        break;
    }
  }

  LpSolution out;

  // Phase 1: minimize the sum of artificials (skippable when there are none).
  if (num_artificial > 0) {
    t.cost.assign(total, 0.0);
    t.cost_rhs = 0.0;
    for (std::size_t c = n + m; c < total; ++c) t.cost[c] = 1.0;
    // Price out the artificial basis so reduced costs start consistent.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= n + m) {
        const double* src = t.a.row(r);
        for (std::size_t c = 0; c < total; ++c) t.cost[c] -= src[c];
        t.cost_rhs -= t.rhs[r];
      }
    }
    const LpStatus phase1 = t.iterate(max_iterations, &gate);
    if (phase1 == LpStatus::kIterationLimit ||
        phase1 == LpStatus::kTimeout) {
      out.status = phase1;
      return out;
    }
    if (-t.cost_rhs > 1e-7) {  // objective value = -cost_rhs
      out.status = LpStatus::kInfeasible;
      return out;
    }
    // Drive any artificial still in the basis out (degenerate at zero).
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n + m) continue;
      std::size_t enter = total;
      for (std::size_t c = 0; c < n + m; ++c) {
        if (std::abs(t.a(r, c)) > kEps) {
          enter = c;
          break;
        }
      }
      if (enter == total) continue;  // redundant row; leave it degenerate
      t.pivot(r, enter);
    }
  }

  // Phase 2: minimize -objective over structural variables; forbid
  // artificials by pricing them prohibitively.
  t.cost.assign(total, 0.0);
  t.cost_rhs = 0.0;
  for (std::size_t c = 0; c < n; ++c) t.cost[c] = -problem.objective[c];
  for (std::size_t c = n + m; c < total; ++c) {
    t.cost[c] = 1e30;  // never re-enter
  }
  for (std::size_t r = 0; r < m; ++r) {  // price out the current basis
    const double basic_cost = t.cost[t.basis[r]];
    if (basic_cost == 0.0) continue;
    const double* src = t.a.row(r);
    const std::size_t basic = t.basis[r];
    for (std::size_t c = 0; c < total; ++c) t.cost[c] -= basic_cost * src[c];
    t.cost_rhs -= basic_cost * t.rhs[r];
    t.cost[basic] = 0.0;
  }
  const LpStatus phase2 = t.iterate(max_iterations, &gate);
  if (phase2 != LpStatus::kOptimal) {
    out.status = phase2;
    return out;
  }

  out.status = LpStatus::kOptimal;
  out.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) out.x[t.basis[r]] = std::max(0.0, t.rhs[r]);
  }
  out.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    out.objective += problem.objective[c] * out.x[c];
  }
  return out;
}

}  // namespace sap
