#include "src/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/util/arena.hpp"
#include "src/util/flat.hpp"
#include "src/util/telemetry.hpp"

namespace sap {
namespace {

constexpr double kEps = 1e-9;

/// Dense tableau state shared by both phases. All storage is flat and
/// arena-backed; a Tableau is built fresh per solve and its footprint is
/// reclaimed wholesale by the caller's ArenaScope.
struct Tableau {
  FlatMat<double> a;          // m x total coefficient matrix
  FlatBuf<double> rhs;        // m, kept >= -kEps
  FlatBuf<double> cost;       // reduced-cost row (minimization)
  FlatBuf<double> gamma;      // steepest-edge scratch: 1 + ||A_c||^2
  double cost_rhs = 0.0;      // negated objective value so far
  FlatBuf<std::size_t> basis;  // m entries, column of basic var per row
  std::size_t iterations = 0;  // pivots taken across both phases

  explicit Tableau(Arena& arena)
      : a(arena), rhs(arena), cost(arena), gamma(arena), basis(arena) {}

  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = a(row, col);
    const std::size_t width = a.cols();
    double* prow = a.row(row).data();
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < width; ++c) prow[c] *= inv;
    rhs[row] /= pivot_value;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      if (r == row) continue;
      const double factor = a(r, col);
      if (std::abs(factor) < kEps) continue;
      double* tr = a.row(r).data();
      const double neg = -factor;
      for (std::size_t c = 0; c < width; ++c) tr[c] += neg * prow[c];
      rhs[r] -= factor * rhs[row];
      tr[col] = 0.0;  // clear residual round-off exactly
    }
    const double cost_factor = cost[col];
    if (std::abs(cost_factor) > 0.0) {
      const double* src = prow;
      for (std::size_t c = 0; c < cost.size(); ++c) {
        cost[c] -= cost_factor * src[c];
      }
      cost_rhs -= cost_factor * rhs[row];
      cost[col] = 0.0;
    }
    basis[row] = col;
  }

  /// Dantzig pricing: most negative reduced cost (or the first negative
  /// column under Bland's rule). Returns cost.size() when optimal.
  [[nodiscard]] std::size_t price_dantzig(bool bland) const {
    std::size_t enter = cost.size();
    double best = -kEps;
    for (std::size_t c = 0; c < cost.size(); ++c) {
      if (cost[c] < best) {
        enter = c;
        if (bland) break;
        best = cost[c];
      }
    }
    return enter;
  }

  /// Steepest-edge pricing, recomputed form: among columns with negative
  /// reduced cost, maximize cost_c^2 / (1 + ||A_c||^2). The norms are
  /// accumulated row-major (one cache-friendly sweep of the tableau) into
  /// the reusable gamma row; ties break to the smallest column index.
  [[nodiscard]] std::size_t price_steepest() {
    const std::size_t width = cost.size();
    gamma.resize(width);
    for (std::size_t c = 0; c < width; ++c) gamma[c] = 1.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double* src = a.row(r).data();
      for (std::size_t c = 0; c < width; ++c) gamma[c] += src[c] * src[c];
    }
    std::size_t enter = width;
    double best = 0.0;
    for (std::size_t c = 0; c < width; ++c) {
      if (cost[c] >= -kEps) continue;
      const double score = cost[c] * cost[c] / gamma[c];
      if (score > best) {
        best = score;
        enter = c;
      }
    }
    return enter;
  }

  /// Runs simplex iterations on the current cost row until optimal,
  /// unbounded, the iteration budget runs out, or `gate` expires. A pivot on
  /// a dense tableau is heavy, so the gate is polled every iteration (the
  /// gate's stride amortizes the clock read).
  LpStatus iterate(std::size_t max_iterations, DeadlineGate* gate,
                   LpPricing pricing) {
    const std::size_t bland_after = max_iterations / 2;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      if (gate != nullptr && gate->expired()) return LpStatus::kTimeout;
      const bool bland = iter >= bland_after;
      const std::size_t enter = (bland || pricing == LpPricing::kDantzig)
                                    ? price_dantzig(bland)
                                    : price_steepest();
      if (enter == cost.size()) return LpStatus::kOptimal;

      // Ratio test: tightest row; ties to the smallest basis column (keeps
      // Bland's rule anti-cycling valid in the fallback regime).
      std::size_t leave = a.rows();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < a.rows(); ++r) {
        const double coeff = a(r, enter);
        if (coeff <= kEps) continue;
        const double ratio = rhs[r] / coeff;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave < a.rows() &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
      if (leave == a.rows()) return LpStatus::kUnbounded;
      pivot(leave, enter);
      ++iterations;
    }
    return LpStatus::kIterationLimit;
  }
};

/// Reports pivot counts on every exit path of solve_lp (including error
/// returns), so "lp.iterations" matches the work actually done.
struct PivotTelemetry {
  const Tableau& tableau;
  ~PivotTelemetry() {
    telemetry::count("lp.solves");
    telemetry::count("lp.iterations",
                     static_cast<std::int64_t>(tableau.iterations));
  }
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const LpOptions& options) {
  ScopedTimer timer("lp.solve");
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  std::size_t max_iterations = options.max_iterations;
  if (max_iterations == 0) max_iterations = 200 * (n + m + 16);
  // Pivots are O(m * columns) apiece, so a short stride keeps cancellation
  // prompt without measurable overhead.
  DeadlineGate gate(options.deadline, /*stride=*/16);

  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  ArenaScope scope(arena);

  // Column layout: [0, n) structural, [n, n + m) slack/surplus (one per
  // row; unused for equalities), [n + m, n + m + artificials) artificial.
  std::size_t num_artificial = 0;
  FlatBuf<unsigned char> row_flipped(arena);
  row_flipped.resize_zeroed(m);
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& con = problem.constraints[r];
    double rhs = con.rhs;
    LpRelation rel = con.relation;
    if (rhs < 0.0) {  // normalize to rhs >= 0 by negating the row
      row_flipped[r] = 1;
      rhs = -rhs;
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    // >= rows and equalities need an artificial; <= rows start on slack.
    if (rel != LpRelation::kLessEqual) ++num_artificial;
  }

  const std::size_t total = n + m + num_artificial;
  Tableau t(arena);
  const PivotTelemetry pivot_telemetry{t};
  t.a.reshape_zeroed(m, total);
  t.rhs.resize_zeroed(m);
  t.basis.resize_zeroed(m);

  std::size_t next_artificial = n + m;
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& con = problem.constraints[r];
    const double sign = row_flipped[r] != 0 ? -1.0 : 1.0;
    for (std::size_t c = 0; c < std::min(n, con.coeffs.size()); ++c) {
      t.a(r, c) = sign * con.coeffs[c];
    }
    double rhs = sign * con.rhs;
    LpRelation rel = con.relation;
    if (row_flipped[r] != 0) {
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    t.rhs[r] = rhs;
    switch (rel) {
      case LpRelation::kLessEqual:
        t.a(r, n + r) = 1.0;
        t.basis[r] = n + r;
        break;
      case LpRelation::kGreaterEqual:
        t.a(r, n + r) = -1.0;  // surplus
        t.a(r, next_artificial) = 1.0;
        t.basis[r] = next_artificial++;
        break;
      case LpRelation::kEqual:
        t.a(r, next_artificial) = 1.0;
        t.basis[r] = next_artificial++;
        break;
    }
  }

  LpSolution out;

  // Phase 1: minimize the sum of artificials (skippable when there are none).
  if (num_artificial > 0) {
    t.cost.resize(total);
    std::fill(t.cost.begin(), t.cost.end(), 0.0);
    t.cost_rhs = 0.0;
    for (std::size_t c = n + m; c < total; ++c) t.cost[c] = 1.0;
    // Price out the artificial basis so reduced costs start consistent.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= n + m) {
        const double* src = t.a.row(r).data();
        for (std::size_t c = 0; c < total; ++c) t.cost[c] -= src[c];
        t.cost_rhs -= t.rhs[r];
      }
    }
    const LpStatus phase1 = t.iterate(max_iterations, &gate, options.pricing);
    if (phase1 == LpStatus::kIterationLimit ||
        phase1 == LpStatus::kTimeout) {
      out.status = phase1;
      return out;
    }
    if (-t.cost_rhs > 1e-7) {  // objective value = -cost_rhs
      out.status = LpStatus::kInfeasible;
      return out;
    }
    // Drive any artificial still in the basis out (degenerate at zero).
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n + m) continue;
      std::size_t enter = total;
      for (std::size_t c = 0; c < n + m; ++c) {
        if (std::abs(t.a(r, c)) > kEps) {
          enter = c;
          break;
        }
      }
      if (enter == total) continue;  // redundant row; leave it degenerate
      t.pivot(r, enter);
    }
  }

  // Phase 2: minimize -objective over structural variables; forbid
  // artificials by pricing them prohibitively.
  t.cost.resize(total);
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  t.cost_rhs = 0.0;
  for (std::size_t c = 0; c < n; ++c) t.cost[c] = -problem.objective[c];
  for (std::size_t c = n + m; c < total; ++c) {
    t.cost[c] = 1e30;  // never re-enter
  }
  for (std::size_t r = 0; r < m; ++r) {  // price out the current basis
    const double basic_cost = t.cost[t.basis[r]];
    if (basic_cost == 0.0) continue;
    const double* src = t.a.row(r).data();
    const std::size_t basic = t.basis[r];
    for (std::size_t c = 0; c < total; ++c) t.cost[c] -= basic_cost * src[c];
    t.cost_rhs -= basic_cost * t.rhs[r];
    t.cost[basic] = 0.0;
  }
  const LpStatus phase2 = t.iterate(max_iterations, &gate, options.pricing);
  if (phase2 != LpStatus::kOptimal) {
    out.status = phase2;
    return out;
  }

  out.status = LpStatus::kOptimal;
  out.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) out.x[t.basis[r]] = std::max(0.0, t.rhs[r]);
  }
  out.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    out.objective += problem.objective[c] * out.x[c];
  }
  return out;
}

LpSolution solve_lp(const LpProblem& problem, std::size_t max_iterations,
                    Deadline deadline) {
  LpOptions options;
  options.max_iterations = max_iterations;
  options.deadline = deadline;
  return solve_lp(problem, options);
}

}  // namespace sap
