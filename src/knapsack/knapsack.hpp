// 0/1 knapsack: exact dynamic programs, the classic profit-scaling FPTAS and
// a density-greedy 1/2-approximation.
//
// The ring reduction (Lemma 18) stacks every task routed through the cut
// edge from height 0, so selecting those tasks is exactly a knapsack with
// capacity = the cut edge's (minimum) capacity; the paper calls an FPTAS.
#pragma once

#include <span>
#include <vector>

#include "src/model/task.hpp"

namespace sap {

struct KnapsackItem {
  Value size = 0;
  Weight profit = 0;
};

struct KnapsackResult {
  Weight profit = 0;
  std::vector<std::size_t> chosen;  ///< indices into the item span
};

/// Exact DP over capacities: O(n * capacity) time and O(capacity) + parent
/// tracking memory. Requires capacity >= 0; sizes must be positive.
[[nodiscard]] KnapsackResult knapsack_exact_by_capacity(
    std::span<const KnapsackItem> items, Value capacity);

/// Exact DP over achievable profit: O(n * total_profit). Preferable when
/// profits are small and capacity is huge.
[[nodiscard]] KnapsackResult knapsack_exact_by_weight(
    std::span<const KnapsackItem> items, Value capacity);

/// FPTAS: profit >= (1 - eps) * OPT, time O(n^3 / eps) via profit scaling
/// over the by-weight DP. eps must be in (0, 1).
[[nodiscard]] KnapsackResult knapsack_fptas(
    std::span<const KnapsackItem> items, Value capacity, double eps);

/// Density greedy plus best-single-item: a 1/2-approximation baseline.
[[nodiscard]] KnapsackResult knapsack_greedy(
    std::span<const KnapsackItem> items, Value capacity);

}  // namespace sap
