#include "src/knapsack/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace sap {
namespace {

constexpr Value kInfSize = std::numeric_limits<Value>::max() / 4;

}  // namespace

KnapsackResult knapsack_exact_by_capacity(std::span<const KnapsackItem> items,
                                          Value capacity) {
  if (capacity < 0) throw std::invalid_argument("knapsack: capacity < 0");
  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  // best[c] = max profit using size budget exactly <= c; take[i][c] tracks
  // decisions for reconstruction.
  std::vector<Weight> best(cap + 1, 0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const auto size = items[i].size;
    if (size <= 0) throw std::invalid_argument("knapsack: size <= 0");
    if (size > capacity) continue;
    const auto s = static_cast<std::size_t>(size);
    for (std::size_t c = cap; c >= s; --c) {
      const Weight with = best[c - s] + items[i].profit;
      if (with > best[c]) {
        best[c] = with;
        take[i][c] = true;
      }
      if (c == s) break;
    }
  }
  KnapsackResult out;
  out.profit = best[cap];
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      out.chosen.push_back(i);
      c -= static_cast<std::size_t>(items[i].size);
    }
  }
  std::ranges::reverse(out.chosen);
  return out;
}

KnapsackResult knapsack_exact_by_weight(std::span<const KnapsackItem> items,
                                        Value capacity) {
  if (capacity < 0) throw std::invalid_argument("knapsack: capacity < 0");
  const std::size_t n = items.size();
  Weight total_profit = 0;
  for (const KnapsackItem& item : items) {
    if (item.size <= 0) throw std::invalid_argument("knapsack: size <= 0");
    if (item.profit < 0) throw std::invalid_argument("knapsack: profit < 0");
    total_profit += item.profit;
  }
  const auto p_max = static_cast<std::size_t>(total_profit);
  // min_size[p] = minimum total size achieving profit exactly p.
  std::vector<Value> min_size(p_max + 1, kInfSize);
  min_size[0] = 0;
  std::vector<std::vector<bool>> take(n, std::vector<bool>(p_max + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const auto profit = static_cast<std::size_t>(items[i].profit);
    if (profit == 0) continue;  // zero-profit items never help
    for (std::size_t p = p_max; p >= profit; --p) {
      if (min_size[p - profit] >= kInfSize) {
        if (p == profit) break;
        continue;
      }
      const Value with = min_size[p - profit] + items[i].size;
      if (with < min_size[p]) {
        min_size[p] = with;
        take[i][p] = true;
      }
      if (p == profit) break;
    }
  }
  std::size_t best_p = 0;
  for (std::size_t p = 0; p <= p_max; ++p) {
    if (min_size[p] <= capacity) best_p = p;
  }
  KnapsackResult out;
  out.profit = static_cast<Weight>(best_p);
  std::size_t p = best_p;
  for (std::size_t i = n; i-- > 0;) {
    if (p > 0 && take[i][p]) {
      out.chosen.push_back(i);
      p -= static_cast<std::size_t>(items[i].profit);
    }
  }
  std::ranges::reverse(out.chosen);
  return out;
}

KnapsackResult knapsack_fptas(std::span<const KnapsackItem> items,
                              Value capacity, double eps) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("knapsack_fptas: eps must be in (0,1)");
  }
  const std::size_t n = items.size();
  Weight max_profit = 0;
  for (const KnapsackItem& item : items) {
    if (item.size <= capacity) max_profit = std::max(max_profit, item.profit);
  }
  if (max_profit == 0 || n == 0) return {};

  // Scale so total scaled profit is O(n^2 / eps); the classic bound loses at
  // most one scaled unit per chosen item, i.e. <= eps * OPT overall.
  const double k = eps * static_cast<double>(max_profit) /
                   static_cast<double>(n);
  std::vector<KnapsackItem> scaled(items.begin(), items.end());
  if (k > 1.0) {
    for (KnapsackItem& item : scaled) {
      item.profit = static_cast<Weight>(
          std::floor(static_cast<double>(item.profit) / k));
    }
  }
  KnapsackResult picked = knapsack_exact_by_weight(scaled, capacity);
  // Report true profits for the chosen set.
  KnapsackResult out;
  out.chosen = std::move(picked.chosen);
  for (std::size_t i : out.chosen) out.profit += items[i].profit;
  return out;
}

KnapsackResult knapsack_greedy(std::span<const KnapsackItem> items,
                               Value capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::ranges::sort(order, [&](std::size_t a, std::size_t b) {
    // Compare profit densities exactly: p_a/s_a > p_b/s_b.
    const Int128 lhs = static_cast<Int128>(items[a].profit) * items[b].size;
    const Int128 rhs = static_cast<Int128>(items[b].profit) * items[a].size;
    if (lhs != rhs) return lhs > rhs;
    return a < b;  // tie-break: order must not depend on sort internals
  });
  KnapsackResult greedy;
  Value used = 0;
  for (std::size_t i : order) {
    if (items[i].size <= 0) throw std::invalid_argument("knapsack: size <= 0");
    if (used + items[i].size <= capacity) {
      used += items[i].size;
      greedy.profit += items[i].profit;
      greedy.chosen.push_back(i);
    }
  }
  // Best single item can beat the greedy prefix; take the better of the two.
  KnapsackResult single;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].size <= capacity && items[i].profit > single.profit) {
      single.profit = items[i].profit;
      single.chosen = {i};
    }
  }
  return greedy.profit >= single.profit ? greedy : single;
}

}  // namespace sap
