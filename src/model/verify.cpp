#include "src/model/verify.hpp"

#include <algorithm>
#include <functional>
#include <map>
// sapkit-lint: allow(determinism) -- duplicate-id membership test only; the
// set is queried, never iterated, so its order cannot reach any output.
#include <unordered_set>

#include "src/util/checked.hpp"

namespace sap {

const char* verify_error_name(VerifyError error) noexcept {
  switch (error) {
    case VerifyError::kNone:
      return "none";
    case VerifyError::kIdOutOfRange:
      return "id_out_of_range";
    case VerifyError::kDuplicateId:
      return "duplicate_id";
    case VerifyError::kNegativeHeight:
      return "negative_height";
    case VerifyError::kCapacityExceeded:
      return "capacity_exceeded";
    case VerifyError::kVerticalOverlap:
      return "vertical_overlap";
    case VerifyError::kOverflow:
      return "overflow";
    case VerifyError::kOther:
      return "other";
  }
  return "other";
}

namespace {

VerifyResult check_ids(const PathInstance& inst,
                       std::span<const TaskId> tasks) {
  // sapkit-lint: allow(determinism) -- membership test only, never iterated.
  std::unordered_set<TaskId> seen;
  seen.reserve(tasks.size());
  for (TaskId j : tasks) {
    if (j < 0 || static_cast<std::size_t>(j) >= inst.num_tasks()) {
      return VerifyResult::failure(
          VerifyError::kIdOutOfRange,
          "task id " + std::to_string(j) + " out of range");
    }
    if (!seen.insert(j).second) {
      return VerifyResult::failure(
          VerifyError::kDuplicateId,
          "task id " + std::to_string(j) + " selected twice");
    }
  }
  return VerifyResult::success();
}

/// Per-edge load check with overflow-checked accumulation: demands are
/// bucketed by entry/exit edge (a difference array) and the running load is
/// maintained with checked_add, so an adversarial task set whose loads
/// exceed int64 yields a typed kOverflow failure instead of UB.
VerifyResult check_loads(const PathInstance& inst,
                         std::span<const TaskId> tasks,
                         const std::function<Value(EdgeId)>& limit_of) {
  const std::size_t m = inst.num_edges();
  std::vector<Value> enter(m, 0);
  std::vector<Value> leave(m, 0);
  for (TaskId j : tasks) {
    const Task& t = inst.task(j);
    auto& in = enter[static_cast<std::size_t>(t.first)];
    auto& out = leave[static_cast<std::size_t>(t.last)];
    if (!checked_add(in, t.demand, &in) || !checked_add(out, t.demand, &out)) {
      return VerifyResult::failure(VerifyError::kOverflow,
                                   "edge load accumulation overflows int64");
    }
  }
  Value load = 0;
  for (std::size_t e = 0; e < m; ++e) {
    if (!checked_add(load, enter[e], &load)) {
      return VerifyResult::failure(VerifyError::kOverflow,
                                   "edge load accumulation overflows int64");
    }
    const auto edge = static_cast<EdgeId>(e);
    if (load > limit_of(edge)) {
      return VerifyResult::failure(
          VerifyError::kCapacityExceeded,
          "load " + std::to_string(load) + " exceeds limit " +
              std::to_string(limit_of(edge)) + " on edge " +
              std::to_string(e));
    }
    load -= leave[e];  // subtracting previously-added demands cannot wrap
  }
  return VerifyResult::success();
}

}  // namespace

VerifyResult verify_ufpp(const PathInstance& inst, const UfppSolution& sol) {
  if (auto r = check_ids(inst, sol.tasks); !r) return r;
  return check_loads(inst, sol.tasks,
                     [&](EdgeId e) { return inst.capacity(e); });
}

VerifyResult verify_ufpp_packable(const PathInstance& inst,
                                  const UfppSolution& sol, Value bound) {
  if (auto r = check_ids(inst, sol.tasks); !r) return r;
  return check_loads(inst, sol.tasks, [&](EdgeId) { return bound; });
}

namespace detail {

VerifyResult verify_sap_impl(const PathInstance& inst, const SapSolution& sol,
                             const std::function<Value(TaskId)>& cap_of) {
  std::vector<TaskId> ids;
  ids.reserve(sol.placements.size());
  for (const Placement& p : sol.placements) ids.push_back(p.task);
  if (auto r = check_ids(inst, ids); !r) return r;

  for (const Placement& p : sol.placements) {
    if (p.height < 0) {
      return VerifyResult::failure(
          VerifyError::kNegativeHeight,
          "task " + std::to_string(p.task) + " has negative height");
    }
    Value top = 0;
    if (!checked_add(p.height, inst.task(p.task).demand, &top)) {
      return VerifyResult::failure(
          VerifyError::kOverflow,
          "task " + std::to_string(p.task) +
              " stacking height overflows int64");
    }
    if (top > cap_of(p.task)) {
      return VerifyResult::failure(
          VerifyError::kCapacityExceeded,
          "task " + std::to_string(p.task) + " top " + std::to_string(top) +
              " exceeds its capacity limit " +
              std::to_string(cap_of(p.task)));
    }
  }

  // Sweep edges left to right; maintain active vertical intervals in a map
  // keyed by height, and check each insertion against its neighbours.
  struct Event {
    EdgeId edge;
    bool insert;
    std::size_t index;  // into sol.placements
  };
  std::vector<Event> events;
  events.reserve(2 * sol.placements.size());
  for (std::size_t i = 0; i < sol.placements.size(); ++i) {
    const Task& t = inst.task(sol.placements[i].task);
    events.push_back({t.first, true, i});
    events.push_back({static_cast<EdgeId>(t.last + 1), false, i});
  }
  std::ranges::sort(events, [](const Event& a, const Event& b) {
    if (a.edge != b.edge) return a.edge < b.edge;
    return a.insert < b.insert;  // removals before insertions on each edge
  });

  std::map<Value, std::pair<Value, TaskId>> active;  // height -> (top, id)
  for (const Event& ev : events) {
    const Placement& p = sol.placements[ev.index];
    const Value bottom = p.height;
    // sapkit-lint: allow(exact-arith) -- the same sum passed checked_add in
    // the per-placement pass above, so recomputing it raw cannot overflow.
    const Value top = p.height + inst.task(p.task).demand;
    if (!ev.insert) {
      active.erase(bottom);
      continue;
    }
    auto above = active.lower_bound(bottom);
    if (above != active.end() && above->first < top) {
      return VerifyResult::failure(
          VerifyError::kVerticalOverlap,
          "tasks " + std::to_string(p.task) + " and " +
              std::to_string(above->second.second) + " overlap vertically");
    }
    if (above != active.begin()) {
      auto below = std::prev(above);
      if (below->second.first > bottom) {
        return VerifyResult::failure(
            VerifyError::kVerticalOverlap,
            "tasks " + std::to_string(p.task) + " and " +
                std::to_string(below->second.second) + " overlap vertically");
      }
    }
    active.emplace(bottom, std::make_pair(top, p.task));
  }
  return VerifyResult::success();
}

}  // namespace detail

VerifyResult verify_sap(const PathInstance& inst, const SapSolution& sol) {
  return detail::verify_sap_impl(
      inst, sol, [&](TaskId j) { return inst.bottleneck(j); });
}

VerifyResult verify_sap_packable(const PathInstance& inst,
                                 const SapSolution& sol, Value bound) {
  return detail::verify_sap_impl(inst, sol, [&](TaskId) { return bound; });
}

}  // namespace sap
