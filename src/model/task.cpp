#include "src/model/task.hpp"

// Header-only value types; this TU anchors the header in the build so
// compiler warnings cover it.
namespace sap {
static_assert(sizeof(Task) == 24);
}  // namespace sap
