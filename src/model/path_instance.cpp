#include "src/model/path_instance.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "src/util/checked.hpp"

namespace sap {

PathInstance::PathInstance(std::vector<Value> capacities,
                           std::vector<Task> tasks)
    : capacities_(std::move(capacities)), tasks_(std::move(tasks)) {
  if (capacities_.empty()) {
    throw std::invalid_argument("PathInstance: path must have >= 1 edge");
  }
  for (std::size_t e = 0; e < capacities_.size(); ++e) {
    if (capacities_[e] <= 0) {
      throw std::invalid_argument("PathInstance: capacity of edge " +
                                  std::to_string(e) + " must be positive");
    }
    if (capacities_[e] > kMaxExactCapacity) {
      throw std::invalid_argument(
          "PathInstance: capacity of edge " + std::to_string(e) +
          " exceeds 2^62 (height arithmetic would not be exact in int64)");
    }
  }
  capacity_rmq_ = RangeMin(capacities_);
  const auto m = static_cast<EdgeId>(capacities_.size());
  // Checked totals: once construction succeeds, the sum of all demands and
  // of all weights each fit in int64, so every downstream subset sum (edge
  // loads, solution weights, DP accumulators) is provably exact.
  Value demand_total = 0;
  Weight weight_total = 0;
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    const Task& t = tasks_[j];
    if (t.first < 0 || t.last >= m || t.first > t.last) {
      throw std::invalid_argument("PathInstance: task " + std::to_string(j) +
                                  " has an invalid edge range");
    }
    if (t.demand <= 0) {
      throw std::invalid_argument("PathInstance: task " + std::to_string(j) +
                                  " must have positive demand");
    }
    if (t.weight < 0) {
      throw std::invalid_argument("PathInstance: task " + std::to_string(j) +
                                  " must have non-negative weight");
    }
    if (t.demand > bottleneck(static_cast<TaskId>(j))) {
      throw std::invalid_argument("PathInstance: task " + std::to_string(j) +
                                  " exceeds its bottleneck capacity");
    }
    if (!checked_add(demand_total, t.demand, &demand_total)) {
      throw std::invalid_argument(
          "PathInstance: total demand overflows int64 (instance too large "
          "for exact arithmetic)");
    }
    if (!checked_add(weight_total, t.weight, &weight_total)) {
      throw std::invalid_argument(
          "PathInstance: total weight overflows int64 (instance too large "
          "for exact arithmetic)");
    }
  }
}

Value PathInstance::bottleneck(TaskId j) const {
  const Task& t = task(j);
  return range_bottleneck(t.first, t.last);
}

Value PathInstance::range_bottleneck(EdgeId first, EdgeId last) const {
  return capacity_rmq_.min(static_cast<std::size_t>(first),
                           static_cast<std::size_t>(last));
}

EdgeId PathInstance::bottleneck_edge(TaskId j) const {
  const Task& t = task(j);
  return static_cast<EdgeId>(capacity_rmq_.argmin(
      static_cast<std::size_t>(t.first), static_cast<std::size_t>(t.last)));
}

Value PathInstance::min_capacity() const {
  return capacity_rmq_.min(0, capacities_.size() - 1);
}

Value PathInstance::max_capacity() const {
  return *std::max_element(capacities_.begin(), capacities_.end());
}

Weight PathInstance::total_weight() const noexcept {
  return std::accumulate(
      tasks_.begin(), tasks_.end(), Weight{0},
      // sapkit-lint: allow(exact-arith) -- the constructor proved this exact
      // sum fits in int64 with checked_add; recomputing it cannot overflow.
      [](Weight acc, const Task& t) { return acc + t.weight; });
}

std::pair<PathInstance, std::vector<TaskId>> PathInstance::restrict_tasks(
    std::span<const TaskId> subset) const {
  std::vector<Task> kept;
  std::vector<TaskId> back;
  kept.reserve(subset.size());
  back.reserve(subset.size());
  for (TaskId j : subset) {
    kept.push_back(task(j));
    back.push_back(j);
  }
  return {PathInstance(capacities_, std::move(kept)), std::move(back)};
}

std::pair<PathInstance, std::vector<TaskId>> PathInstance::clamp_capacities(
    Value cap, std::span<const TaskId> subset) const {
  std::vector<Value> caps(capacities_.size());
  for (std::size_t e = 0; e < caps.size(); ++e) {
    caps[e] = std::min(capacities_[e], cap);
  }
  std::vector<Task> kept;
  std::vector<TaskId> back;
  for (TaskId j : subset) {
    const Task& t = task(j);
    if (t.demand <= std::min(cap, bottleneck(j))) {
      kept.push_back(t);
      back.push_back(j);
    }
  }
  return {PathInstance(std::move(caps), std::move(kept)), std::move(back)};
}

}  // namespace sap
