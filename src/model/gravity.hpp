// Gravity compaction (Observation 11): any feasible SAP solution can be
// transformed, without changing the selected set, into one where every task
// either rests on the floor (h = 0) or on top of an overlapping task.
//
// Used by the medium-task DP to justify its height candidate set, and as a
// post-pass that frees headroom before strip stacking and re-insertion.
#pragma once

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Applies gravity: lowers tasks in increasing-height order, each to the
/// lowest feasible position given the already-settled tasks. The result is
/// feasible whenever the input is, never raises any task, and satisfies
/// Observation 11 (every task at 0 or resting on an overlapping task's top).
[[nodiscard]] SapSolution apply_gravity(const PathInstance& inst,
                                        const SapSolution& sol);

/// True iff every placement is grounded in the Observation-11 sense.
[[nodiscard]] bool is_grounded(const PathInstance& inst,
                               const SapSolution& sol);

}  // namespace sap
