// Fundamental value types of the library: tasks on a path and the integral
// quantity types shared by every subsystem.
//
// Demands, capacities and heights are exact 64-bit integers, as are weights,
// so every feasibility check, dynamic program and oracle in the library is
// exact. (Paper quantities in R+ lose nothing: instances can be scaled.)
#pragma once

#include <compare>
#include <cstdint>

namespace sap {

using Value = std::int64_t;   ///< demands, capacities, heights
using Weight = std::int64_t;  ///< task weights / objective values
using TaskId = std::int32_t;  ///< index into an instance's task array
using EdgeId = std::int32_t;  ///< index into an instance's edge array

__extension__ typedef __int128 Int128;            ///< exact wide arithmetic
__extension__ typedef unsigned __int128 Uint128;  ///< exact wide arithmetic

/// Largest admissible edge capacity, enforced by the instance constructors.
/// Heights never exceed the (bottleneck) capacity, so with c <= 2^62 every
/// `height + demand` a solver can form satisfies h + d <= 2c < 2^63 and is
/// exact in int64 — the invariant the exact-arith lint justifications cite.
inline constexpr std::int64_t kMaxExactCapacity =
    std::int64_t{1} << 62;  // 4.6e18; any real workload is far below this

/// Exact non-negative rational, used for thresholds such as delta in
/// "delta-small" so classification never depends on floating point.
struct Ratio {
  std::int64_t num = 0;
  std::int64_t den = 1;

  /// a <= (num/den) * b, evaluated exactly in 128-bit arithmetic.
  [[nodiscard]] bool le_scaled(Value a, Value b) const noexcept {
    return static_cast<Int128>(a) * den <= static_cast<Int128>(num) * b;
  }
  /// a < (num/den) * b.
  [[nodiscard]] bool lt_scaled(Value a, Value b) const noexcept {
    return static_cast<Int128>(a) * den < static_cast<Int128>(num) * b;
  }
  // sapkit-lint: begin-allow(float-ban) -- display-only conversion for bench
  // tables and logs; no classification or feasibility decision consumes it.
  [[nodiscard]] double as_double() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  // sapkit-lint: end-allow(float-ban)
};

/// A task on a path: it uses the closed edge range [first, last], has a
/// vertical extent `demand` wherever it is placed, and yields `weight` when
/// selected. In the paper's notation I_j = [s_j, t_j) with s_j = first and
/// t_j = last + 1 (vertex indices).
struct Task {
  EdgeId first = 0;
  EdgeId last = 0;
  Value demand = 0;
  Weight weight = 0;

  friend auto operator<=>(const Task&, const Task&) = default;

  [[nodiscard]] bool uses(EdgeId e) const noexcept {
    return first <= e && e <= last;
  }
  /// True iff the two tasks share at least one edge (I_i intersects I_j).
  [[nodiscard]] bool overlaps(const Task& other) const noexcept {
    return first <= other.last && other.first <= last;
  }
  /// Number of edges used.
  [[nodiscard]] EdgeId span() const noexcept { return last - first + 1; }
};

}  // namespace sap
