#include "src/model/gravity.hpp"

#include <algorithm>
#include <vector>

namespace sap {
namespace {

/// Lowest feasible height for `t` against the fixed placements in `settled`
/// (only those overlapping t matter), capped at `max_height`. Returns
/// max_height if no lower position fits.
Value lowest_fit(const PathInstance& inst, const Task& t,
                 const std::vector<Placement>& settled, Value max_height) {
  // Candidate heights: the floor, and the top of every overlapping task.
  std::vector<std::pair<Value, Value>> blocks;  // [bottom, top) of neighbours
  for (const Placement& q : settled) {
    const Task& other = inst.task(q.task);
    if (t.overlaps(other)) {
      // sapkit-lint: allow(exact-arith) -- gravity runs on feasible inputs:
      // h + d <= c <= 2^62 (instance construction), so tops are exact.
      blocks.emplace_back(q.height, q.height + other.demand);
    }
  }
  std::ranges::sort(blocks);
  Value candidate = 0;
  for (const auto& [bottom, top] : blocks) {
    if (candidate >= max_height) break;
    // sapkit-lint: allow(exact-arith) -- candidate <= max_height <= original
    // feasible height and d <= c, so candidate + d <= 2c <= 2^63 is exact.
    if (bottom >= candidate + t.demand) break;  // gap below `bottom` fits
    candidate = std::max(candidate, top);
  }
  return std::min(candidate, max_height);
}

}  // namespace

SapSolution apply_gravity(const PathInstance& inst, const SapSolution& sol) {
  std::vector<Placement> order = sol.placements;
  std::ranges::sort(order, [](const Placement& a, const Placement& b) {
    return a.height < b.height;
  });
  std::vector<Placement> settled;
  settled.reserve(order.size());
  for (const Placement& p : order) {
    const Task& t = inst.task(p.task);
    const Value h = lowest_fit(inst, t, settled, p.height);
    settled.push_back({p.task, h});
  }
  return SapSolution{std::move(settled)};
}

bool is_grounded(const PathInstance& inst, const SapSolution& sol) {
  for (const Placement& p : sol.placements) {
    if (p.height == 0) continue;
    bool supported = false;
    const Task& t = inst.task(p.task);
    for (const Placement& q : sol.placements) {
      if (q.task == p.task) continue;
      const Task& other = inst.task(q.task);
      // sapkit-lint: allow(exact-arith) -- feasible solution: h + d <= c <=
      // 2^62 (instance construction), so the support top is exact.
      if (t.overlaps(other) && q.height + other.demand == p.height) {
        supported = true;
        break;
      }
    }
    if (!supported) return false;
  }
  return true;
}

}  // namespace sap
