// The SAP/UFPP instance on a path: edge capacities plus a task set, with O(1)
// bottleneck queries.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/model/task.hpp"
#include "src/util/rmq.hpp"

namespace sap {

/// An immutable problem instance on a path with m edges (vertices 0..m).
///
/// Construction validates that every task uses a non-empty edge range inside
/// the path, has positive demand, non-negative weight, and fits under its
/// bottleneck (tasks that cannot be scheduled alone are rejected rather than
/// silently carried: the paper assumes d_j <= b(j) throughout).
class PathInstance {
 public:
  PathInstance() = default;
  PathInstance(std::vector<Value> capacities, std::vector<Task> tasks);

  [[nodiscard]] std::size_t num_edges() const noexcept {
    return capacities_.size();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const std::vector<Value>& capacities() const noexcept {
    return capacities_;
  }
  [[nodiscard]] Value capacity(EdgeId e) const {
    return capacities_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const Task& task(TaskId j) const {
    return tasks_.at(static_cast<std::size_t>(j));
  }

  /// Bottleneck capacity b(j) = min_{e in I_j} c_e, O(1).
  [[nodiscard]] Value bottleneck(TaskId j) const;
  /// Bottleneck of an arbitrary closed edge range.
  [[nodiscard]] Value range_bottleneck(EdgeId first, EdgeId last) const;
  /// Left-most edge in I_j attaining b(j).
  [[nodiscard]] EdgeId bottleneck_edge(TaskId j) const;

  [[nodiscard]] Value min_capacity() const;
  [[nodiscard]] Value max_capacity() const;

  /// Sum of weights of all tasks.
  [[nodiscard]] Weight total_weight() const noexcept;

  /// Is task j delta-small, i.e. d_j <= delta * b(j)?
  [[nodiscard]] bool is_small(TaskId j, Ratio delta) const {
    return delta.le_scaled(task(j).demand, bottleneck(j));
  }
  /// Is task j delta-large, i.e. d_j > delta * b(j)?
  [[nodiscard]] bool is_large(TaskId j, Ratio delta) const {
    return !is_small(j, delta);
  }

  /// New instance containing only `subset` (ids into this instance), with
  /// capacities unchanged. Returns the sub-instance and the id map back to
  /// this instance (result id -> original id).
  [[nodiscard]] std::pair<PathInstance, std::vector<TaskId>> restrict_tasks(
      std::span<const TaskId> subset) const;

  /// New instance with every capacity clamped to at most `cap`. Tasks whose
  /// demand no longer fits under their bottleneck are dropped; the returned
  /// map gives result id -> original id.
  [[nodiscard]] std::pair<PathInstance, std::vector<TaskId>> clamp_capacities(
      Value cap, std::span<const TaskId> subset) const;

 private:
  std::vector<Value> capacities_;
  std::vector<Task> tasks_;
  RangeMin capacity_rmq_;
};

}  // namespace sap
