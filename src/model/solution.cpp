#include "src/model/solution.hpp"

#include <algorithm>

namespace sap {

Weight UfppSolution::weight(const PathInstance& inst) const {
  Weight total = 0;
  // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
  // PathInstance constructor proved the full sum fits in int64.
  for (TaskId j : tasks) total += inst.task(j).weight;
  return total;
}

Weight SapSolution::weight(const PathInstance& inst) const {
  Weight total = 0;
  // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
  // PathInstance constructor proved the full sum fits in int64.
  for (const Placement& p : placements) total += inst.task(p.task).weight;
  return total;
}

void SapSolution::lift(Value delta) {
  // sapkit-lint: allow(exact-arith) -- callers lift within a capacity bound
  // they already proved (h + delta <= c <= 2^62), so the sum is exact.
  for (Placement& p : placements) p.height += delta;
}

UfppSolution SapSolution::to_ufpp() const {
  UfppSolution out;
  out.tasks.reserve(placements.size());
  for (const Placement& p : placements) out.tasks.push_back(p.task);
  return out;
}

SapSolution SapSolution::remapped(std::span<const TaskId> back) const {
  SapSolution out;
  out.placements.reserve(placements.size());
  for (const Placement& p : placements) {
    out.placements.push_back(
        {back[static_cast<std::size_t>(p.task)], p.height});
  }
  return out;
}

std::vector<Value> edge_loads(const PathInstance& inst,
                              std::span<const TaskId> tasks) {
  std::vector<Value> diff(inst.num_edges() + 1, 0);
  for (TaskId j : tasks) {
    const Task& t = inst.task(j);
    // sapkit-lint: begin-allow(exact-arith) -- difference-array entries are
    // subset sums of demands; the constructor proved the full sum fits int64.
    diff[static_cast<std::size_t>(t.first)] += t.demand;
    diff[static_cast<std::size_t>(t.last) + 1] -= t.demand;
    // sapkit-lint: end-allow(exact-arith)
  }
  std::vector<Value> loads(inst.num_edges());
  Value running = 0;
  for (std::size_t e = 0; e < loads.size(); ++e) {
    running += diff[e];
    loads[e] = running;
  }
  return loads;
}

Value max_load(const PathInstance& inst, std::span<const TaskId> tasks) {
  const auto loads = edge_loads(inst, tasks);
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

std::vector<Value> edge_makespans(const PathInstance& inst,
                                  const SapSolution& sol) {
  std::vector<Value> tops(inst.num_edges(), 0);
  for (const Placement& p : sol.placements) {
    const Task& t = inst.task(p.task);
    // sapkit-lint: allow(exact-arith) -- callers pass verified solutions
    // (h + d <= c <= 2^62, enforced at instance construction), so the
    // stacking top is exact; adversarial heights go through verify_sap.
    const Value top = p.height + t.demand;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      auto& cell = tops[static_cast<std::size_t>(e)];
      cell = std::max(cell, top);
    }
  }
  return tops;
}

Value max_makespan(const PathInstance& inst, const SapSolution& sol) {
  Value best = 0;
  for (const Placement& p : sol.placements) {
    // sapkit-lint: allow(exact-arith) -- same verified-solution bound as in
    // edge_makespans above: h + d <= c <= 2^62 is exact in int64.
    best = std::max(best, p.height + inst.task(p.task).demand);
  }
  return best;
}

}  // namespace sap
