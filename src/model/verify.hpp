// Exact feasibility verifiers. Every algorithm's output in the test suite is
// pushed through these; they are written independently of the solvers (sweep
// line over edges) so they can catch solver bugs rather than share them.
//
// All arithmetic on untrusted quantities (load accumulation, stacking
// heights) is overflow-checked: an adversarial instance or solution yields a
// typed kOverflow failure, never signed-overflow UB.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Machine-readable cause of a verification failure.
enum class VerifyError : std::uint8_t {
  kNone = 0,           ///< success
  kIdOutOfRange,       ///< task id outside [0, n)
  kDuplicateId,        ///< task selected/placed more than once
  kNegativeHeight,     ///< placement height < 0
  kCapacityExceeded,   ///< load or stacking top above the edge limit
  kVerticalOverlap,    ///< two placements share an edge and vertical range
  kOverflow,           ///< int64 arithmetic on the solution would overflow
  kOther,              ///< unclassified (string-only failure)
};

[[nodiscard]] const char* verify_error_name(VerifyError error) noexcept;

/// Outcome of a verification: a typed error plus a human-readable reason.
struct VerifyResult {
  bool ok = true;
  VerifyError error = VerifyError::kNone;
  std::string reason;

  explicit operator bool() const noexcept { return ok; }

  static VerifyResult success() { return {}; }
  static VerifyResult failure(std::string why) {
    return {false, VerifyError::kOther, std::move(why)};
  }
  static VerifyResult failure(VerifyError error, std::string why) {
    return {false, error, std::move(why)};
  }
};

/// UFPP feasibility: ids valid and unique, load <= capacity on every edge.
[[nodiscard]] VerifyResult verify_ufpp(const PathInstance& inst,
                                       const UfppSolution& sol);

/// UFPP B-packability: load <= bound on every edge (ignores capacities).
[[nodiscard]] VerifyResult verify_ufpp_packable(const PathInstance& inst,
                                                const UfppSolution& sol,
                                                Value bound);

/// SAP feasibility: ids valid and unique, heights >= 0, h(j)+d_j <= c_e for
/// every e in I_j, and overlapping tasks occupy disjoint vertical ranges.
/// O((n + m) log n) sweep line.
[[nodiscard]] VerifyResult verify_sap(const PathInstance& inst,
                                      const SapSolution& sol);

/// SAP B-packability: feasible except capacity is replaced by `bound`
/// (mu_h(S(e)) <= bound on every edge); used for strip solutions.
[[nodiscard]] VerifyResult verify_sap_packable(const PathInstance& inst,
                                               const SapSolution& sol,
                                               Value bound);

namespace detail {
/// Shared sweep: checks id validity/uniqueness, non-negative heights and
/// vertical disjointness; capacity is checked through `cap_of(task_id)`.
VerifyResult verify_sap_impl(const PathInstance& inst, const SapSolution& sol,
                             const std::function<Value(TaskId)>& cap_of);
}  // namespace detail

}  // namespace sap
