#include "src/model/ring_instance.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
// sapkit-lint: allow(determinism) -- duplicate-id membership test only; the
// set is queried, never iterated, so its order cannot reach any output.
#include <unordered_set>

#include "src/util/checked.hpp"

namespace sap {

RingInstance::RingInstance(std::vector<Value> capacities,
                           std::vector<RingTask> tasks)
    : capacities_(std::move(capacities)), tasks_(std::move(tasks)) {
  if (capacities_.size() < 3) {
    throw std::invalid_argument("RingInstance: ring needs >= 3 edges");
  }
  // Vertex/edge indices are int; reject sizes the casts below would narrow.
  if (capacities_.size() >
      static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument("RingInstance: too many edges for int ids");
  }
  for (Value c : capacities_) {
    if (c <= 0) {
      throw std::invalid_argument("RingInstance: capacities must be positive");
    }
    if (c > kMaxExactCapacity) {
      throw std::invalid_argument(
          "RingInstance: capacity exceeds 2^62 (height arithmetic would not "
          "be exact in int64)");
    }
  }
  const auto m = static_cast<int>(capacities_.size());
  // Checked totals, mirroring PathInstance: a successful construction proves
  // that every subset sum of demands or weights fits in int64.
  Value demand_total = 0;
  Weight weight_total = 0;
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    const RingTask& t = tasks_[j];
    if (t.start < 0 || t.start >= m || t.end < 0 || t.end >= m ||
        t.start == t.end) {
      throw std::invalid_argument("RingInstance: task " + std::to_string(j) +
                                  " has invalid endpoints");
    }
    if (t.demand <= 0 || t.weight < 0) {
      throw std::invalid_argument("RingInstance: task " + std::to_string(j) +
                                  " has invalid demand/weight");
    }
    if (!checked_add(demand_total, t.demand, &demand_total) ||
        !checked_add(weight_total, t.weight, &weight_total)) {
      throw std::invalid_argument(
          "RingInstance: total demand or weight overflows int64 (instance "
          "too large for exact arithmetic)");
    }
  }
}

std::vector<EdgeId> RingInstance::route_edges(TaskId j, bool clockwise) const {
  const RingTask& t = task(j);
  const auto m = static_cast<int>(capacities_.size());
  std::vector<EdgeId> edges;
  int v = clockwise ? t.start : t.end;
  const int stop = clockwise ? t.end : t.start;
  while (v != stop) {
    edges.push_back(static_cast<EdgeId>(v));
    v = (v + 1) % m;
  }
  return edges;
}

Value RingInstance::route_bottleneck(TaskId j, bool clockwise) const {
  Value best = std::numeric_limits<Value>::max();
  for (EdgeId e : route_edges(j, clockwise)) {
    best = std::min(best, capacity(e));
  }
  return best;
}

EdgeId RingInstance::min_capacity_edge() const {
  const auto it = std::min_element(capacities_.begin(), capacities_.end());
  return static_cast<EdgeId>(it - capacities_.begin());
}

Weight RingInstance::solution_weight(const RingSapSolution& sol) const {
  Weight total = 0;
  // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
  // constructor proved the full sum fits in int64 with checked_add.
  for (const RingPlacement& p : sol.placements) total += task(p.task).weight;
  return total;
}

VerifyResult verify_ring_sap(const RingInstance& inst,
                             const RingSapSolution& sol) {
  // sapkit-lint: allow(determinism) -- membership test only, never iterated.
  std::unordered_set<TaskId> seen;
  for (const RingPlacement& p : sol.placements) {
    if (p.task < 0 || static_cast<std::size_t>(p.task) >= inst.num_tasks()) {
      return VerifyResult::failure(
          VerifyError::kIdOutOfRange,
          "task id " + std::to_string(p.task) + " out of range");
    }
    if (!seen.insert(p.task).second) {
      return VerifyResult::failure(
          VerifyError::kDuplicateId,
          "task id " + std::to_string(p.task) + " selected twice");
    }
    if (p.height < 0) {
      return VerifyResult::failure(
          VerifyError::kNegativeHeight,
          "task " + std::to_string(p.task) + " has negative height");
    }
  }

  // Per-edge occupancy check: gather vertical intervals on each edge, then
  // check capacity and pairwise disjointness directly. The stacking top is
  // computed with an overflow check so adversarial heights cannot trigger UB.
  std::vector<std::vector<std::pair<Value, Value>>> occupancy(
      inst.num_edges());
  for (const RingPlacement& p : sol.placements) {
    Value top = 0;
    if (!checked_add(p.height, inst.task(p.task).demand, &top)) {
      return VerifyResult::failure(
          VerifyError::kOverflow,
          "task " + std::to_string(p.task) +
              " stacking height overflows int64");
    }
    for (EdgeId e : inst.route_edges(p.task, p.clockwise)) {
      if (top > inst.capacity(e)) {
        return VerifyResult::failure(
            VerifyError::kCapacityExceeded,
            "task " + std::to_string(p.task) + " top " + std::to_string(top) +
                " exceeds capacity on edge " + std::to_string(e));
      }
      occupancy[static_cast<std::size_t>(e)].emplace_back(p.height, top);
    }
  }
  for (std::size_t e = 0; e < occupancy.size(); ++e) {
    auto& spans = occupancy[e];
    std::ranges::sort(spans);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].second) {
        return VerifyResult::failure(
            VerifyError::kVerticalOverlap,
            "vertical overlap on edge " + std::to_string(e));
      }
    }
  }
  return VerifyResult::success();
}

}  // namespace sap
