// SAP on ring networks (Section 7): a cycle of capacitated edges where each
// task may be routed clockwise or counter-clockwise between its endpoints.
#pragma once

#include <cstddef>
#include <vector>

#include "src/model/task.hpp"
#include "src/model/verify.hpp"

namespace sap {

/// A task on the ring: endpoints are vertices; the route is part of the
/// solution, not the instance.
struct RingTask {
  int start = 0;  ///< start vertex in [0, m)
  int end = 0;    ///< end vertex in [0, m), != start
  Value demand = 0;
  Weight weight = 0;
};

/// One placed-and-routed task of a ring SAP solution.
struct RingPlacement {
  TaskId task = 0;
  Value height = 0;
  bool clockwise = true;  ///< route start -> end in increasing vertex order
};

struct RingSapSolution {
  std::vector<RingPlacement> placements;

  [[nodiscard]] bool empty() const noexcept { return placements.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return placements.size(); }
};

/// A cycle C = (V, E) with m >= 3 edges; edge e connects vertex e to vertex
/// (e+1) mod m.
class RingInstance {
 public:
  RingInstance() = default;
  RingInstance(std::vector<Value> capacities, std::vector<RingTask> tasks);

  [[nodiscard]] std::size_t num_edges() const noexcept {
    return capacities_.size();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const std::vector<Value>& capacities() const noexcept {
    return capacities_;
  }
  [[nodiscard]] Value capacity(EdgeId e) const {
    return capacities_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] const std::vector<RingTask>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const RingTask& task(TaskId j) const {
    return tasks_.at(static_cast<std::size_t>(j));
  }

  /// Edge ids used by task j when routed as given, in traversal order.
  [[nodiscard]] std::vector<EdgeId> route_edges(TaskId j,
                                                bool clockwise) const;

  /// Bottleneck capacity along the chosen route.
  [[nodiscard]] Value route_bottleneck(TaskId j, bool clockwise) const;

  /// Index of a minimum-capacity edge (left-most).
  [[nodiscard]] EdgeId min_capacity_edge() const;

  [[nodiscard]] Weight solution_weight(const RingSapSolution& sol) const;

 private:
  std::vector<Value> capacities_;
  std::vector<RingTask> tasks_;
};

/// Full feasibility check for ring SAP: valid unique ids, heights >= 0,
/// capacity respected on every routed edge, vertical disjointness on every
/// shared edge.
[[nodiscard]] VerifyResult verify_ring_sap(const RingInstance& inst,
                                           const RingSapSolution& sol);

}  // namespace sap
