// Solution value types for UFPP (task subsets) and SAP (subsets + heights),
// plus exact load/makespan accounting.
#pragma once

#include <span>
#include <vector>

#include "src/model/path_instance.hpp"
#include "src/model/task.hpp"

namespace sap {

/// A UFPP solution: a subset of task ids (order irrelevant, no duplicates).
struct UfppSolution {
  std::vector<TaskId> tasks;

  [[nodiscard]] Weight weight(const PathInstance& inst) const;
  [[nodiscard]] bool empty() const noexcept { return tasks.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return tasks.size(); }
};

/// One placed task of a SAP solution: the task occupies the vertical range
/// [height, height + demand) on every edge it uses.
struct Placement {
  TaskId task = 0;
  Value height = 0;

  friend bool operator==(const Placement&, const Placement&) = default;
};

/// A SAP solution: placed tasks (order irrelevant, ids unique).
struct SapSolution {
  std::vector<Placement> placements;

  [[nodiscard]] Weight weight(const PathInstance& inst) const;
  [[nodiscard]] bool empty() const noexcept { return placements.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return placements.size(); }

  /// Adds `delta` to every height ("lifting" in Strip-Pack).
  void lift(Value delta);

  /// Forgets heights, yielding the induced UFPP solution.
  [[nodiscard]] UfppSolution to_ufpp() const;

  /// Remaps task ids through `back` (result of restrict_tasks /
  /// clamp_capacities), so a sub-instance solution refers to the original.
  [[nodiscard]] SapSolution remapped(std::span<const TaskId> back) const;
};

/// Per-edge load d(S(e)) of a task subset, exact, O(n + m).
[[nodiscard]] std::vector<Value> edge_loads(const PathInstance& inst,
                                            std::span<const TaskId> tasks);

/// max_e d(S(e)) (the LOAD of the task set).
[[nodiscard]] Value max_load(const PathInstance& inst,
                             std::span<const TaskId> tasks);

/// Per-edge makespan mu_h(S(e)) = max_{j in S(e)} (h(j)+d_j); 0 where empty.
[[nodiscard]] std::vector<Value> edge_makespans(const PathInstance& inst,
                                                const SapSolution& sol);

/// max_e mu_h(S(e)).
[[nodiscard]] Value max_makespan(const PathInstance& inst,
                                 const SapSolution& sol);

}  // namespace sap
