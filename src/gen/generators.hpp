// Synthetic workload generators for tests and benches: capacity profiles
// (uniform, valley, mountain, staircase, random walk) crossed with demand
// classes (delta-small, medium band, 1/k-large, mixed).
#pragma once

#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/util/rng.hpp"

namespace sap {

enum class CapacityProfile {
  kUniform,
  kValley,      ///< high at the ends, low in the middle
  kMountain,    ///< low at the ends, high in the middle
  kStaircase,   ///< monotone steps
  kRandomWalk,  ///< bounded multiplicative random walk
};

enum class DemandClass {
  kSmall,   ///< d_j <= delta * b(j)
  kMedium,  ///< delta * b(j) < d_j <= b(j) / k
  kLarge,   ///< b(j) / k < d_j <= b(j)
  kMixed,   ///< uniform over the three classes per task
};

struct PathGenOptions {
  std::size_t num_edges = 24;
  std::size_t num_tasks = 30;
  CapacityProfile profile = CapacityProfile::kUniform;
  Value min_capacity = 8;
  Value max_capacity = 32;
  DemandClass demand = DemandClass::kMixed;
  Ratio delta{1, 4};            ///< small threshold
  std::int64_t k_large = 2;     ///< large threshold denominator
  double mean_span_fraction = 0.3;  ///< mean task span / path length
  Weight max_weight = 100;
  bool weight_by_area = false;  ///< weight ~ demand * span instead of uniform
};

/// Draws an instance; every task is guaranteed to fit under its bottleneck.
[[nodiscard]] PathInstance generate_path_instance(const PathGenOptions& opt,
                                                  Rng& rng);

struct RingGenOptions {
  std::size_t num_edges = 16;
  std::size_t num_tasks = 24;
  Value min_capacity = 8;
  Value max_capacity = 32;
  Weight max_weight = 100;
  double mean_span_fraction = 0.3;
};

[[nodiscard]] RingInstance generate_ring_instance(const RingGenOptions& opt,
                                                  Rng& rng);

}  // namespace sap
