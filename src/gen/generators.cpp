#include "src/gen/generators.hpp"

#include <algorithm>
#include <cmath>

namespace sap {
namespace {

std::vector<Value> make_capacities(std::size_t m, CapacityProfile profile,
                                   Value lo, Value hi, Rng& rng) {
  std::vector<Value> caps(m);
  switch (profile) {
    case CapacityProfile::kUniform: {
      const Value c = rng.uniform_int(lo, hi);
      std::ranges::fill(caps, c);
      break;
    }
    case CapacityProfile::kValley:
    case CapacityProfile::kMountain: {
      for (std::size_t e = 0; e < m; ++e) {
        // Distance from the middle in [0, 1].
        const double x =
            std::abs(static_cast<double>(2 * e + 1) /
                         static_cast<double>(2 * m) - 0.5) * 2.0;
        const double frac =
            profile == CapacityProfile::kValley ? x : 1.0 - x;
        caps[e] = lo + static_cast<Value>(std::llround(
                           frac * static_cast<double>(hi - lo)));
      }
      break;
    }
    case CapacityProfile::kStaircase: {
      const std::size_t steps = std::max<std::size_t>(2, m / 4);
      for (std::size_t e = 0; e < m; ++e) {
        const std::size_t step = e * steps / m;
        caps[e] = lo + static_cast<Value>(
                           static_cast<double>(step) *
                           static_cast<double>(hi - lo) /
                           static_cast<double>(steps - 1));
      }
      break;
    }
    case CapacityProfile::kRandomWalk: {
      Value c = rng.uniform_int(lo, hi);
      for (std::size_t e = 0; e < m; ++e) {
        caps[e] = c;
        const Value delta = std::max<Value>(1, (hi - lo) / 8);
        c = std::clamp(c + rng.uniform_int(-delta, delta), lo, hi);
      }
      break;
    }
  }
  for (Value& c : caps) c = std::max<Value>(1, c);
  return caps;
}

/// Demand for one task given its bottleneck and class; 0 if impossible.
Value draw_demand(Value b, DemandClass cls, Ratio delta, std::int64_t k,
                  Rng& rng) {
  // Class boundaries as floor(delta*b) and floor(b/k).
  const Value small_hi =
      static_cast<Value>(static_cast<Int128>(delta.num) * b / delta.den);
  const Value medium_hi = b / k;
  switch (cls) {
    case DemandClass::kSmall:
      if (small_hi < 1) return 0;
      return rng.uniform_int(1, small_hi);
    case DemandClass::kMedium:
      if (medium_hi <= small_hi) return 0;
      return rng.uniform_int(small_hi + 1, medium_hi);
    case DemandClass::kLarge:
      if (b <= medium_hi) return 0;
      return rng.uniform_int(medium_hi + 1, b);
    case DemandClass::kMixed: {
      const auto pick = static_cast<int>(rng.uniform_int(0, 2));
      const DemandClass sub = pick == 0   ? DemandClass::kSmall
                              : pick == 1 ? DemandClass::kMedium
                                          : DemandClass::kLarge;
      const Value d = draw_demand(b, sub, delta, k, rng);
      return d > 0 ? d : rng.uniform_int(1, b);
    }
  }
  return 0;
}

}  // namespace

PathInstance generate_path_instance(const PathGenOptions& opt, Rng& rng) {
  auto caps = make_capacities(opt.num_edges, opt.profile, opt.min_capacity,
                              opt.max_capacity, rng);
  const RangeMin rmq(caps);
  const auto m = static_cast<EdgeId>(opt.num_edges);

  std::vector<Task> tasks;
  tasks.reserve(opt.num_tasks);
  std::size_t attempts = 0;
  while (tasks.size() < opt.num_tasks && attempts < 64 * opt.num_tasks) {
    ++attempts;
    // Geometric-ish span around the requested mean.
    const double mean_span =
        std::max(1.0, opt.mean_span_fraction * static_cast<double>(m));
    EdgeId span = 1;
    while (span < m && rng.uniform01() > 1.0 / mean_span) ++span;
    const EdgeId first = static_cast<EdgeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(m - span)));
    const EdgeId last = static_cast<EdgeId>(first + span - 1);
    const Value b = rmq.min(static_cast<std::size_t>(first),
                            static_cast<std::size_t>(last));
    const Value d =
        draw_demand(b, opt.demand, opt.delta, opt.k_large, rng);
    if (d < 1) continue;
    Weight w;
    if (opt.weight_by_area) {
      w = std::max<Weight>(1, d * span);
    } else {
      w = rng.uniform_int(1, opt.max_weight);
    }
    tasks.push_back({first, last, d, w});
  }
  return PathInstance(std::move(caps), std::move(tasks));
}

RingInstance generate_ring_instance(const RingGenOptions& opt, Rng& rng) {
  std::vector<Value> caps(opt.num_edges);
  for (Value& c : caps) {
    c = rng.uniform_int(opt.min_capacity, opt.max_capacity);
  }
  const auto m = static_cast<int>(opt.num_edges);
  std::vector<RingTask> tasks;
  tasks.reserve(opt.num_tasks);
  std::size_t attempts = 0;
  while (tasks.size() < opt.num_tasks && attempts < 64 * opt.num_tasks) {
    ++attempts;
    const double mean_span =
        std::max(1.0, opt.mean_span_fraction * static_cast<double>(m));
    int span = 1;
    while (span < m - 1 && rng.uniform01() > 1.0 / mean_span) ++span;
    const int start = static_cast<int>(rng.uniform_int(0, m - 1));
    const int end = (start + span) % m;
    // Demand bounded by the larger of the two route bottlenecks so the task
    // is routable at least one way.
    Value b_cw = caps[static_cast<std::size_t>(start)];
    for (int v = start; v != end; v = (v + 1) % m) {
      b_cw = std::min(b_cw, caps[static_cast<std::size_t>(v)]);
    }
    Value b_ccw = caps[static_cast<std::size_t>(end)];
    for (int v = end; v != start; v = (v + 1) % m) {
      b_ccw = std::min(b_ccw, caps[static_cast<std::size_t>(v)]);
    }
    const Value b = std::max(b_cw, b_ccw);
    if (b < 1) continue;
    tasks.push_back({start, end, rng.uniform_int(1, b),
                     rng.uniform_int(1, opt.max_weight)});
  }
  return RingInstance(std::move(caps), std::move(tasks));
}

}  // namespace sap
