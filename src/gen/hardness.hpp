// Computational witness of the paper's NP-hardness discussion (Section 1.1
// and the conference version [7]): a reduction from PARTITION-style bin
// packing to SAP.
//
// The gadget (two bins; see DESIGN.md §4.4 for the forcing argument):
//
//   edges:      e_b        e_0           a_1
//   capacity:    1       2(C+1)         C+2
//
//   blocker  = [e_b, e_0], d = 1   -> pinned to [0,1) everywhere
//   pedestal = [a_1],      d = C+1 -> occupies [0,C+1) or [1,C+2) on a_1
//   separator= [e_0, a_1], d = 1   -> the only placement compatible with
//                                     the blocker is [C+1, C+2)
//   item_j   = [e_0],      d = a_j
//
// With blocker, pedestal and separator scheduled, the free space on e_0 is
// exactly two bins [1, C+1) and [C+2, 2C+2) of height C each; hence ALL
// tasks are schedulable iff the items pack into two bins of capacity C.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"

namespace sap {

struct TwoBinGadget {
  PathInstance instance;
  std::size_t num_gadget_tasks = 3;  ///< blocker, pedestal, separator
  Value bin_capacity = 0;
};

/// Builds the gadget for items `sizes` (each in [1, C]) and bin capacity C.
/// The full task set is SAP-schedulable iff `sizes` packs into two bins of
/// capacity C. Item j becomes task id 3 + j.
[[nodiscard]] TwoBinGadget two_bin_packing_gadget(std::span<const Value> sizes,
                                                  Value bin_capacity);

/// Reference decision procedure: can `sizes` be split into two groups each
/// of total at most `bin_capacity`? Exponential (subset enumeration); for
/// test-sized inputs only.
[[nodiscard]] bool two_bin_packable(std::span<const Value> sizes,
                                    Value bin_capacity);

}  // namespace sap
