#include "src/gen/hardness.hpp"

#include <numeric>
#include <stdexcept>

namespace sap {

TwoBinGadget two_bin_packing_gadget(std::span<const Value> sizes,
                                    Value bin_capacity) {
  const Value c = bin_capacity;
  if (c < 1) throw std::invalid_argument("gadget: bin capacity must be >= 1");
  for (Value a : sizes) {
    if (a < 1 || a > c) {
      throw std::invalid_argument("gadget: item sizes must lie in [1, C]");
    }
  }
  // Edges: e_b = 0, e_0 = 1, a_1 = 2.
  std::vector<Value> caps{1, 2 * (c + 1), c + 2};
  std::vector<Task> tasks{
      Task{0, 1, 1, 1},      // blocker
      Task{2, 2, c + 1, 1},  // pedestal
      Task{1, 2, 1, 1},      // separator
  };
  for (Value a : sizes) tasks.push_back(Task{1, 1, a, 1});
  TwoBinGadget out{PathInstance(std::move(caps), std::move(tasks)), 3, c};
  return out;
}

bool two_bin_packable(std::span<const Value> sizes, Value bin_capacity) {
  const std::size_t n = sizes.size();
  if (n > 24) throw std::invalid_argument("two_bin_packable: too many items");
  const Value total = std::accumulate(sizes.begin(), sizes.end(), Value{0});
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Value left = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask >> i & 1) left += sizes[i];
    }
    if (left <= bin_capacity && total - left <= bin_capacity) return true;
  }
  return false;
}

}  // namespace sap
