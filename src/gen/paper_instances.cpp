#include "src/gen/paper_instances.hpp"

namespace sap {

PathInstance fig1a_instance() {
  // Capacities 1/2, 1, 1/2 scaled by 4; thick tasks of demand 1/2.
  return PathInstance({2, 4, 2},
                      {Task{0, 1, 2, 1},    // left thick task
                       Task{1, 2, 2, 1}});  // right thick task
}

PathInstance fig1b_instance() {
  // Uniform capacity 1 scaled by 4 (thick = 1/2 -> 2, thin = 1/4 -> 1).
  // Found by exhaustive search over all load-feasible multisets of task
  // types on short uniform paths (see tools/search notes in DESIGN.md):
  // the eight tasks below are a feasible UFPP solution (load = 4 on every
  // edge) yet no SAP height assignment packs all of them, reproducing the
  // Chen-Hassin-Tzur phenomenon of Figure 1(b). Certified by
  // paper_instances_test against the exact oracle.
  return PathInstance({4, 4, 4, 4, 4}, {
                                           Task{0, 0, 2, 1},  // thick
                                           Task{0, 1, 2, 1},  // thick
                                           Task{1, 2, 1, 1},  // thin
                                           Task{1, 3, 1, 1},  // thin
                                           Task{2, 2, 1, 1},  // thin
                                           Task{2, 3, 1, 1},  // thin
                                           Task{3, 4, 2, 1},  // thick
                                           Task{4, 4, 2, 1},  // thick
                                       });
}

PathInstance fig2a_instance() {
  // Uniform capacity 8; a handful of 1/4-small tasks (d <= b/4 = 2).
  return PathInstance({8, 8, 8, 8},
                      {Task{0, 1, 2, 3}, Task{1, 3, 1, 2}, Task{0, 3, 2, 5},
                       Task{2, 2, 2, 1}});
}

PathInstance fig2b_instance() {
  // Non-uniform capacities; every task is 1/4-small w.r.t. its bottleneck.
  return PathInstance({16, 8, 12, 24},
                      {Task{0, 1, 2, 3},    // b = 8,  d = 2
                       Task{1, 2, 2, 2},    // b = 8,  d = 2
                       Task{2, 3, 3, 5},    // b = 12, d = 3
                       Task{3, 3, 6, 4}});  // b = 24, d = 6
}

const OddCycleWitness& fig8_instance() {
  // Derived analytically (see DESIGN.md §4.3): a "pentagon" of anchored
  // rectangles. Any interval realization of C5 is a triangulation fan, so
  // one task (B below) x-overlaps all others; B's two C5-chords (to u and
  // D) are the pairs its rectangle must clear vertically. The bottlenecks
  // are pinned by dedicated low-capacity edges:
  //   u = [1,7]  b=7  d=4   R_u = [ 3, 7)
  //   A = [3,4]  b=25 d=20  R_A = [ 5,25)   (bridges u <-> B)
  //   B = [4,10] b=49 d=25  R_B = [24,49)   (the high universal task)
  //   C = [9,12] b=25 d=13  R_C = [12,25)   (bridges B <-> D)
  //   D = [5,13] b=13 d=7   R_D = [ 6,13)   (dips back down to u)
  // Rectangle graph: u-A-B-C-D-u, exactly a 5-cycle. The stored heights
  // place all five tasks feasibly (u:0, A:4, B:24, C:11, D:4).
  static const OddCycleWitness witness = [] {
    PathInstance inst(
        {60, 7, 7, 25, 49, 60, 60, 60, 60, 60, 60, 60, 25, 13},
        {Task{1, 7, 4, 1}, Task{3, 4, 20, 1}, Task{4, 10, 25, 1},
         Task{9, 12, 13, 1}, Task{5, 13, 7, 1}});
    SapSolution solution{{{0, 0}, {1, 4}, {2, 24}, {3, 11}, {4, 4}}};
    return OddCycleWitness{std::move(inst), std::move(solution)};
  }();
  return witness;
}

}  // namespace sap
