// The paper's hand-constructed instances (Figures 1, 2 and 8), scaled by 4
// so every quantity is integral.
//
// Figure 1(a) is constructed directly from the caption. Figure 1(b) (due to
// Chen et al. [18]) and Figure 8 (the 5-cycle showing Lemma 17 is tight for
// k = 2) are *recovered by deterministic seeded search* over tiny instances
// and certified by the exact oracle — the construction is cached, and the
// tests assert the defining property of each figure.
#pragma once

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Figure 1(a): capacities {2, 4, 2} (i.e. 1/2, 1, 1/2), two demand-2 tasks
/// overlapping on the middle edge. Both fit as a UFPP solution; no SAP
/// solution contains both (each is pinned to height 0 at its bottleneck).
[[nodiscard]] PathInstance fig1a_instance();

/// Figure 1(b) phenomenon (Chen et al. [18]): uniform capacities, the full
/// task set is UFPP-feasible, yet no SAP solution contains all tasks.
/// Recovered by seeded search; certified by the profile DP.
[[nodiscard]] PathInstance fig1b_instance();

/// Figure 2(a): delta-small tasks under uniform capacities.
[[nodiscard]] PathInstance fig2a_instance();
/// Figure 2(b): delta-small tasks under non-uniform capacities.
[[nodiscard]] PathInstance fig2b_instance();

/// Figure 8: a 1/2-large instance whose full task set is SAP-feasible and
/// whose anchored rectangles R(J) form an odd cycle, witnessing that the
/// (2k-1) = 3 coloring bound of Lemma 17 is tight for k = 2. Recovered by
/// seeded search (triangles are impossible for feasible 1/2-large
/// solutions, so any non-bipartite witness contains a 5-cycle).
struct OddCycleWitness {
  PathInstance instance;
  SapSolution solution;  ///< a feasible solution containing every task
};
[[nodiscard]] const OddCycleWitness& fig8_instance();

}  // namespace sap
