// Approximation-ratio measurement: bound OPT_SAP from above via the
// certification subsystem's UpperBoundLadder (src/cert/ladder.hpp) and
// compare an algorithm's solution weight against it. The ladder owns the
// bound-selection policy (exact oracle when tractable, certified LP dual
// otherwise); this harness only adapts its budgets and forms ratios.
#pragma once

#include "src/cert/ladder.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// An upper bound on OPT_SAP for one instance.
struct OptBound {
  double value = 0.0;
  bool exact = false;  ///< true when value == OPT_SAP (oracle proved it)
  /// Which ladder rung produced the bound.
  cert::UbRung rung = cert::UbRung::kTotalWeight;
};

struct OptBoundOptions {
  bool try_exact = true;
  /// Oracle budget: fall back to the next rung if the DP truncates.
  SapExactOptions dp{.max_states = 100'000};
  /// Skip the oracle entirely above these sizes (the DP is pseudo-
  /// polynomial; tall/crowded instances go straight to the LP bound).
  std::size_t exact_max_tasks = 24;
  Value exact_max_capacity = 48;
  /// Optionally try the exact UFPP branch-and-bound rung between the oracle
  /// and the LP bound. Off by default: measurement loops favour throughput.
  bool try_bnb = false;
  std::size_t bnb_max_tasks = 18;
  UfppExactOptions bnb{.max_nodes = 2'000'000};

  /// The ladder configuration these options denote.
  [[nodiscard]] cert::LadderOptions ladder() const;
};

/// Upper-bounds OPT_SAP with the first ladder rung that proves a bound:
/// exact profile DP when within budget, else (optionally) exact UFPP, else
/// the rational-repaired dual of the UFPP LP relaxation
/// (OPT_SAP <= OPT_UFPP <= LP), else the trivial sum of weights.
[[nodiscard]] OptBound sap_opt_bound(const PathInstance& inst,
                                     const OptBoundOptions& options = {});

struct RatioMeasurement {
  Weight algo_weight = 0;
  double bound = 0.0;
  bool bound_exact = false;
  cert::UbRung bound_rung = cert::UbRung::kTotalWeight;
  /// bound / algo_weight; 1.0 when both are zero; +inf when only the
  /// algorithm is zero.
  double ratio = 1.0;
};

[[nodiscard]] RatioMeasurement measure_ratio(
    const PathInstance& inst, const SapSolution& sol,
    const OptBoundOptions& options = {});

/// Ring ratios use the ring ladder (certified dual of the two-route ring
/// LP relaxation, with the trivial fallback), so measured ring ratios
/// include the LP integrality gap on top of the algorithm's loss.
[[nodiscard]] RatioMeasurement measure_ring_ratio(const RingInstance& inst,
                                                  const RingSapSolution& sol);

}  // namespace sap
