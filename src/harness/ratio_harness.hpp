// Approximation-ratio measurement: bound OPT_SAP from above (exact oracle
// when the instance is tractable, LP relaxation otherwise) and compare an
// algorithm's solution weight against it.
#pragma once

#include "src/exact/profile_dp.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// An upper bound on OPT_SAP for one instance.
struct OptBound {
  double value = 0.0;
  bool exact = false;  ///< true when value == OPT_SAP (oracle proved it)
};

struct OptBoundOptions {
  bool try_exact = true;
  /// Oracle budget: fall back to the LP bound if the DP truncates.
  SapExactOptions dp{.max_states = 100'000};
  /// Skip the oracle entirely above these sizes (the DP is pseudo-
  /// polynomial; tall/crowded instances go straight to the LP bound).
  std::size_t exact_max_tasks = 24;
  Value exact_max_capacity = 48;
};

/// Upper-bounds OPT_SAP: exact profile DP when within budget, else the UFPP
/// LP relaxation (OPT_SAP <= OPT_UFPP <= LP).
[[nodiscard]] OptBound sap_opt_bound(const PathInstance& inst,
                                     const OptBoundOptions& options = {});

struct RatioMeasurement {
  Weight algo_weight = 0;
  double bound = 0.0;
  bool bound_exact = false;
  /// bound / algo_weight; 1.0 when both are zero; +inf when only the
  /// algorithm is zero.
  double ratio = 1.0;
};

[[nodiscard]] RatioMeasurement measure_ratio(
    const PathInstance& inst, const SapSolution& sol,
    const OptBoundOptions& options = {});

/// LP upper bound for ring UFPP (hence ring SAP): per task, fractional
/// weights on both orientations, edge capacity rows, x_cw + x_ccw <= 1.
/// Measured ring ratios therefore include the LP integrality gap on top of
/// the algorithm's loss.
[[nodiscard]] double ring_lp_upper_bound(const RingInstance& inst);

[[nodiscard]] RatioMeasurement measure_ring_ratio(const RingInstance& inst,
                                                  const RingSapSolution& sol);

}  // namespace sap
