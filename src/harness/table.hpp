// Fixed-width table printer for the bench binaries: the benches print
// paper-shaped tables (parameter point, measured ratio, theorem bound,
// margin), and EXPERIMENTS.md records these outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sap {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace sap
