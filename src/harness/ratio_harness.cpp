#include "src/harness/ratio_harness.hpp"

#include <limits>

#include "src/lp/simplex.hpp"
#include "src/lp/ufpp_lp.hpp"

namespace sap {

OptBound sap_opt_bound(const PathInstance& inst,
                       const OptBoundOptions& options) {
  if (options.try_exact && inst.num_tasks() <= options.exact_max_tasks &&
      inst.max_capacity() <= options.exact_max_capacity) {
    const SapExactResult exact = sap_exact_profile_dp(inst, options.dp);
    if (exact.proven_optimal) {
      return {static_cast<double>(exact.weight), true};
    }
  }
  return {ufpp_lp_upper_bound(inst), false};
}

RatioMeasurement measure_ratio(const PathInstance& inst,
                               const SapSolution& sol,
                               const OptBoundOptions& options) {
  RatioMeasurement out;
  out.algo_weight = sol.weight(inst);
  const OptBound bound = sap_opt_bound(inst, options);
  out.bound = bound.value;
  out.bound_exact = bound.exact;
  if (out.algo_weight > 0) {
    out.ratio = bound.value / static_cast<double>(out.algo_weight);
  } else if (bound.value <= 1e-9) {
    out.ratio = 1.0;
  } else {
    out.ratio = std::numeric_limits<double>::infinity();
  }
  return out;
}

double ring_lp_upper_bound(const RingInstance& inst) {
  const std::size_t n = inst.num_tasks();
  LpProblem lp;
  lp.objective.resize(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    lp.objective[2 * j] =
        static_cast<double>(inst.task(static_cast<TaskId>(j)).weight);
    lp.objective[2 * j + 1] = lp.objective[2 * j];
  }
  // Edge capacity rows.
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    LpConstraint row;
    row.coeffs.assign(2 * n, 0.0);
    row.rhs = static_cast<double>(inst.capacity(static_cast<EdgeId>(e)));
    lp.constraints.push_back(std::move(row));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto id = static_cast<TaskId>(j);
    for (int dir = 0; dir < 2; ++dir) {
      for (EdgeId e : inst.route_edges(id, dir == 0)) {
        lp.constraints[static_cast<std::size_t>(e)]
            .coeffs[2 * j + static_cast<std::size_t>(dir)] =
            static_cast<double>(inst.task(id).demand);
      }
    }
    // x_cw + x_ccw <= 1.
    LpConstraint box;
    box.coeffs.assign(2 * n, 0.0);
    box.coeffs[2 * j] = 1.0;
    box.coeffs[2 * j + 1] = 1.0;
    box.rhs = 1.0;
    lp.constraints.push_back(std::move(box));
  }
  return solve_lp(lp).objective;
}

RatioMeasurement measure_ring_ratio(const RingInstance& inst,
                                    const RingSapSolution& sol) {
  RatioMeasurement out;
  out.algo_weight = inst.solution_weight(sol);
  out.bound = ring_lp_upper_bound(inst);
  out.bound_exact = false;
  if (out.algo_weight > 0) {
    out.ratio = out.bound / static_cast<double>(out.algo_weight);
  } else if (out.bound <= 1e-9) {
    out.ratio = 1.0;
  } else {
    out.ratio = std::numeric_limits<double>::infinity();
  }
  return out;
}

}  // namespace sap
