#include "src/harness/ratio_harness.hpp"

#include <limits>

#include "src/lp/ufpp_lp.hpp"

namespace sap {

OptBound sap_opt_bound(const PathInstance& inst,
                       const OptBoundOptions& options) {
  if (options.try_exact && inst.num_tasks() <= options.exact_max_tasks &&
      inst.max_capacity() <= options.exact_max_capacity) {
    const SapExactResult exact = sap_exact_profile_dp(inst, options.dp);
    if (exact.proven_optimal) {
      return {static_cast<double>(exact.weight), true};
    }
  }
  return {ufpp_lp_upper_bound(inst), false};
}

RatioMeasurement measure_ratio(const PathInstance& inst,
                               const SapSolution& sol,
                               const OptBoundOptions& options) {
  RatioMeasurement out;
  out.algo_weight = sol.weight(inst);
  const OptBound bound = sap_opt_bound(inst, options);
  out.bound = bound.value;
  out.bound_exact = bound.exact;
  if (out.algo_weight > 0) {
    out.ratio = bound.value / static_cast<double>(out.algo_weight);
  } else if (bound.value <= 1e-9) {
    out.ratio = 1.0;
  } else {
    out.ratio = std::numeric_limits<double>::infinity();
  }
  return out;
}

}  // namespace sap
