#include "src/harness/ratio_harness.hpp"

#include <limits>

namespace sap {
namespace {

double ratio_of(Weight algo_weight, double bound) {
  if (algo_weight > 0) return bound / static_cast<double>(algo_weight);
  if (bound <= 1e-9) return 1.0;
  return std::numeric_limits<double>::infinity();
}

}  // namespace

cert::LadderOptions OptBoundOptions::ladder() const {
  cert::LadderOptions out;
  out.try_exact_dp = try_exact;
  out.exact_dp_max_tasks = exact_max_tasks;
  out.exact_dp_max_capacity = exact_max_capacity;
  out.dp = dp;
  out.try_ufpp_bnb = try_bnb;
  out.bnb_max_tasks = bnb_max_tasks;
  out.bnb = bnb;
  return out;
}

OptBound sap_opt_bound(const PathInstance& inst,
                       const OptBoundOptions& options) {
  const cert::LadderResult ladder =
      cert::run_upper_bound_ladder(inst, options.ladder());
  OptBound out;
  if (!ladder.proven) {
    // Every rung failed (sum w overflows int64): report the only honest
    // upper bound a double can express.
    out.value = std::numeric_limits<double>::infinity();
    return out;
  }
  out.value = static_cast<double>(ladder.best.value);
  out.rung = ladder.best.rung;
  out.exact = ladder.best.rung == cert::UbRung::kExactDp;
  return out;
}

RatioMeasurement measure_ratio(const PathInstance& inst,
                               const SapSolution& sol,
                               const OptBoundOptions& options) {
  RatioMeasurement out;
  out.algo_weight = sol.weight(inst);
  const OptBound bound = sap_opt_bound(inst, options);
  out.bound = bound.value;
  out.bound_exact = bound.exact;
  out.bound_rung = bound.rung;
  out.ratio = ratio_of(out.algo_weight, out.bound);
  return out;
}

RatioMeasurement measure_ring_ratio(const RingInstance& inst,
                                    const RingSapSolution& sol) {
  RatioMeasurement out;
  out.algo_weight = inst.solution_weight(sol);
  const cert::LadderResult ladder = cert::run_ring_upper_bound_ladder(inst);
  if (ladder.proven) {
    out.bound = static_cast<double>(ladder.best.value);
    out.bound_rung = ladder.best.rung;
  } else {
    out.bound = std::numeric_limits<double>::infinity();
  }
  out.bound_exact = false;
  out.ratio = ratio_of(out.algo_weight, out.bound);
  return out;
}

}  // namespace sap
