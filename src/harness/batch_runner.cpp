#include "src/harness/batch_runner.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>

#include "src/cert/certify.hpp"
#include "src/core/sap_solver.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

// sapkit-lint: allow(determinism) -- the monotonic clock feeds case/run
// wall-time fields only, which live in the scheduling-dependent "run"
// section that counters-only JSON omits; no aggregate counter reads it.
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// JSON number with non-finite values mapped to null (JSON has no NaN/inf).
void write_number(std::ostream& os, double value) {
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "null";
  }
}

/// {"count": c, "mean": m, "p50": ..., "p95": ..., "min": ..., "max": ...}
/// computed over a finite-value sample; nulls when the sample is empty.
void write_ratio_stats(std::ostream& os, const Summary& summary, double p50,
                       double p95, std::size_t infinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  os << "{\"count\": " << summary.count() << ", \"mean\": ";
  write_number(os, summary.count() == 0 ? nan : summary.mean());
  os << ", \"p50\": ";
  write_number(os, p50);
  os << ", \"p95\": ";
  write_number(os, p95);
  os << ", \"min\": ";
  write_number(os, summary.count() == 0 ? nan : summary.min());
  os << ", \"max\": ";
  write_number(os, summary.count() == 0 ? nan : summary.max());
  os << ", \"infinite\": " << infinite << "}";
}

/// The certified a-posteriori ratio UB / w(S) with the same conventions as
/// the measured ratio (1.0 when 0/0, +inf for a zero-weight solution).
double certified_ratio(const cert::Certificate& cert) {
  if (cert.solution_weight > 0) {
    return static_cast<double>(cert.ub.value) /
           static_cast<double>(cert.solution_weight);
  }
  if (cert.ub.value == 0) return 1.0;
  return std::numeric_limits<double>::infinity();
}

}  // namespace

void BatchResumeStore::attach(BatchOptions& options) {
  options.load_case = [this](std::size_t i, BatchCase* c) {
    std::lock_guard lock(mutex_);
    const auto it = done_.find(i);
    if (it == done_.end()) return false;
    *c = it->second;
    return true;
  };
  options.save_case = [this](std::size_t i, const BatchCase& c) {
    std::lock_guard lock(mutex_);
    done_.insert_or_assign(i, c);
  };
}

std::size_t BatchResumeStore::size() const {
  std::lock_guard lock(mutex_);
  return done_.size();
}

BatchReport run_batch(const BatchOptions& options, const BatchCaseFn& fn,
                      ThreadPool& pool) {
  BatchReport out;
  out.num_instances = options.num_instances;
  out.base_seed = options.base_seed;
  out.threads = pool.thread_count();

  std::vector<BatchCase> cases(options.num_instances);
  const auto sweep_start = Clock::now();
  pool.parallel_for(options.num_instances, [&](std::size_t i) {
    const std::uint64_t seed = batch_case_seed(options.base_seed, i);
    BatchCase c;
    if (options.load_case && options.load_case(i, &c)) {
      // Completed by a previous (interrupted) run; reuse verbatim. The
      // aggregate stays deterministic because the record is the pure
      // function of (i, seed) the first run already computed. (No counter
      // is bumped here: resumed and uninterrupted sweeps must aggregate to
      // byte-identical reports.)
      cases[i] = std::move(c);
      return;
    }
    TelemetryReport collected;
    const auto case_start = Clock::now();
    if (options.collect_telemetry) {
      TelemetrySession session(&collected);
      c = fn(i, seed);
    } else {
      c = fn(i, seed);
    }
    c.seconds = seconds_since(case_start);
    // Allocator counters record whether the executing thread's arena was
    // warm — a scheduling fact, not a property of the case — so they are
    // dropped from records that must aggregate byte-identically across
    // thread counts and resumes.
    collected.drop_counters_with_prefix("alloc.");
    c.telemetry.merge(collected);
    if (options.save_case) options.save_case(i, c);
    cases[i] = std::move(c);
  });
  out.total_seconds = seconds_since(sweep_start);

  // Sequential aggregation in instance order: identical across thread counts.
  std::vector<double> finite_ratios;
  std::vector<double> finite_cert_ratios;
  finite_ratios.reserve(cases.size());
  for (const BatchCase& c : cases) {
    out.case_seconds.add(c.seconds);
    out.telemetry.merge(c.telemetry);
    if (!c.feasible) continue;
    ++out.solved;
    if (c.bound_exact) ++out.bound_exact;
    if (std::isfinite(c.ratio)) {
      out.ratio.add(c.ratio);
      finite_ratios.push_back(c.ratio);
    } else {
      ++out.ratio_infinite;
    }
    if (c.certified) {
      ++out.certified;
      if (c.cert_checked) ++out.cert_checked;
      ++out.cert_rungs[static_cast<std::size_t>(c.cert_rung)];
      if (std::isfinite(c.cert_ratio)) {
        out.cert_ratio.add(c.cert_ratio);
        finite_cert_ratios.push_back(c.cert_ratio);
      } else {
        ++out.cert_ratio_infinite;
      }
    }
  }
  out.ratio_p50 = percentile(finite_ratios, 50.0);
  out.ratio_p95 = percentile(finite_ratios, 95.0);
  out.cert_ratio_p50 = percentile(finite_cert_ratios, 50.0);
  out.cert_ratio_p95 = percentile(finite_cert_ratios, 95.0);
  if (options.keep_cases) out.cases = std::move(cases);
  return out;
}

void write_batch_json(std::ostream& os, const BatchReport& report,
                      const BatchJsonOptions& options) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(12);

  os << "{\n  \"schema\": \"sapkit-batch-v1\",\n";
  os << "  \"sweep\": {\n";
  os << "    \"instances\": " << report.num_instances << ",\n";
  os << "    \"base_seed\": " << report.base_seed << ",\n";
  os << "    \"solved\": " << report.solved << ",\n";
  os << "    \"bound_exact\": " << report.bound_exact << ",\n";
  os << "    \"ratio\": ";
  write_ratio_stats(os, report.ratio, report.ratio_p50, report.ratio_p95,
                    report.ratio_infinite);
  os << ",\n";
  os << "    \"certificates\": {\"produced\": " << report.certified
     << ", \"checked\": " << report.cert_checked << ", \"rungs\": {";
  for (std::size_t r = 0; r < cert::kNumUbRungs; ++r) {
    os << (r == 0 ? "" : ", ") << "\""
       << cert::ub_rung_name(static_cast<cert::UbRung>(r))
       << "\": " << report.cert_rungs[r];
  }
  os << "}, \"ratio\": ";
  write_ratio_stats(os, report.cert_ratio, report.cert_ratio_p50,
                    report.cert_ratio_p95, report.cert_ratio_infinite);
  os << "},\n";
  os << "    \"telemetry\": ";
  report.telemetry.write_json(os, /*include_timers=*/false, /*indent=*/4);
  os << "\n  }";

  if (options.include_timings) {
    os << ",\n  \"run\": {\n";
    os << "    \"threads\": " << report.threads << ",\n";
    os << "    \"total_seconds\": ";
    write_number(os, report.total_seconds);
    os << ",\n    \"case_seconds\": {\"mean\": ";
    write_number(os, report.case_seconds.count() == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : report.case_seconds.mean());
    os << ", \"max\": ";
    write_number(os, report.case_seconds.count() == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : report.case_seconds.max());
    os << "},\n";
    os << "    \"timers\": {";
    bool first = true;
    for (const auto& [name, stat] : report.telemetry.timers()) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "      \"" << name << "\": {\"count\": " << stat.count
         << ", \"seconds\": ";
      write_number(os, stat.seconds);
      os << "}";
    }
    if (!first) os << "\n    ";
    os << "}\n  }";
  }

  if (options.include_cases) {
    os << ",\n  \"cases\": [";
    for (std::size_t i = 0; i < report.cases.size(); ++i) {
      const BatchCase& c = report.cases[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "    {\"index\": " << i << ", \"seed\": "
         << batch_case_seed(report.base_seed, i)
         << ", \"feasible\": " << (c.feasible ? "true" : "false")
         << ", \"weight\": " << c.algo_weight << ", \"bound\": ";
      write_number(os, c.bound);
      os << ", \"bound_exact\": " << (c.bound_exact ? "true" : "false")
         << ", \"ratio\": ";
      write_number(os, c.ratio);
      if (c.certified) {
        os << ", \"certified\": true, \"cert_checked\": "
           << (c.cert_checked ? "true" : "false") << ", \"cert_rung\": \""
           << cert::ub_rung_name(c.cert_rung) << "\", \"cert_ratio\": ";
        write_number(os, c.cert_ratio);
      }
      if (options.include_timings) {
        os << ", \"seconds\": ";
        write_number(os, c.seconds);
      }
      os << "}";
    }
    if (!report.cases.empty()) os << "\n  ";
    os << "]";
  }

  os << "\n}\n";
  os.flags(flags);
  os.precision(precision);
}

BatchCaseFn make_path_batch_case(const PathBatchConfig& config) {
  return [config](std::size_t /*index*/, std::uint64_t seed) {
    Rng rng(seed);
    const PathInstance inst = generate_path_instance(config.gen, rng);
    SolverParams params = config.solver;
    params.seed = seed;
    BatchCase out;
    SapSolution sol;
    {
      ScopedTimer timer("batch.solve");
      sol = solve_sap(inst, params);
    }
    if (!verify_sap(inst, sol)) return out;
    out.feasible = true;
    if (config.certify) {
      // One ladder run: the certificate's bound doubles as the ratio bound.
      cert::CertifyOptions copts;
      copts.ladder = config.bound.ladder();
      cert::CertifyOutcome outcome;
      {
        ScopedTimer timer("batch.certify");
        outcome = cert::certify_solution(inst, sol, copts);
      }
      out.algo_weight = sol.weight(inst);
      if (outcome.certified) {
        out.certified = true;
        out.cert_rung = outcome.cert.ub.rung;
        out.cert_ratio = certified_ratio(outcome.cert);
        out.bound = static_cast<double>(outcome.cert.ub.value);
        out.bound_exact = outcome.cert.ub.rung == cert::UbRung::kExactDp;
        out.ratio = out.cert_ratio;
        ScopedTimer timer("batch.check_cert");
        out.cert_checked = static_cast<bool>(
            cert::check_certificate(inst, sol, outcome.cert, config.check));
      } else {
        out.ratio = std::numeric_limits<double>::quiet_NaN();
      }
      return out;
    }
    ScopedTimer timer("batch.bound");
    const RatioMeasurement m = measure_ratio(inst, sol, config.bound);
    out.algo_weight = m.algo_weight;
    out.bound = m.bound;
    out.bound_exact = m.bound_exact;
    out.ratio = m.ratio;
    return out;
  };
}

BatchCaseFn make_round_batch_case(const RoundBatchConfig& config) {
  return [config](std::size_t /*index*/, std::uint64_t seed) {
    Rng rng(seed);
    const PathInstance inst = round::generate_round_instance(config.gen, rng);
    BatchCase out;
    round::RoundRatioMeasurement m;
    {
      ScopedTimer timer("batch.round");
      m = round::measure_round_ratio(inst, config.kind, config.approx,
                                     config.exact);
    }
    if (!m.approx_valid) return out;
    out.feasible = true;
    out.algo_weight = m.approx_rounds;
    out.bound = static_cast<double>(m.oracle_rounds);
    out.bound_exact = m.oracle_proven;
    out.ratio = m.oracle_rounds > 0
                    ? static_cast<double>(m.approx_rounds) /
                          static_cast<double>(m.oracle_rounds)
                    : 1.0;
    return out;
  };
}

BatchCaseFn make_ring_batch_case(const RingBatchConfig& config) {
  return [config](std::size_t /*index*/, std::uint64_t seed) {
    Rng rng(seed);
    const RingInstance ring = generate_ring_instance(config.gen, rng);
    RingSolverParams params = config.solver;
    params.path.seed = seed;
    BatchCase out;
    RingSapSolution sol;
    {
      ScopedTimer timer("batch.solve");
      sol = solve_ring_sap(ring, params);
    }
    if (!verify_ring_sap(ring, sol)) return out;
    out.feasible = true;
    if (config.certify) {
      cert::CertifyOutcome outcome;
      {
        ScopedTimer timer("batch.certify");
        outcome = cert::certify_solution(ring, sol);
      }
      out.algo_weight = ring.solution_weight(sol);
      if (outcome.certified) {
        out.certified = true;
        out.cert_rung = outcome.cert.ub.rung;
        out.cert_ratio = certified_ratio(outcome.cert);
        out.bound = static_cast<double>(outcome.cert.ub.value);
        out.ratio = out.cert_ratio;
        ScopedTimer timer("batch.check_cert");
        out.cert_checked = static_cast<bool>(
            cert::check_certificate(ring, sol, outcome.cert, config.check));
      } else {
        out.ratio = std::numeric_limits<double>::quiet_NaN();
      }
    } else if (config.compute_bound) {
      ScopedTimer timer("batch.bound");
      const RatioMeasurement m = measure_ring_ratio(ring, sol);
      out.algo_weight = m.algo_weight;
      out.bound = m.bound;
      out.bound_exact = m.bound_exact;
      out.ratio = m.ratio;
    } else {
      out.algo_weight = ring.solution_weight(sol);
      out.ratio = std::numeric_limits<double>::quiet_NaN();
    }
    return out;
  };
}

}  // namespace sap
