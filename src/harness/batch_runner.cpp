#include "src/harness/batch_runner.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>

#include "src/core/sap_solver.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// JSON number with non-finite values mapped to null (JSON has no NaN/inf).
void write_number(std::ostream& os, double value) {
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "null";
  }
}

/// {"count": c, "mean": m, "p50": ..., "p95": ..., "min": ..., "max": ...}
/// computed over the finite-ratio sample; nulls when the sample is empty.
void write_ratio_stats(std::ostream& os, const BatchReport& report) {
  os << "{\"count\": " << report.ratio.count() << ", \"mean\": ";
  write_number(os, report.ratio.count() == 0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : report.ratio.mean());
  os << ", \"p50\": ";
  write_number(os, report.ratio_p50);
  os << ", \"p95\": ";
  write_number(os, report.ratio_p95);
  os << ", \"min\": ";
  write_number(os, report.ratio.count() == 0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : report.ratio.min());
  os << ", \"max\": ";
  write_number(os, report.ratio.count() == 0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : report.ratio.max());
  os << ", \"infinite\": " << report.ratio_infinite << "}";
}

}  // namespace

BatchReport run_batch(const BatchOptions& options, const BatchCaseFn& fn,
                      ThreadPool& pool) {
  BatchReport out;
  out.num_instances = options.num_instances;
  out.base_seed = options.base_seed;
  out.threads = pool.thread_count();

  std::vector<BatchCase> cases(options.num_instances);
  const auto sweep_start = Clock::now();
  pool.parallel_for(options.num_instances, [&](std::size_t i) {
    const std::uint64_t seed = batch_case_seed(options.base_seed, i);
    TelemetryReport collected;
    const auto case_start = Clock::now();
    BatchCase c;
    if (options.collect_telemetry) {
      TelemetrySession session(&collected);
      c = fn(i, seed);
    } else {
      c = fn(i, seed);
    }
    c.seconds = seconds_since(case_start);
    c.telemetry.merge(collected);
    cases[i] = std::move(c);
  });
  out.total_seconds = seconds_since(sweep_start);

  // Sequential aggregation in instance order: identical across thread counts.
  std::vector<double> finite_ratios;
  finite_ratios.reserve(cases.size());
  for (const BatchCase& c : cases) {
    out.case_seconds.add(c.seconds);
    out.telemetry.merge(c.telemetry);
    if (!c.feasible) continue;
    ++out.solved;
    if (c.bound_exact) ++out.bound_exact;
    if (std::isfinite(c.ratio)) {
      out.ratio.add(c.ratio);
      finite_ratios.push_back(c.ratio);
    } else {
      ++out.ratio_infinite;
    }
  }
  out.ratio_p50 = percentile(finite_ratios, 50.0);
  out.ratio_p95 = percentile(finite_ratios, 95.0);
  if (options.keep_cases) out.cases = std::move(cases);
  return out;
}

void write_batch_json(std::ostream& os, const BatchReport& report,
                      const BatchJsonOptions& options) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(12);

  os << "{\n  \"schema\": \"sapkit-batch-v1\",\n";
  os << "  \"sweep\": {\n";
  os << "    \"instances\": " << report.num_instances << ",\n";
  os << "    \"base_seed\": " << report.base_seed << ",\n";
  os << "    \"solved\": " << report.solved << ",\n";
  os << "    \"bound_exact\": " << report.bound_exact << ",\n";
  os << "    \"ratio\": ";
  write_ratio_stats(os, report);
  os << ",\n";
  os << "    \"telemetry\": ";
  report.telemetry.write_json(os, /*include_timers=*/false, /*indent=*/4);
  os << "\n  }";

  if (options.include_timings) {
    os << ",\n  \"run\": {\n";
    os << "    \"threads\": " << report.threads << ",\n";
    os << "    \"total_seconds\": ";
    write_number(os, report.total_seconds);
    os << ",\n    \"case_seconds\": {\"mean\": ";
    write_number(os, report.case_seconds.count() == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : report.case_seconds.mean());
    os << ", \"max\": ";
    write_number(os, report.case_seconds.count() == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : report.case_seconds.max());
    os << "},\n";
    os << "    \"timers\": {";
    bool first = true;
    for (const auto& [name, stat] : report.telemetry.timers()) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "      \"" << name << "\": {\"count\": " << stat.count
         << ", \"seconds\": ";
      write_number(os, stat.seconds);
      os << "}";
    }
    if (!first) os << "\n    ";
    os << "}\n  }";
  }

  if (options.include_cases) {
    os << ",\n  \"cases\": [";
    for (std::size_t i = 0; i < report.cases.size(); ++i) {
      const BatchCase& c = report.cases[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "    {\"index\": " << i << ", \"seed\": "
         << batch_case_seed(report.base_seed, i)
         << ", \"feasible\": " << (c.feasible ? "true" : "false")
         << ", \"weight\": " << c.algo_weight << ", \"bound\": ";
      write_number(os, c.bound);
      os << ", \"bound_exact\": " << (c.bound_exact ? "true" : "false")
         << ", \"ratio\": ";
      write_number(os, c.ratio);
      if (options.include_timings) {
        os << ", \"seconds\": ";
        write_number(os, c.seconds);
      }
      os << "}";
    }
    if (!report.cases.empty()) os << "\n  ";
    os << "]";
  }

  os << "\n}\n";
  os.flags(flags);
  os.precision(precision);
}

BatchCaseFn make_path_batch_case(const PathBatchConfig& config) {
  return [config](std::size_t /*index*/, std::uint64_t seed) {
    Rng rng(seed);
    const PathInstance inst = generate_path_instance(config.gen, rng);
    SolverParams params = config.solver;
    params.seed = seed;
    BatchCase out;
    SapSolution sol;
    {
      ScopedTimer timer("batch.solve");
      sol = solve_sap(inst, params);
    }
    if (!verify_sap(inst, sol)) return out;
    out.feasible = true;
    ScopedTimer timer("batch.bound");
    const RatioMeasurement m = measure_ratio(inst, sol, config.bound);
    out.algo_weight = m.algo_weight;
    out.bound = m.bound;
    out.bound_exact = m.bound_exact;
    out.ratio = m.ratio;
    return out;
  };
}

BatchCaseFn make_ring_batch_case(const RingBatchConfig& config) {
  return [config](std::size_t /*index*/, std::uint64_t seed) {
    Rng rng(seed);
    const RingInstance ring = generate_ring_instance(config.gen, rng);
    RingSolverParams params = config.solver;
    params.path.seed = seed;
    BatchCase out;
    RingSapSolution sol;
    {
      ScopedTimer timer("batch.solve");
      sol = solve_ring_sap(ring, params);
    }
    if (!verify_ring_sap(ring, sol)) return out;
    out.feasible = true;
    if (config.compute_bound) {
      ScopedTimer timer("batch.bound");
      const RatioMeasurement m = measure_ring_ratio(ring, sol);
      out.algo_weight = m.algo_weight;
      out.bound = m.bound;
      out.bound_exact = m.bound_exact;
      out.ratio = m.ratio;
    } else {
      out.algo_weight = ring.solution_weight(sol);
      out.ratio = std::numeric_limits<double>::quiet_NaN();
    }
    return out;
  };
}

}  // namespace sap
