// Parallel batch-solve harness: run a generator sweep of N instances across
// a ThreadPool, collect per-instance ratio measurements and solver telemetry,
// and aggregate them into a machine-readable report.
//
// Determinism contract: instance i draws every random bit from seed
// base_seed ^ i, and aggregation happens sequentially in instance order
// after the pool joins — so the aggregate (and its JSON in counters-only
// mode) is byte-identical across thread counts. Wall-clock timings are the
// only scheduling-dependent output and live in a separate "run" section that
// write_batch_json can omit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <mutex>
// sapkit-lint: allow(determinism) -- header for BatchResumeStore's
// index-keyed checkpoint map; see the member for the iteration argument.
#include <unordered_map>
#include <vector>

#include "src/cert/check.hpp"
#include "src/core/ring_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/round/gen.hpp"
#include "src/round/ratio.hpp"
#include "src/util/stats.hpp"
#include "src/util/telemetry.hpp"
#include "src/util/thread_pool.hpp"

namespace sap {

/// Outcome of one instance of a sweep.
struct BatchCase {
  bool feasible = false;  ///< solver output passed the independent verifier
  Weight algo_weight = 0;
  double bound = 0.0;
  bool bound_exact = false;
  double ratio = 1.0;
  /// Certification outcome (certify sweeps only): a certificate was
  /// produced, and it additionally passed the independent check_certificate
  /// verifier.
  bool certified = false;
  bool cert_checked = false;
  cert::UbRung cert_rung = cert::UbRung::kTotalWeight;
  /// Certified a-posteriori ratio UB / w(S) (1.0 when both are zero, +inf
  /// for zero-weight output against a positive certified bound).
  double cert_ratio = std::numeric_limits<double>::quiet_NaN();
  TelemetryReport telemetry;  ///< collected while this case ran
  double seconds = 0.0;       ///< case wall time (excluded from determinism)
};

/// Builds and solves the i-th case. Receives the sweep index and the
/// deterministic per-instance seed; must not depend on any other state that
/// varies across runs or threads.
using BatchCaseFn = std::function<BatchCase(std::size_t index,
                                            std::uint64_t seed)>;

struct BatchOptions {
  std::size_t num_instances = 0;
  std::uint64_t base_seed = 1;
  /// Install a TelemetrySession around each case (cases still run with the
  /// instrumentation disabled-path cost when false).
  bool collect_telemetry = true;
  /// Keep every per-case record in BatchReport::cases (the aggregate is
  /// always computed).
  bool keep_cases = true;
  /// Resume seam. `load_case(i, &c)` returning true supplies a completed
  /// record from a previous (interrupted) run and skips recomputation;
  /// `save_case(i, c)` fires as each case completes so the caller can
  /// persist it. Both are called from pool worker threads concurrently —
  /// implementations must be thread-safe. Because a case is a pure function
  /// of (index, seed) and aggregation is sequential in instance order, a
  /// resumed sweep's aggregate is byte-identical to an uninterrupted one.
  std::function<bool(std::size_t, BatchCase*)> load_case;
  std::function<void(std::size_t, const BatchCase&)> save_case;
};

/// Ready-made in-memory checkpoint store for the resume seam: survives an
/// exception that aborts run_batch (e.g. a deadline or a simulated kill)
/// and lets the next run_batch complete only the missing cases.
class BatchResumeStore {
 public:
  /// Wires this store into `options` (overwrites load_case/save_case).
  void attach(BatchOptions& options);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  // sapkit-lint: allow(determinism) -- never iterated: accessed only by
  // point lookup/insert on the case index, so iteration order cannot
  // reach any output.
  std::unordered_map<std::size_t, BatchCase> done_;
};

/// Aggregate over one sweep. All fields except `threads`, `total_seconds`,
/// `case_seconds` and the timer halves of `telemetry` are deterministic
/// functions of (case fn, num_instances, base_seed).
struct BatchReport {
  std::size_t num_instances = 0;
  std::uint64_t base_seed = 0;
  std::size_t threads = 0;
  std::size_t solved = 0;          ///< cases with feasible == true
  std::size_t bound_exact = 0;     ///< cases whose bound was proven optimal
  std::size_t ratio_infinite = 0;  ///< zero-weight output against a positive bound
  Summary ratio;                   ///< finite ratios of feasible cases
  double ratio_p50 = 0.0;
  double ratio_p95 = 0.0;
  /// Certification aggregate (all zero unless the sweep certifies).
  std::size_t certified = 0;     ///< certificates produced
  std::size_t cert_checked = 0;  ///< produced AND passed check_certificate
  std::array<std::size_t, cert::kNumUbRungs> cert_rungs{};  ///< by UbRung
  Summary cert_ratio;            ///< finite certified ratios
  double cert_ratio_p50 = 0.0;
  double cert_ratio_p95 = 0.0;
  std::size_t cert_ratio_infinite = 0;
  Summary case_seconds;
  double total_seconds = 0.0;
  TelemetryReport telemetry;       ///< merged over cases, instance order
  std::vector<BatchCase> cases;    ///< per-instance records (keep_cases)
};

/// Seed of instance `index` in a sweep rooted at `base_seed`.
[[nodiscard]] constexpr std::uint64_t batch_case_seed(
    std::uint64_t base_seed, std::size_t index) noexcept {
  return base_seed ^ static_cast<std::uint64_t>(index);
}

/// Runs the sweep across `pool` (the calling thread participates) and
/// aggregates in instance order. An exception from any case cancels the
/// aggregate and is rethrown (first one wins, via ThreadPool).
[[nodiscard]] BatchReport run_batch(const BatchOptions& options,
                                    const BatchCaseFn& fn, ThreadPool& pool);

struct BatchJsonOptions {
  /// Emit the scheduling-dependent "run" section (threads, wall times,
  /// telemetry timers). Off = counters-only deterministic report.
  bool include_timings = true;
  /// Emit the per-case array.
  bool include_cases = false;
};

/// Writes the report as a single JSON object ("sapkit-batch-v1", see
/// docs/ALGORITHMS.md) with keys in fixed order and sorted counter names.
void write_batch_json(std::ostream& os, const BatchReport& report,
                      const BatchJsonOptions& options = {});

/// Standard path sweep: generate_path_instance -> solve_sap -> verify_sap ->
/// measure_ratio, with params.seed re-rooted at the case seed. With
/// `certify` set, each case instead produces a full certificate (one ladder
/// run, whose bound doubles as the ratio bound) and pushes it through the
/// independent check_certificate verifier.
struct PathBatchConfig {
  PathGenOptions gen;
  SolverParams solver;
  OptBoundOptions bound;
  bool certify = false;
  cert::CheckOptions check;
};
[[nodiscard]] BatchCaseFn make_path_batch_case(const PathBatchConfig& config);

/// Standard ring sweep: generate_ring_instance -> solve_ring_sap ->
/// verify_ring_sap -> measure_ring_ratio (two-route LP bound). `certify` as
/// for path sweeps.
struct RingBatchConfig {
  RingGenOptions gen;
  RingSolverParams solver;
  bool compute_bound = true;  ///< false: skip the LP, report weights only
  bool certify = false;
  cert::CheckOptions check;
};
[[nodiscard]] BatchCaseFn make_ring_batch_case(const RingBatchConfig& config);

/// Round-family sweep: generate_round_instance -> round approximation ->
/// verify_round_assignment, with the branch-and-bound oracle as the ratio
/// bound. Round counts map onto the report's weight/bound/ratio fields:
/// algo_weight = approximation rounds, bound = oracle rounds (bound_exact
/// iff the oracle proved optimality), ratio = approx / oracle >= 1. An
/// oracle timeout falls back to the approximation count (ratio 1, not
/// exact), so a sweep cannot hang on one adversarial case.
struct RoundBatchConfig {
  round::RoundGenOptions gen;
  round::RoundKind kind = round::RoundKind::kUfp;
  round::RoundApproxOptions approx;
  round::RoundExactOptions exact;
};
[[nodiscard]] BatchCaseFn make_round_batch_case(const RoundBatchConfig& config);

}  // namespace sap
