#include "src/harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << cells[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace sap
