#include "src/core/large_tasks.hpp"

namespace sap {

SapSolution solve_large_tasks(const PathInstance& inst,
                              std::span<const TaskId> subset,
                              const SolverParams& params,
                              LargeTasksReport* report) {
  const std::vector<TaskRect> rects = task_rectangles(inst, subset);
  const RectMwisResult mwis =
      rectangle_mwis(rects, {params.large_max_nodes, params.deadline});
  if (mwis.timed_out) throw DeadlineExceeded("large-task rectangle MWIS");
  SapSolution out;
  out.placements.reserve(mwis.chosen.size());
  for (std::size_t idx : mwis.chosen) {
    out.placements.push_back({rects[idx].task, rects[idx].bottom});
  }
  if (report != nullptr) {
    report->num_rectangles = rects.size();
    report->mwis_weight = mwis.weight;
    report->proven_optimal = mwis.proven_optimal;
    report->nodes = mwis.nodes;
  }
  return out;
}

}  // namespace sap
