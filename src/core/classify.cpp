#include "src/core/classify.hpp"

namespace sap {

TaskClasses classify_tasks(const PathInstance& inst,
                           const SolverParams& params) {
  TaskClasses out;
  const Ratio large_threshold{1, params.k_large};
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const auto id = static_cast<TaskId>(j);
    if (inst.is_small(id, params.delta)) {
      out.small.push_back(id);
    } else if (inst.is_large(id, large_threshold)) {
      out.large.push_back(id);
    } else {
      out.medium.push_back(id);
    }
  }
  return out;
}

}  // namespace sap
