// Section 5: the (2+eps)-approximation for medium tasks (delta-large and
// (1-2*beta)-small).
//
// Algorithm AlmostUniform partitions tasks into overlapping bottleneck bands
// J^{k,ell} = { j : 2^k <= b(j) < 2^(k+ell) }, runs Elevator on each band to
// obtain a beta-elevated solution, groups bands by residue r modulo
// (ell + q), q = ceil(log2(1/beta)), and keeps the heaviest residue class —
// elevation makes stacked bands vertically disjoint (Lemma 8).
//
// Elevator follows the paper's remark after Lemma 15: instead of computing
// an unconstrained optimum and splitting it (Lemma 14), it runs the exact
// profile DP with a height floor of ceil(beta * 2^k), directly producing the
// optimal beta-elevated solution, which Lemma 14 shows is 2-approximate.
#pragma once

#include <span>
#include <vector>

#include "src/core/params.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// How Elevator obtains its beta-elevated solution.
enum class ElevatorMode {
  /// Exact DP with a height floor (the remark after Lemma 15): directly
  /// the optimal beta-elevated solution.
  kDirectDp,
  /// The paper's stated two-step algorithm: compute an unconstrained
  /// optimum (Lemma 13), split it into two beta-elevated solutions
  /// (Lemma 14), keep the heavier. Integral rounding of the lift can
  /// invalidate boundary tasks, which are then dropped (counted in
  /// BandInfo::split_dropped).
  kLemma14Split,
};

struct BandInfo {
  int k = 0;                  ///< band: bottlenecks in [2^k, 2^(k+ell))
  std::size_t num_tasks = 0;
  Weight elevated_weight = 0; ///< weight of the Elevator solution
  bool exact = true;          ///< false if the heuristic DP mode was used
  std::size_t split_dropped = 0;  ///< Lemma-14 mode: lift casualties
};

struct MediumTasksReport {
  int ell = 0;
  int q = 0;
  int chosen_residue = 0;
  std::vector<BandInfo> bands;
};

/// Computes the beta-elevated solution for one band (tasks with
/// b(j) in [2^k, 2^(k+ell))), heights floored at ceil(beta * 2^k).
[[nodiscard]] SapSolution elevator(const PathInstance& inst,
                                   std::span<const TaskId> band, int k,
                                   int ell, const SolverParams& params,
                                   bool* exact = nullptr);

/// The Lemma-14 variant: unconstrained band optimum, split into two
/// beta-elevated solutions, heavier one returned.
[[nodiscard]] SapSolution elevator_lemma14(const PathInstance& inst,
                                           std::span<const TaskId> band,
                                           int k, int ell,
                                           const SolverParams& params,
                                           bool* exact = nullptr,
                                           std::size_t* dropped = nullptr);

/// Runs AlmostUniform on `subset` (intended: the medium tasks). Always
/// returns a feasible SAP solution for `inst`.
[[nodiscard]] SapSolution solve_medium_tasks(
    const PathInstance& inst, std::span<const TaskId> subset,
    const SolverParams& params, MediumTasksReport* report = nullptr);

}  // namespace sap
