// Section 6: the (2k-1)-approximation for 1/k-large SAP instances.
//
// Reduce to maximum-weight independent set over the anchored rectangles
// R(j) = [s_j, t_j) x [b(j)-d_j, b(j)), solve it exactly, and read off the
// SAP solution by placing every chosen task at its residual capacity
// l(j) = b(j) - d_j. Pairwise-disjoint rectangles are by construction a
// feasible SAP placement, and Lemma 17's (2k-2)-degeneracy argument bounds
// the loss against OPT_SAP by (2k-1).
#pragma once

#include <span>

#include "src/core/params.hpp"
#include "src/core/rectangles.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

struct LargeTasksReport {
  std::size_t num_rectangles = 0;
  Weight mwis_weight = 0;
  bool proven_optimal = true;
  std::size_t nodes = 0;
};

/// Runs the rectangle reduction + exact MWIS on `subset` (intended: the
/// 1/k-large tasks). Always returns a feasible SAP solution for `inst`.
[[nodiscard]] SapSolution solve_large_tasks(const PathInstance& inst,
                                            std::span<const TaskId> subset,
                                            const SolverParams& params,
                                            LargeTasksReport* report = nullptr);

}  // namespace sap
