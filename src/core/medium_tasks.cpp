#include "src/core/medium_tasks.hpp"

#include <bit>
#include <map>

#include "src/exact/profile_dp.hpp"

namespace sap {
namespace {

int floor_log2(Value v) {
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v))) - 1;
}

/// ceil(beta * 2^k) computed exactly.
Value elevation_floor(Ratio beta, int k) {
  const Int128 num = static_cast<Int128>(beta.num) << k;
  return static_cast<Value>((num + beta.den - 1) / beta.den);
}

}  // namespace

SapSolution elevator(const PathInstance& inst, std::span<const TaskId> band,
                     int k, int ell, const SolverParams& params, bool* exact) {
  const Value band_cap = Value{1} << (k + ell);
  auto [sub, back] = inst.clamp_capacities(band_cap, band);

  SapExactOptions dp;
  dp.min_height = elevation_floor(params.beta, k);
  dp.deadline = params.deadline;
  if (params.medium_allow_heuristic &&
      band_cap > params.medium_exact_capacity_limit) {
    dp.grounded_only = true;
  }
  const SapExactResult result = sap_exact_profile_dp(sub, dp);
  if (result.timed_out) throw DeadlineExceeded("medium elevator DP");
  if (exact != nullptr) *exact = result.proven_optimal;
  return result.solution.remapped(back);
}

SapSolution elevator_lemma14(const PathInstance& inst,
                             std::span<const TaskId> band, int k, int ell,
                             const SolverParams& params, bool* exact,
                             std::size_t* dropped) {
  const Value band_cap = Value{1} << (k + ell);
  auto [sub, back] = inst.clamp_capacities(band_cap, band);

  SapExactOptions dp;
  dp.deadline = params.deadline;
  if (params.medium_allow_heuristic &&
      band_cap > params.medium_exact_capacity_limit) {
    dp.grounded_only = true;
  }
  const SapExactResult result = sap_exact_profile_dp(sub, dp);
  if (result.timed_out) throw DeadlineExceeded("medium elevator DP");
  if (exact != nullptr) *exact = result.proven_optimal;

  // Lemma 14: S1 = tasks below the elevation line (lifted), S2 = the rest.
  const Value lift = elevation_floor(params.beta, k);
  SapSolution low;
  SapSolution high;
  std::size_t casualties = 0;
  for (const Placement& p : result.solution.placements) {
    if (params.beta.lt_scaled(p.height, Value{1} << k)) {
      // Lifting by ceil(beta * 2^k) is safe by inequality (2) up to the
      // integral rounding of the lift; drop the rare boundary violators.
      // sapkit-lint: begin-allow(exact-arith) -- h + lift <= 2 * bottleneck
      // and lifted + d <= 2 * bottleneck (the guard drops violators), with
      // bottleneck <= capacity <= 2^62: both pairwise sums are exact int64.
      const Value lifted = p.height + lift;
      if (lifted + sub.task(p.task).demand <= sub.bottleneck(p.task)) {
        // sapkit-lint: end-allow(exact-arith)
        low.placements.push_back({p.task, lifted});
      } else {
        ++casualties;
      }
    } else {
      high.placements.push_back({p.task, p.height});
    }
  }
  if (dropped != nullptr) *dropped = casualties;
  const SapSolution& better =
      low.weight(sub) >= high.weight(sub) ? low : high;
  return better.remapped(back);
}

SapSolution solve_medium_tasks(const PathInstance& inst,
                               std::span<const TaskId> subset,
                               const SolverParams& params,
                               MediumTasksReport* report) {
  const int ell = params.effective_ell();
  const int q = params.beta_q();
  if (report != nullptr) {
    report->ell = ell;
    report->q = q;
  }

  // Build the overlapping bands: task j belongs to J^{k,ell} for every k in
  // (log2 b(j) - ell, log2 b(j)] — exactly ell bands.
  std::map<int, std::vector<TaskId>> bands;
  for (TaskId j : subset) {
    const int top = floor_log2(inst.bottleneck(j));
    for (int k = top - ell + 1; k <= top; ++k) {
      if (k >= 0) bands[k].push_back(j);
    }
  }

  std::map<int, SapSolution> band_solutions;
  for (const auto& [k, members] : bands) {
    params.deadline.check();
    bool exact = true;
    std::size_t dropped = 0;
    SapSolution sol =
        params.elevator_mode == static_cast<int>(ElevatorMode::kLemma14Split)
            ? elevator_lemma14(inst, members, k, ell, params, &exact,
                               &dropped)
            : elevator(inst, members, k, ell, params, &exact);
    if (report != nullptr) {
      report->bands.push_back(
          {k, members.size(), sol.weight(inst), exact, dropped});
    }
    band_solutions.emplace(k, std::move(sol));
  }

  // Residue classes: bands spaced ell+q apart stack feasibly (Lemma 8).
  const int period = ell + q;
  SapSolution best;
  Weight best_weight = -1;
  int best_r = 0;
  for (int r = 0; r < period; ++r) {
    SapSolution combined;
    for (const auto& [k, sol] : band_solutions) {
      if ((k % period + period) % period != r) continue;
      combined.placements.insert(combined.placements.end(),
                                 sol.placements.begin(),
                                 sol.placements.end());
    }
    const Weight w = combined.weight(inst);
    if (w > best_weight) {
      best_weight = w;
      best = std::move(combined);
      best_r = r;
    }
  }
  if (report != nullptr) report->chosen_residue = best_r;
  return best;
}

}  // namespace sap
