#include "src/core/params.hpp"

#include <cmath>
#include <stdexcept>

namespace sap {

// sapkit-lint: begin-allow(float-ban) -- parameter derivation only: these
// ceil/log expressions turn eps and beta into small integer window widths
// before solving starts; no weight, height or capacity ever mixes with them.
int SolverParams::beta_q() const noexcept {
  // q = ceil(log2(1/beta)) = ceil(log2(den/num)).
  const double inv_beta =
      static_cast<double>(beta.den) / static_cast<double>(beta.num);
  return static_cast<int>(std::ceil(std::log2(inv_beta) - 1e-12));
}

int SolverParams::effective_ell() const noexcept {
  if (ell > 0) return ell;
  const int q = beta_q();
  const int derived =
      static_cast<int>(std::ceil(static_cast<double>(q) / eps - 1e-12));
  return derived < 1 ? 1 : derived;
}
// sapkit-lint: end-allow(float-ban)

void SolverParams::validate() const {
  if (!(eps > 0.0)) {
    throw std::invalid_argument("SolverParams: eps must be positive");
  }
  if (beta.num <= 0 || beta.den <= 0 ||
      2 * beta.num >= beta.den) {  // beta in (0, 1/2)
    throw std::invalid_argument("SolverParams: beta must lie in (0, 1/2)");
  }
  if (delta.num <= 0 || delta.den <= 0) {
    throw std::invalid_argument("SolverParams: delta must be positive");
  }
  // delta < 1 - 2*beta  <=>  delta.num * beta.den < (beta.den - 2*beta.num)
  //                          * delta.den
  const Int128 lhs = static_cast<Int128>(delta.num) * beta.den;
  const Int128 rhs =
      static_cast<Int128>(beta.den - 2 * beta.num) * delta.den;
  if (lhs >= rhs) {
    throw std::invalid_argument(
        "SolverParams: delta must be below 1 - 2*beta (Theorem 2)");
  }
  if (k_large < 2) {
    throw std::invalid_argument(
        "SolverParams: k_large must be >= 2 (1/1-large is vacuous)");
  }
  if (elevator_mode < 0 || elevator_mode > 1) {
    throw std::invalid_argument("SolverParams: unknown elevator_mode");
  }
}

}  // namespace sap
