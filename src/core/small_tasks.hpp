// Section 4: the (4+eps)-approximation for delta-small SAP instances.
//
// Algorithm Strip-Pack: partition tasks into bottleneck octaves
// J_t = { j : 2^t <= b(j) < 2^(t+1) }, compute a (2^(t-1))-packable solution
// per octave (LP-rounding, Section 4.1, or the Appendix local-ratio Strip),
// transform it into a strip-packed SAP solution (Lemma 4), lift strip t to
// [2^(t-1), 2^t), and stack.
#pragma once

#include <span>
#include <vector>

#include "src/core/params.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Per-octave diagnostics of a Strip-Pack run (consumed by the benches).
struct StripInfo {
  int t = 0;                 ///< octave: bottlenecks in [2^t, 2^(t+1))
  std::size_t num_tasks = 0;
  Weight ufpp_weight = 0;    ///< weight of the (B/2)-packable UFPP solution
  Weight kept_weight = 0;    ///< after the strip transformation
  // sapkit-lint: begin-allow(float-ban) -- bench/report diagnostics only;
  // nothing reads these back into the solver.
  double retention = 1.0;    ///< kept / (kept + dropped), Lemma 4 measure
  double lp_value = 0.0;     ///< LP optimum (LP backend only)
  // sapkit-lint: end-allow(float-ban)
};

struct SmallTasksReport {
  std::vector<StripInfo> strips;
};

/// Runs Strip-Pack on `subset` (intended: the delta-small tasks). Always
/// returns a feasible SAP solution for `inst`.
[[nodiscard]] SapSolution solve_small_tasks(const PathInstance& inst,
                                            std::span<const TaskId> subset,
                                            const SolverParams& params,
                                            SmallTasksReport* report = nullptr);

}  // namespace sap
