#include "src/core/rectangles.hpp"

#include <algorithm>
#include <numeric>

#include "src/util/arena.hpp"
#include "src/util/flat.hpp"

namespace sap {
namespace {

/// Adjacency as bitsets: row v has bit u set iff rectangles v, u intersect.
/// Arena-backed; recycled with the rest of the solve's footprint.
struct BitGraph {
  std::size_t n = 0;
  std::size_t words = 0;
  FlatBuf<std::uint64_t> bits;

  BitGraph(std::span<const TaskRect> rects, Arena& arena)
      : n(rects.size()), words((rects.size() + 63) / 64), bits(arena) {
    bits.resize_zeroed(n * words);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t u = v + 1; u < n; ++u) {
        if (rects[v].intersects(rects[u])) {
          set(v, u);
          set(u, v);
        }
      }
    }
  }

  void set(std::size_t v, std::size_t u) {
    bits[v * words + u / 64] |= std::uint64_t{1} << (u % 64);
  }
  [[nodiscard]] const std::uint64_t* row(std::size_t v) const {
    return bits.data() + v * words;
  }
};

[[nodiscard]] bool mask_bit(const std::uint64_t* mask, std::size_t v) {
  return (mask[v / 64] >> (v % 64)) & 1u;
}

}  // namespace

std::vector<TaskRect> task_rectangles(const PathInstance& inst,
                                      std::span<const TaskId> subset) {
  std::vector<TaskRect> out;
  out.reserve(subset.size());
  for (TaskId j : subset) {
    const Task& t = inst.task(j);
    const Value b = inst.bottleneck(j);
    out.push_back({j, t.first, t.last, b - t.demand, b, t.weight});
  }
  return out;
}

std::vector<TaskRect> solution_rectangles(const PathInstance& inst,
                                          const SapSolution& sol) {
  std::vector<TaskRect> out;
  out.reserve(sol.placements.size());
  for (const Placement& p : sol.placements) {
    const Task& t = inst.task(p.task);
    // sapkit-lint: begin-allow(exact-arith) -- feasible placements satisfy
    // h + d <= c <= 2^62 (instance construction), so the top is exact.
    out.push_back({p.task, t.first, t.last, p.height, p.height + t.demand,
                   t.weight});
    // sapkit-lint: end-allow(exact-arith)
  }
  return out;
}

ColoringResult smallest_last_coloring(std::span<const TaskRect> rects) {
  const std::size_t n = rects.size();
  ColoringResult out;
  out.color.assign(n, -1);
  if (n == 0) return out;

  // Smallest-last elimination order on the intersection graph.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = v + 1; u < n; ++u) {
      if (rects[v].intersects(rects[u])) {
        adj[v].push_back(u);
        adj[u].push_back(v);
      }
    }
  }
  std::vector<std::size_t> degree(n);
  std::vector<bool> removed(n, false);
  for (std::size_t v = 0; v < n; ++v) degree[v] = adj[v].size();

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v] && (best == n || degree[v] < degree[best])) best = v;
    }
    out.degeneracy =
        std::max(out.degeneracy, static_cast<int>(degree[best]));
    removed[best] = true;
    order.push_back(best);
    for (std::size_t u : adj[best]) {
      if (!removed[u]) --degree[u];
    }
  }

  // Color in reverse elimination order, greedily.
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t v = order[i];
    std::vector<bool> used(n + 1, false);
    for (std::size_t u : adj[v]) {
      if (out.color[u] >= 0) used[static_cast<std::size_t>(out.color[u])] = true;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    out.color[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

namespace {

/// Branch-and-bound state for rectangle_mwis. All bitset scratch lives on
/// the arena: one mask slot per search depth instead of a fresh vector copy
/// per branch, and a flat pool of clique common-neighbor masks reused across
/// bound evaluations.
struct MwisSearch {
  std::span<const TaskRect> rects;
  const BitGraph& graph;
  std::span<const std::size_t> order;
  DeadlineGate gate;
  std::size_t max_nodes;

  /// Depth-indexed masks: slot d holds the alive mask for the dfs call at
  /// depth d. Each branch removes at least one vertex, so depth <= n and
  /// n + 1 slots cover the whole search.
  FlatBuf<std::uint64_t> mask_stack;
  /// Clique cover scratch: at most n cliques of graph.words each.
  FlatBuf<std::uint64_t> clique_masks;

  std::vector<std::size_t> current;
  std::vector<std::size_t> best;
  Weight best_weight = -1;
  std::size_t nodes = 0;
  bool exhausted = false;
  bool timed_out = false;

  MwisSearch(std::span<const TaskRect> r, const BitGraph& g,
             std::span<const std::size_t> ord, const RectMwisOptions& options,
             Arena& arena)
      : rects(r), graph(g), order(ord), gate(options.deadline),
        max_nodes(options.max_nodes), mask_stack(arena), clique_masks(arena) {
    const std::size_t n = rects.size();
    mask_stack.resize_zeroed((n + 1) * graph.words);
    clique_masks.resize_zeroed(n * graph.words);
  }

  [[nodiscard]] std::uint64_t* mask_at(std::size_t depth) {
    return mask_stack.data() + depth * graph.words;
  }

  // Greedy clique cover of the alive set in static order; the bound is the
  // sum over cliques of their maximum weight (first member, by the order).
  [[nodiscard]] Weight clique_bound(const std::uint64_t* mask) {
    std::size_t num_cliques = 0;
    Weight bound = 0;
    for (std::size_t v : order) {
      if (!mask_bit(mask, v)) continue;
      bool placed = false;
      for (std::size_t c = 0; c < num_cliques; ++c) {
        std::uint64_t* clique = clique_masks.data() + c * graph.words;
        if (mask_bit(clique, v)) {
          // v adjacent to every current member: shrink the common mask.
          const std::uint64_t* row = graph.row(v);
          for (std::size_t w = 0; w < graph.words; ++w) clique[w] &= row[w];
          placed = true;
          break;
        }
      }
      if (!placed) {
        std::uint64_t* clique = clique_masks.data() + num_cliques * graph.words;
        ++num_cliques;
        const std::uint64_t* row = graph.row(v);
        std::copy(row, row + graph.words, clique);
        // sapkit-lint: allow(exact-arith) -- each vertex contributes once, so
        // the bound is a subset sum of weights, proven to fit at construction.
        bound += rects[v].weight;
      }
    }
    return bound;
  }

  void dfs(std::size_t depth, Weight weight) {
    if (exhausted || timed_out) return;
    if (gate.expired()) {
      timed_out = true;
      return;
    }
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    if (weight > best_weight) {
      best_weight = weight;
      best = current;
    }
    const std::uint64_t* mask = mask_at(depth);
    // Pick the heaviest alive vertex.
    const std::size_t n = rects.size();
    std::size_t pick = n;
    for (std::size_t v : order) {
      if (mask_bit(mask, v)) {
        pick = v;
        break;
      }
    }
    if (pick == n) return;
    // Both terms are at most the full weight sum, so widen: their sum can
    // exceed int64 even though each side fits.
    if (static_cast<Int128>(weight) + clique_bound(mask) <= best_weight) {
      return;
    }

    // Branch 1: include pick (drop its closed neighborhood). The child mask
    // is written into the next depth slot; this call's slot stays intact for
    // the exclude branch below.
    const std::size_t deeper = depth + 1;
    std::uint64_t* child = mask_at(deeper);
    const std::uint64_t* row = graph.row(pick);
    for (std::size_t w = 0; w < graph.words; ++w) child[w] = mask[w] & ~row[w];
    child[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
    current.push_back(pick);
    // sapkit-lint: allow(exact-arith) -- subset sum of distinct task
    // weights; the instance constructor proved the full sum fits int64.
    dfs(deeper, weight + rects[pick].weight);
    current.pop_back();

    // Branch 2: exclude pick. This call's slot survived the include branch
    // (children only write deeper slots), so copy it down minus pick.
    child = mask_at(deeper);
    std::copy(mask, mask + graph.words, child);
    child[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
    dfs(deeper, weight);
  }
};

}  // namespace

RectMwisResult rectangle_mwis(std::span<const TaskRect> rects,
                              const RectMwisOptions& options) {
  const std::size_t n = rects.size();
  RectMwisResult out;
  if (n == 0) return out;
  Arena& arena = options.arena ? *options.arena : thread_arena();
  ArenaScope scope(arena);
  BitGraph graph(rects, arena);

  // Static order: weight-descending makes the incumbent strong early.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::ranges::sort(order, [&](std::size_t a, std::size_t b) {
    if (rects[a].weight != rects[b].weight) {
      return rects[a].weight > rects[b].weight;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });

  MwisSearch search(rects, graph, order, options, arena);
  std::uint64_t* alive = search.mask_at(0);
  for (std::size_t v = 0; v < n; ++v) {
    alive[v / 64] |= std::uint64_t{1} << (v % 64);
  }
  search.dfs(0, 0);

  if (search.timed_out) {
    // Typed timeout outcome: empty selection, never the partial incumbent.
    out.timed_out = true;
    out.proven_optimal = false;
    out.nodes = search.nodes;
    return out;
  }
  out.chosen = std::move(search.best);
  out.weight = search.best_weight;
  out.proven_optimal = !search.exhausted;
  out.nodes = search.nodes;
  return out;
}

}  // namespace sap
