#include "src/core/rectangles.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace sap {
namespace {

/// Adjacency as bitsets: row v has bit u set iff rectangles v, u intersect.
struct BitGraph {
  std::size_t n = 0;
  std::size_t words = 0;
  std::vector<std::uint64_t> bits;

  explicit BitGraph(std::span<const TaskRect> rects)
      : n(rects.size()), words((rects.size() + 63) / 64),
        bits(rects.size() * ((rects.size() + 63) / 64), 0) {
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t u = v + 1; u < n; ++u) {
        if (rects[v].intersects(rects[u])) {
          set(v, u);
          set(u, v);
        }
      }
    }
  }

  void set(std::size_t v, std::size_t u) {
    bits[v * words + u / 64] |= std::uint64_t{1} << (u % 64);
  }
  [[nodiscard]] bool test(std::size_t v, std::size_t u) const {
    return (bits[v * words + u / 64] >> (u % 64)) & 1u;
  }
  [[nodiscard]] const std::uint64_t* row(std::size_t v) const {
    return &bits[v * words];
  }
};

}  // namespace

std::vector<TaskRect> task_rectangles(const PathInstance& inst,
                                      std::span<const TaskId> subset) {
  std::vector<TaskRect> out;
  out.reserve(subset.size());
  for (TaskId j : subset) {
    const Task& t = inst.task(j);
    const Value b = inst.bottleneck(j);
    out.push_back({j, t.first, t.last, b - t.demand, b, t.weight});
  }
  return out;
}

std::vector<TaskRect> solution_rectangles(const PathInstance& inst,
                                          const SapSolution& sol) {
  std::vector<TaskRect> out;
  out.reserve(sol.placements.size());
  for (const Placement& p : sol.placements) {
    const Task& t = inst.task(p.task);
    // sapkit-lint: begin-allow(exact-arith) -- feasible placements satisfy
    // h + d <= c <= 2^62 (instance construction), so the top is exact.
    out.push_back({p.task, t.first, t.last, p.height, p.height + t.demand,
                   t.weight});
    // sapkit-lint: end-allow(exact-arith)
  }
  return out;
}

ColoringResult smallest_last_coloring(std::span<const TaskRect> rects) {
  const std::size_t n = rects.size();
  ColoringResult out;
  out.color.assign(n, -1);
  if (n == 0) return out;

  // Smallest-last elimination order on the intersection graph.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = v + 1; u < n; ++u) {
      if (rects[v].intersects(rects[u])) {
        adj[v].push_back(u);
        adj[u].push_back(v);
      }
    }
  }
  std::vector<std::size_t> degree(n);
  std::vector<bool> removed(n, false);
  for (std::size_t v = 0; v < n; ++v) degree[v] = adj[v].size();

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v] && (best == n || degree[v] < degree[best])) best = v;
    }
    out.degeneracy =
        std::max(out.degeneracy, static_cast<int>(degree[best]));
    removed[best] = true;
    order.push_back(best);
    for (std::size_t u : adj[best]) {
      if (!removed[u]) --degree[u];
    }
  }

  // Color in reverse elimination order, greedily.
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t v = order[i];
    std::vector<bool> used(n + 1, false);
    for (std::size_t u : adj[v]) {
      if (out.color[u] >= 0) used[static_cast<std::size_t>(out.color[u])] = true;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    out.color[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

RectMwisResult rectangle_mwis(std::span<const TaskRect> rects,
                              const RectMwisOptions& options) {
  const std::size_t n = rects.size();
  RectMwisResult out;
  if (n == 0) return out;
  BitGraph graph(rects);

  // Static order: weight-descending makes the incumbent strong early.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::ranges::sort(order, [&](std::size_t a, std::size_t b) {
    return rects[a].weight > rects[b].weight;
  });

  std::vector<std::uint64_t> alive(graph.words, 0);
  for (std::size_t v = 0; v < n; ++v) {
    alive[v / 64] |= std::uint64_t{1} << (v % 64);
  }

  std::vector<std::size_t> current;
  std::vector<std::size_t> best;
  Weight best_weight = -1;
  std::size_t nodes = 0;
  bool exhausted = false;
  bool timed_out = false;
  DeadlineGate gate(options.deadline);

  // Greedy clique cover of the alive set in static order; the bound is the
  // sum over cliques of their maximum weight (first member, by the order).
  auto clique_bound = [&](const std::vector<std::uint64_t>& mask) -> Weight {
    std::vector<std::vector<std::uint64_t>> cliques;  // common-neighbor masks
    Weight bound = 0;
    for (std::size_t v : order) {
      if (!((mask[v / 64] >> (v % 64)) & 1u)) continue;
      bool placed = false;
      for (std::size_t c = 0; c < cliques.size(); ++c) {
        if ((cliques[c][v / 64] >> (v % 64)) & 1u) {
          // v adjacent to every current member: shrink the common mask.
          const std::uint64_t* row = graph.row(v);
          for (std::size_t w = 0; w < graph.words; ++w) cliques[c][w] &= row[w];
          placed = true;
          break;
        }
      }
      if (!placed) {
        cliques.emplace_back(graph.row(v), graph.row(v) + graph.words);
        // sapkit-lint: allow(exact-arith) -- each vertex contributes once, so
        // the bound is a subset sum of weights, proven to fit at construction.
        bound += rects[v].weight;
      }
    }
    return bound;
  };

  std::function<void(std::vector<std::uint64_t>&, Weight)> dfs =
      [&](std::vector<std::uint64_t>& mask, Weight weight) {
        if (exhausted || timed_out) return;
        if (gate.expired()) {
          timed_out = true;
          return;
        }
        if (++nodes > options.max_nodes) {
          exhausted = true;
          return;
        }
        if (weight > best_weight) {
          best_weight = weight;
          best = current;
        }
        // Pick the heaviest alive vertex.
        std::size_t pick = n;
        for (std::size_t v : order) {
          if ((mask[v / 64] >> (v % 64)) & 1u) {
            pick = v;
            break;
          }
        }
        if (pick == n) return;
        // Both terms are at most the full weight sum, so widen: their sum can
        // exceed int64 even though each side fits.
        if (static_cast<Int128>(weight) + clique_bound(mask) <= best_weight) {
          return;
        }

        // Branch 1: include pick (drop its closed neighborhood).
        std::vector<std::uint64_t> included = mask;
        const std::uint64_t* row = graph.row(pick);
        for (std::size_t w = 0; w < graph.words; ++w) included[w] &= ~row[w];
        included[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
        current.push_back(pick);
        // sapkit-lint: allow(exact-arith) -- subset sum of distinct task
        // weights; the instance constructor proved the full sum fits int64.
        dfs(included, weight + rects[pick].weight);
        current.pop_back();

        // Branch 2: exclude pick.
        std::vector<std::uint64_t> excluded = mask;
        excluded[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
        dfs(excluded, weight);
      };
  dfs(alive, 0);

  if (timed_out) {
    // Typed timeout outcome: empty selection, never the partial incumbent.
    out.timed_out = true;
    out.proven_optimal = false;
    out.nodes = nodes;
    return out;
  }
  out.chosen = std::move(best);
  out.weight = best_weight;
  out.proven_optimal = !exhausted;
  out.nodes = nodes;
  return out;
}

}  // namespace sap
