// Tunable parameters of the full (9+eps)-approximation pipeline
// (Theorem 4: k = 2, beta = 1/4, delta chosen from eps).
#pragma once

#include <cstdint>

#include "src/model/task.hpp"
#include "src/util/deadline.hpp"

namespace sap {

/// Backend choice for the per-strip UFPP step of the small-task pipeline.
enum class SmallTaskBackend {
  kLpRounding,  ///< Section 4.1: LP + quarter scaling + rounding, (4+eps)
  kLocalRatio,  ///< Appendix Algorithm 3 (Strip), deterministic, (5+eps)
};

struct SolverParams {
  /// Approximation slack. Drives delta (small threshold) and ell (medium
  /// framework window width).
  // sapkit-lint: allow(float-ban) -- tuning knob consumed only by the
  // integer parameter derivation in params.cpp; never mixes with quantities.
  double eps = 0.5;

  /// Tasks with d_j <= delta * b(j) are "small" (Theorem 1 pipeline). The
  /// paper picks delta <= eps/100 for the analysis; that makes almost no
  /// task "small" at practical sizes, so the default follows the
  /// structural requirement delta < 1 - 2*beta = 1/2 instead and the
  /// benches measure the resulting ratios.
  Ratio delta{1, 4};

  /// Elevation fraction beta for the medium framework (Theorem 4: 1/4).
  Ratio beta{1, 4};

  /// Tasks with d_j > b(j)/k_large are "large" (Theorem 4: k = 2).
  std::int64_t k_large = 2;

  /// Window width ell of AlmostUniform; 0 = derive from eps as
  /// ceil(q / eps) with q = ceil(log2(1/beta)) (Lemma 10).
  int ell = 0;

  SmallTaskBackend small_backend = SmallTaskBackend::kLocalRatio;

  /// Trials and slack for the LP-rounding backend.
  // sapkit-lint: allow(float-ban) -- forwarded verbatim to src/lp/, where
  // floating point is in charter; core code never computes with it.
  double lp_rounding_eps = 0.2;
  int lp_rounding_trials = 8;

  /// Elevator backend: 0 = direct floored DP (default), 1 = the paper's
  /// Lemma-14 split of an unconstrained optimum. (Kept as an int to avoid a
  /// header cycle; matches ElevatorMode's enumerator order.)
  int elevator_mode = 0;

  /// Use the grounded-heights heuristic in the medium DP when capacities
  /// are too tall for the exact sweep (keeps runtime polynomial-ish at the
  /// cost of exactness inside each class).
  bool medium_allow_heuristic = true;
  Value medium_exact_capacity_limit = 512;

  /// Node budget for the large-task rectangle MWIS branch-and-bound.
  std::size_t large_max_nodes = 5'000'000;

  /// Seed for every randomized component.
  std::uint64_t seed = 0x54F2013ULL;

  /// Cooperative solve budget. Checked between pipeline stages and threaded
  /// into every expensive inner oracle (medium DP, large-task MWIS); expiry
  /// aborts the solve with a thrown DeadlineExceeded — the pipeline never
  /// returns a partial solution. Default: unlimited.
  Deadline deadline{};

  /// q = ceil(log2(1/beta)) used by the medium framework.
  [[nodiscard]] int beta_q() const noexcept;
  /// Effective ell (resolving the 0 = auto rule).
  [[nodiscard]] int effective_ell() const noexcept;

  /// Throws std::invalid_argument when the parameters violate the
  /// theorems' preconditions (eps > 0, 0 < delta < 1 - 2*beta,
  /// beta in (0, 1/2), k >= 2).
  void validate() const;
};

}  // namespace sap
