// Task classification of Theorem 4: delta-small ("small"), 1/k-large
// ("large") and everything in between ("medium": delta-large and
// (1-2*beta)-small once k = 1/(1-2*beta)).
#pragma once

#include <vector>

#include "src/core/params.hpp"
#include "src/model/path_instance.hpp"

namespace sap {

struct TaskClasses {
  std::vector<TaskId> small;   ///< d_j <= delta * b(j)
  std::vector<TaskId> medium;  ///< delta-large and (1/k)-small
  std::vector<TaskId> large;   ///< d_j > b(j) / k
};

/// Splits all tasks of `inst` by the params' delta and k_large thresholds.
/// Every task lands in exactly one class.
[[nodiscard]] TaskClasses classify_tasks(const PathInstance& inst,
                                         const SolverParams& params);

}  // namespace sap
