#include "src/core/small_tasks.hpp"

#include <bit>
#include <map>
#include <numeric>

#include "src/dsa/strip_transform.hpp"
#include "src/ufpp/lp_rounding.hpp"
#include "src/ufpp/strip_local_ratio.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

int floor_log2(Value v) {
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v))) - 1;
}

}  // namespace

SapSolution solve_small_tasks(const PathInstance& inst,
                              std::span<const TaskId> subset,
                              const SolverParams& params,
                              SmallTasksReport* report) {
  std::map<int, std::vector<TaskId>> octaves;
  for (TaskId j : subset) {
    octaves[floor_log2(inst.bottleneck(j))].push_back(j);
  }

  Rng rng(params.seed);
  SapSolution out;
  for (const auto& [t, group] : octaves) {
    params.deadline.check();  // per-octave: each UFPP strip is polynomial
    const Value big_b = Value{1} << t;
    const Value strip_height = big_b / 2;
    if (strip_height < 1) continue;  // cannot host any positive demand

    // Normalize: capacities above 2B are irrelevant to this octave
    // (Observation 2), so clamp before the per-strip UFPP step. In the top
    // octave 2 * big_b would be 2^63 and overflow, but every capacity is at
    // most kMaxExactCapacity, so saturating there keeps the clamp a no-op.
    const Value cap_clamp = big_b > kMaxExactCapacity / 2 ? kMaxExactCapacity
                                                          : 2 * big_b;
    auto [sub, back] = inst.clamp_capacities(cap_clamp, group);
    std::vector<TaskId> all(sub.num_tasks());
    std::iota(all.begin(), all.end(), TaskId{0});

    UfppSolution ufpp;
    // sapkit-lint: allow(float-ban) -- LP backend diagnostic for the report
    // struct only; the solver never reads it back.
    double lp_value = 0.0;
    if (params.small_backend == SmallTaskBackend::kLpRounding) {
      Rng strip_rng = rng.fork();
      const LpRoundingResult rounded = ufpp_lp_rounding_half_b(
          sub, all, big_b,
          {params.lp_rounding_eps, params.lp_rounding_trials}, strip_rng);
      ufpp = rounded.solution;
      lp_value = rounded.lp_value;
    } else {
      ufpp = ufpp_strip_local_ratio(sub, all, big_b);
    }

    StripTransformResult strip = strip_transform(sub, ufpp, strip_height);
    strip.solution.lift(strip_height);  // octave t lives in [B/2, B)
    const SapSolution placed = strip.solution.remapped(back);
    out.placements.insert(out.placements.end(), placed.placements.begin(),
                          placed.placements.end());

    if (report != nullptr) {
      report->strips.push_back({t, group.size(), ufpp.weight(sub),
                                strip.kept_weight, strip.retention(),
                                lp_value});
    }
  }
  return out;
}

}  // namespace sap
