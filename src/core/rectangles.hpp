// Section 6 substrate: the reduction from large-task SAP/UFPP to maximum-
// weight independent set of "anchored" rectangles, plus the smallest-last
// degeneracy coloring used in the (2k-1) analysis (Lemma 17) and an exact
// MWIS solver (the Theorem 7 substitute, see DESIGN.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {

class Arena;

/// R(j) = [s_j, t_j) x [b(j) - d_j, b(j)): the rectangle induced by placing
/// task j at its residual capacity l(j) = b(j) - d_j.
struct TaskRect {
  TaskId task = 0;
  EdgeId first = 0;   ///< first edge covered
  EdgeId last = 0;    ///< last edge covered (inclusive)
  Value bottom = 0;   ///< l(j)
  Value top = 0;      ///< b(j)
  Weight weight = 0;

  [[nodiscard]] bool intersects(const TaskRect& o) const noexcept {
    return first <= o.last && o.first <= last && bottom < o.top &&
           o.bottom < top;
  }
};

/// Builds R(j) for every task in `subset`.
[[nodiscard]] std::vector<TaskRect> task_rectangles(
    const PathInstance& inst, std::span<const TaskId> subset);

/// Builds the rectangles induced by an arbitrary SAP solution (each task at
/// its assigned height instead of its residual capacity).
[[nodiscard]] std::vector<TaskRect> solution_rectangles(
    const PathInstance& inst, const SapSolution& sol);

struct ColoringResult {
  std::vector<int> color;  ///< per rectangle, 0-based
  int num_colors = 0;
  int degeneracy = 0;      ///< max over the smallest-last elimination order
};

/// Smallest-last (Matula–Beck) greedy coloring of the rectangle
/// intersection graph; uses degeneracy+1 colors.
[[nodiscard]] ColoringResult smallest_last_coloring(
    std::span<const TaskRect> rects);

struct RectMwisOptions {
  std::size_t max_nodes = 5'000'000;
  /// Cooperative cancellation: expiry stops the search and the result is a
  /// typed timeout (`timed_out`, empty selection) — never the incumbent.
  Deadline deadline{};
  /// Bump allocator for the adjacency bitsets and search masks. nullptr
  /// uses the calling thread's arena; the footprint is recycled on return.
  Arena* arena = nullptr;
};

struct RectMwisResult {
  std::vector<std::size_t> chosen;  ///< indices into the rectangle span
  Weight weight = 0;
  bool proven_optimal = true;
  bool timed_out = false;  ///< deadline expired: `chosen` is empty
  std::size_t nodes = 0;
};

/// Exact maximum-weight independent set of the rectangle intersection graph
/// by branch-and-bound with a greedy clique-cover bound. Falls back to the
/// best incumbent (proven_optimal = false) if the node budget trips.
[[nodiscard]] RectMwisResult rectangle_mwis(std::span<const TaskRect> rects,
                                            const RectMwisOptions& options = {});

}  // namespace sap
