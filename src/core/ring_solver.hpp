// Section 7 / Theorem 5: the (10+eps)-approximation for SAP on rings.
//
// Cut the ring at a minimum-capacity edge e*. Every task has exactly one
// route avoiding e* (the two routes partition the cycle's edges); those
// form a path SAP instance solved by the Theorem 4 pipeline. Tasks routed
// through e* can all be stacked from height 0 — the cut edge has minimum
// capacity, so a knapsack with capacity c(e*) over all demands selects
// them (Lemma 18 uses the knapsack FPTAS). Return the heavier solution.
#pragma once

#include "src/core/params.hpp"
#include "src/model/ring_instance.hpp"

namespace sap {

enum class RingBranch { kPath, kThroughCut };

struct RingSolveReport {
  EdgeId cut_edge = 0;
  Weight path_weight = 0;
  Weight knapsack_weight = 0;
  RingBranch winner = RingBranch::kPath;
};

struct RingSolverParams {
  /// Parameters of the path pipeline. `path.deadline` also governs the ring
  /// solve as a whole (both branches check it; expiry throws
  /// DeadlineExceeded, never a partial solution).
  SolverParams path;
  // sapkit-lint: allow(float-ban) -- FPTAS accuracy knob; the knapsack
  // backend does its own exact bookkeeping in integers.
  double knapsack_eps = 0.1;  ///< FPTAS accuracy for the through-cut branch
};

/// The ring SAP approximation pipeline. Always returns a feasible solution.
[[nodiscard]] RingSapSolution solve_ring_sap(
    const RingInstance& inst, const RingSolverParams& params = {},
    RingSolveReport* report = nullptr);

}  // namespace sap
