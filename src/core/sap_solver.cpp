#include "src/core/sap_solver.hpp"

#include "src/util/telemetry.hpp"

namespace sap {

SapSolution solve_sap(const PathInstance& inst, const SolverParams& params,
                      SolveReport* report) {
  params.validate();
  ScopedTimer solve_timer("sap.solve");

  TaskClasses classes;
  {
    ScopedTimer timer("sap.classify");
    classes = classify_tasks(inst, params);
  }
  telemetry::count("sap.tasks.small",
                   static_cast<std::int64_t>(classes.small.size()));
  telemetry::count("sap.tasks.medium",
                   static_cast<std::int64_t>(classes.medium.size()));
  telemetry::count("sap.tasks.large",
                   static_cast<std::int64_t>(classes.large.size()));

  SmallTasksReport small_report;
  MediumTasksReport medium_report;
  LargeTasksReport large_report;
  SapSolution small_sol;
  SapSolution medium_sol;
  SapSolution large_sol;
  params.deadline.check();
  {
    ScopedTimer timer("sap.stage.small");
    small_sol = solve_small_tasks(inst, classes.small, params, &small_report);
  }
  params.deadline.check();
  {
    ScopedTimer timer("sap.stage.medium");
    medium_sol =
        solve_medium_tasks(inst, classes.medium, params, &medium_report);
  }
  params.deadline.check();
  {
    ScopedTimer timer("sap.stage.large");
    large_sol = solve_large_tasks(inst, classes.large, params, &large_report);
  }

  const Weight ws = small_sol.weight(inst);
  const Weight wm = medium_sol.weight(inst);
  const Weight wl = large_sol.weight(inst);

  SolverBranch winner = SolverBranch::kSmall;
  if (wm > ws || (wm == ws && wm > 0)) winner = SolverBranch::kMedium;
  if (wl > std::max(ws, wm)) winner = SolverBranch::kLarge;
  switch (winner) {
    case SolverBranch::kSmall:
      telemetry::count("sap.winner.small");
      break;
    case SolverBranch::kMedium:
      telemetry::count("sap.winner.medium");
      break;
    case SolverBranch::kLarge:
      telemetry::count("sap.winner.large");
      break;
  }

  if (report != nullptr) {
    report->num_small = classes.small.size();
    report->num_medium = classes.medium.size();
    report->num_large = classes.large.size();
    report->small_weight = ws;
    report->medium_weight = wm;
    report->large_weight = wl;
    report->winner = winner;
    report->small = std::move(small_report);
    report->medium = std::move(medium_report);
    report->large = std::move(large_report);
  }

  switch (winner) {
    case SolverBranch::kSmall:
      return small_sol;
    case SolverBranch::kMedium:
      return medium_sol;
    case SolverBranch::kLarge:
      return large_sol;
  }
  return small_sol;  // unreachable
}

}  // namespace sap
