// Theorem 4: the (9+eps)-approximation for general SAP on paths.
//
// Classify tasks as small / medium / large (k = 2, beta = 1/4), run the
// Section 4, 5 and 6 pipelines on their classes, and return the heaviest of
// the three solutions (Lemma 3: ratios 4+eps, 2+eps and 3 add up to 9+eps).
#pragma once

#include "src/core/classify.hpp"
#include "src/core/large_tasks.hpp"
#include "src/core/medium_tasks.hpp"
#include "src/core/params.hpp"
#include "src/core/small_tasks.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

enum class SolverBranch { kSmall, kMedium, kLarge };

struct SolveReport {
  std::size_t num_small = 0;
  std::size_t num_medium = 0;
  std::size_t num_large = 0;
  Weight small_weight = 0;
  Weight medium_weight = 0;
  Weight large_weight = 0;
  SolverBranch winner = SolverBranch::kSmall;
  SmallTasksReport small;
  MediumTasksReport medium;
  LargeTasksReport large;
};

/// The full SAP approximation pipeline. Always returns a feasible solution.
[[nodiscard]] SapSolution solve_sap(const PathInstance& inst,
                                    const SolverParams& params = {},
                                    SolveReport* report = nullptr);

}  // namespace sap
