#include "src/core/ring_solver.hpp"

#include <algorithm>
#include <vector>

#include "src/core/sap_solver.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/util/telemetry.hpp"

namespace sap {

RingSapSolution solve_ring_sap(const RingInstance& inst,
                               const RingSolverParams& params,
                               RingSolveReport* report) {
  ScopedTimer solve_timer("ring.solve");
  const EdgeId cut = inst.min_capacity_edge();
  const auto m = static_cast<int>(inst.num_edges());
  // Ring edge r maps to path edge (r - cut - 1) mod m in the cut-open path
  // of m-1 edges (the cut edge itself is removed).
  auto to_path_edge = [&](EdgeId r) {
    return static_cast<EdgeId>(((r - cut - 1) % m + m) % m);
  };

  // Branch 1: path SAP over the routes avoiding the cut edge.
  std::vector<Value> path_caps(static_cast<std::size_t>(m - 1));
  for (EdgeId r = 0; r < m; ++r) {
    if (r == cut) continue;
    path_caps[static_cast<std::size_t>(to_path_edge(r))] = inst.capacity(r);
  }
  std::vector<Task> path_tasks;
  std::vector<TaskId> path_back;       // path task -> ring task
  std::vector<bool> path_clockwise;    // the route that avoids the cut
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const auto id = static_cast<TaskId>(j);
    // Exactly one orientation avoids the cut edge.
    for (bool cw : {true, false}) {
      const std::vector<EdgeId> route = inst.route_edges(id, cw);
      if (std::ranges::find(route, cut) != route.end()) continue;
      EdgeId lo = static_cast<EdgeId>(m);
      EdgeId hi = -1;
      for (EdgeId r : route) {
        lo = std::min(lo, to_path_edge(r));
        hi = std::max(hi, to_path_edge(r));
      }
      const RingTask& t = inst.task(id);
      if (t.demand > inst.route_bottleneck(id, cw)) break;  // cannot fit
      path_tasks.push_back({lo, hi, t.demand, t.weight});
      path_back.push_back(id);
      path_clockwise.push_back(cw);
      break;
    }
  }
  RingSapSolution path_branch;
  Weight path_weight = 0;
  if (!path_tasks.empty()) {
    params.path.deadline.check();
    ScopedTimer timer("ring.stage.path");
    const PathInstance path(path_caps, path_tasks);
    const SapSolution sol = solve_sap(path, params.path);
    for (const Placement& p : sol.placements) {
      const auto idx = static_cast<std::size_t>(p.task);
      path_branch.placements.push_back(
          {path_back[idx], p.height, path_clockwise[idx]});
    }
    path_weight = inst.solution_weight(path_branch);
  }

  // Branch 2: all tasks routed through the cut edge, stacked from 0 — a
  // knapsack with capacity c(cut), the ring's minimum.
  std::vector<KnapsackItem> items;
  std::vector<TaskId> item_back;
  std::vector<bool> item_clockwise;
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const auto id = static_cast<TaskId>(j);
    const RingTask& t = inst.task(id);
    if (t.demand > inst.capacity(cut)) continue;
    for (bool cw : {true, false}) {
      const std::vector<EdgeId> route = inst.route_edges(id, cw);
      if (std::ranges::find(route, cut) == route.end()) continue;
      items.push_back({t.demand, t.weight});
      item_back.push_back(id);
      item_clockwise.push_back(cw);
      break;
    }
  }
  RingSapSolution cut_branch;
  {
    params.path.deadline.check();
    ScopedTimer timer("ring.stage.cut");
    const KnapsackResult picked =
        knapsack_fptas(items, inst.capacity(cut), params.knapsack_eps);
    Value stack = 0;
    for (std::size_t idx : picked.chosen) {
      cut_branch.placements.push_back(
          {item_back[idx], stack, item_clockwise[idx]});
      stack += items[idx].size;
    }
  }
  const Weight cut_weight = inst.solution_weight(cut_branch);

  telemetry::count(path_weight >= cut_weight ? "ring.winner.path"
                                             : "ring.winner.cut");
  if (report != nullptr) {
    report->cut_edge = cut;
    report->path_weight = path_weight;
    report->knapsack_weight = cut_weight;
    report->winner =
        path_weight >= cut_weight ? RingBranch::kPath : RingBranch::kThroughCut;
  }
  return path_weight >= cut_weight ? path_branch : cut_branch;
}

}  // namespace sap
