#include "src/util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace sap {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [next, done, first_error, error, error_mutex, count, &body] {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        if (!first_error->exchange(true)) {
          std::lock_guard lock(*error_mutex);
          *error = std::current_exception();
        }
      }
      done->fetch_add(1);
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.push(drain);
  }
  work_ready_.notify_all();
  drain();  // calling thread participates
  while (done->load() < count) std::this_thread::yield();
  if (first_error->load()) std::rethrow_exception(*error);
}

}  // namespace sap
