// Thread-safe bounded reservoir of recent latency samples with percentile
// snapshots, striped to keep recording cheap when many shards/workers report
// concurrently. Extracted from the sapd server (which used a single
// mutex+ring) so the sharded path records without a global hot lock and the
// whole structure is testable — and TSan-checkable — in isolation.
//
// Each stripe is an independent mutex-guarded ring; record() touches exactly
// one stripe chosen by the caller's hint (shard index), so recorders on
// different shards never contend. snapshot() locks the stripes one at a time
// — percentiles over a merged reservoir are approximate under concurrent
// writes, which is fine for an observability endpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sap {

class LatencyReservoir {
 public:
  struct Snapshot {
    std::size_t samples = 0;  ///< total ever recorded (not just retained)
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  /// `capacity` bounds the *total* retained samples across all stripes;
  /// each of the `stripes` rings holds capacity/stripes (min 1).
  explicit LatencyReservoir(std::size_t capacity = 4096,
                            std::size_t stripes = 1);

  LatencyReservoir(const LatencyReservoir&) = delete;
  LatencyReservoir& operator=(const LatencyReservoir&) = delete;

  /// Records one sample; `stripe_hint` picks the stripe (mod stripe count),
  /// so callers pass their shard index for contention-free recording.
  void record(double ms, std::size_t stripe_hint = 0);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<double> ring;
    std::size_t next = 0;
    std::uint64_t total = 0;
    double max_ms = 0.0;
  };

  std::size_t stripe_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace sap
