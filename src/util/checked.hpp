// Overflow-checked 64-bit arithmetic: the single blessed route for raw
// `+`/`*` on quantity-typed values (demands, capacities, heights, weights)
// in the exactness-critical directories. `sapkit_lint` (rule exact-arith)
// flags arithmetic on those quantities unless it goes through these helpers
// or widens to Int128 first; see docs/STATIC_ANALYSIS.md.
//
// All helpers return false (leaving *out unspecified) instead of wrapping,
// so an adversarial input yields a typed failure, never signed-overflow UB.
#pragma once

#include <cstdint>

#include "src/model/task.hpp"

namespace sap {

/// *out = a + b unless the sum overflows int64.
[[nodiscard]] inline bool checked_add(std::int64_t a, std::int64_t b,
                                      std::int64_t* out) noexcept {
  return !__builtin_add_overflow(a, b, out);
}

/// *out = a - b unless the difference overflows int64.
[[nodiscard]] inline bool checked_sub(std::int64_t a, std::int64_t b,
                                      std::int64_t* out) noexcept {
  return !__builtin_sub_overflow(a, b, out);
}

/// *out = a * b unless the product overflows int64.
[[nodiscard]] inline bool checked_mul(std::int64_t a, std::int64_t b,
                                      std::int64_t* out) noexcept {
  return !__builtin_mul_overflow(a, b, out);
}

/// 128-bit variants for certificate arithmetic (dual objectives multiply an
/// int64 price by an int64 capacity before summing over edges).
[[nodiscard]] inline bool checked_add(Int128 a, Int128 b,
                                      Int128* out) noexcept {
  return !__builtin_add_overflow(a, b, out);
}

[[nodiscard]] inline bool checked_mul(Int128 a, Int128 b,
                                      Int128* out) noexcept {
  return !__builtin_mul_overflow(a, b, out);
}

}  // namespace sap
