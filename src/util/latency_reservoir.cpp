#include "src/util/latency_reservoir.hpp"

#include <algorithm>

#include "src/util/stats.hpp"

namespace sap {

LatencyReservoir::LatencyReservoir(std::size_t capacity, std::size_t stripes) {
  const std::size_t count = std::max<std::size_t>(1, stripes);
  stripe_capacity_ = std::max<std::size_t>(1, capacity / count);
  stripes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    stripes_.back()->ring.reserve(stripe_capacity_);
  }
}

void LatencyReservoir::record(double ms, std::size_t stripe_hint) {
  Stripe& stripe = *stripes_[stripe_hint % stripes_.size()];
  std::lock_guard lock(stripe.mutex);
  if (stripe.ring.size() < stripe_capacity_) {
    stripe.ring.push_back(ms);
  } else {
    stripe.ring[stripe.next] = ms;
    stripe.next = (stripe.next + 1) % stripe_capacity_;
  }
  ++stripe.total;
  if (ms > stripe.max_ms) stripe.max_ms = ms;
}

LatencyReservoir::Snapshot LatencyReservoir::snapshot() const {
  Snapshot snap;
  std::vector<double> merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    merged.insert(merged.end(), stripe->ring.begin(), stripe->ring.end());
    snap.samples += stripe->total;
    if (stripe->max_ms > snap.max_ms) snap.max_ms = stripe->max_ms;
  }
  if (!merged.empty()) {
    snap.p50_ms = percentile(merged, 50.0);
    snap.p95_ms = percentile(merged, 95.0);
    snap.p99_ms = percentile(merged, 99.0);
  }
  return snap;
}

}  // namespace sap
