// Flat, arena-backed buffer and matrix types for the solver hot paths.
//
// Follows the unmanaged-core / managed-wrapper split (the LoopModels
// tableau pattern): the *View types are non-owning (pointer + dims +
// capacity) and are what inner loops traffic in; FlatBuf / FlatMat own
// their storage through an Arena and add growth. Capacity is tracked
// separately from size/dims, so a buffer grown once is resized and refilled
// many times without touching the allocator — the property that makes a
// warmed solve allocation-free.
//
// Only trivially-copyable element types are supported: growth is a memcpy
// and the arena never runs destructors. Old storage after growth is simply
// abandoned into the arena (reclaimed wholesale by the owner's
// reset/rewind), which is the bump-allocator trade: growth wastes bytes,
// steady state costs nothing.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

#include "src/util/arena.hpp"

namespace sap {

/// Non-owning vector-ish view: pointer, size, capacity. push_back asserts
/// capacity instead of growing — use FlatBuf when growth is needed.
template <typename T>
class BufView {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  BufView() = default;
  BufView(T* data, std::size_t size, std::size_t capacity) noexcept
      : data_(data), size_(size), capacity_(capacity) {}

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] T& back() noexcept {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  void clear() noexcept { size_ = 0; }

  /// Sets the size within the reserved capacity; contents of any newly
  /// exposed tail are unspecified (fill explicitly when it matters).
  void resize_within_capacity(std::size_t n) noexcept {
    assert(n <= capacity_);
    size_ = n;
  }

  void push_back(const T& v) noexcept {
    assert(size_ < capacity_);
    data_[size_++] = v;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

 protected:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Arena-owned growable buffer. Growth doubles capacity (at least) via a
/// fresh arena block + memcpy; the abandoned block returns to the arena at
/// the owner's reset/rewind.
template <typename T>
class FlatBuf : public BufView<T> {
 public:
  explicit FlatBuf(Arena& arena, std::size_t initial_capacity = 0)
      : arena_(&arena) {
    if (initial_capacity > 0) reserve(initial_capacity);
  }

  void reserve(std::size_t n) {
    if (n <= this->capacity_) return;
    T* grown = arena_->alloc_array<T>(n);
    if (this->size_ > 0) {
      std::memcpy(grown, this->data_, this->size_ * sizeof(T));
    }
    this->data_ = grown;
    this->capacity_ = n;
  }

  /// Grows (unspecified tail) or shrinks to exactly `n` elements.
  void resize(std::size_t n) {
    reserve(n);
    this->size_ = n;
  }

  /// Grows to `n` elements, zero-filling any newly exposed tail.
  void resize_zeroed(std::size_t n) {
    reserve(n);
    if (n > this->size_) {
      std::memset(this->data_ + this->size_, 0,
                  (n - this->size_) * sizeof(T));
    }
    this->size_ = n;
  }

  void push_back(const T& v) {
    if (this->size_ == this->capacity_) {
      reserve(this->capacity_ == 0 ? kFirstCapacity : this->capacity_ * 2);
    }
    this->data_[this->size_++] = v;
  }

  /// Appends `n` elements copied from `src` (which may not alias this
  /// buffer's live range).
  void append(const T* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t need = this->size_ + n;
    if (need > this->capacity_) {
      std::size_t cap =
          this->capacity_ == 0 ? kFirstCapacity : this->capacity_;
      while (cap < need) cap *= 2;
      reserve(cap);
    }
    std::memcpy(this->data_ + this->size_, src, n * sizeof(T));
    this->size_ = need;
  }

  [[nodiscard]] BufView<T> view() noexcept { return *this; }

 private:
  static constexpr std::size_t kFirstCapacity = 8;

  Arena* arena_;
};

/// Non-owning row-major matrix view with a row stride >= cols, so a matrix
/// reserved wide can shrink/grow its column count in place (the simplex
/// tableau adds artificial columns without reallocating).
template <typename T>
class MatView {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  MatView() = default;
  MatView(T* data, std::size_t rows, std::size_t cols,
          std::size_t stride) noexcept
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    assert(cols <= stride);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r,
                                    std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Row `r` as a span of the *logical* width (cols, not stride).
  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_ + r * stride_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_ + r * stride_, cols_};
  }

 protected:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Arena-owned matrix: dims are split from the reserved footprint
/// (row_capacity x stride), so reshaping within the reservation is free.
template <typename T>
class FlatMat : public MatView<T> {
 public:
  explicit FlatMat(Arena& arena) : arena_(&arena) {}

  /// Ensures a footprint of at least `rows` x `cols` and sets the logical
  /// dims. Newly reserved storage is zero-filled; surviving elements keep
  /// their values only when the stride is unchanged (reshape within a
  /// reservation), which is the only in-place pattern the solver uses —
  /// otherwise start from the zeroed state.
  void reshape_zeroed(std::size_t rows, std::size_t cols) {
    if (rows > row_capacity_ || cols > this->stride_) {
      const std::size_t new_stride =
          cols > this->stride_ ? grow(cols) : this->stride_;
      const std::size_t new_rows =
          rows > row_capacity_ ? grow(rows) : row_capacity_;
      T* data = arena_->alloc_array<T>(new_rows * new_stride);
      std::memset(data, 0, new_rows * new_stride * sizeof(T));
      this->data_ = data;
      this->stride_ = new_stride;
      row_capacity_ = new_rows;
    }
    this->rows_ = rows;
    this->cols_ = cols;
  }

  /// Zero-fills the logical rows x stride region (fresh-tableau state
  /// without touching the allocator).
  void fill_zero() noexcept {
    if (this->rows_ > 0) {
      std::memset(this->data_, 0, this->rows_ * this->stride_ * sizeof(T));
    }
  }

  [[nodiscard]] std::size_t row_capacity() const noexcept {
    return row_capacity_;
  }

  [[nodiscard]] MatView<T> view() noexcept { return *this; }

 private:
  static std::size_t grow(std::size_t need) noexcept {
    std::size_t cap = 8;
    while (cap < need) cap *= 2;
    return cap;
  }

  Arena* arena_;
  std::size_t row_capacity_ = 0;
};

}  // namespace sap
