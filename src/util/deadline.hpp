// Per-solve resource governor: monotonic deadlines with cooperative,
// allocation-free cancellation.
//
// A `Deadline` is a value type wrapping a steady_clock time point (or
// "unlimited"). Long-running stages accept one through their options structs
// and poll it cooperatively at loop granularity; a stage that runs out of
// budget returns a typed timeout outcome (a `timed_out` flag, an
// `LpStatus::kTimeout`, or a thrown `DeadlineExceeded`) and never a partial
// answer. `DeadlineGate` amortizes the clock read for hot loops: it touches
// the clock once per `stride` calls and latches once expired, so the common
// path is a decrement and a branch.
//
// Determinism contract: a deadline never changes *what* a stage computes,
// only *whether* it finishes. Either branch is deterministic — the full
// answer, or the typed timeout — which is why this is the one file in the
// deterministic tree allowed to read the monotonic clock (sapkit-lint pins
// every other use).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sap {

/// Typed timeout outcome for APIs that return a solution directly (solve_sap,
/// sap_brute_force): thrown instead of returning a partial answer.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed deadlines are unlimited: expired() is always false
  /// and every check compiles down to one branch on `enabled_`.
  constexpr Deadline() noexcept = default;

  [[nodiscard]] static Deadline at(Clock::time_point when) noexcept {
    Deadline d;
    d.enabled_ = true;
    d.when_ = when;
    return d;
  }

  [[nodiscard]] static Deadline after(Clock::duration budget) {
    return at(Clock::now() + budget);
  }

  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] static constexpr Deadline unlimited() noexcept {
    return Deadline{};
  }

  [[nodiscard]] constexpr bool has_deadline() const noexcept {
    return enabled_;
  }

  [[nodiscard]] bool expired() const {
    return enabled_ && Clock::now() >= when_;
  }

  /// Time left, saturating at zero. Unlimited deadlines report the maximum
  /// representable duration.
  [[nodiscard]] Clock::duration remaining() const {
    if (!enabled_) return Clock::duration::max();
    const auto left = when_ - Clock::now();
    return left > Clock::duration::zero() ? left : Clock::duration::zero();
  }

  [[nodiscard]] std::int64_t remaining_ms() const {
    if (!enabled_) return std::numeric_limits<std::int64_t>::max();
    return std::chrono::duration_cast<std::chrono::milliseconds>(remaining())
        .count();
  }

  [[nodiscard]] Clock::time_point when() const noexcept { return when_; }

  /// The earlier of the two deadlines: used to slice a request budget across
  /// ladder rungs without ever extending the outer deadline.
  [[nodiscard]] Deadline min(Deadline other) const noexcept {
    if (!enabled_) return other;
    if (!other.enabled_) return *this;
    return at(std::min(when_, other.when_));
  }

  /// Throws DeadlineExceeded when expired; for exception-style callers.
  void check() const {
    if (expired()) throw DeadlineExceeded();
  }

 private:
  bool enabled_ = false;
  Clock::time_point when_{};
};

/// Amortized deadline poll for hot loops. Calling expired() decrements a
/// counter; the clock is read only every `stride` calls (and on the first),
/// after which the result latches. Allocation-free and cheap enough for
/// per-node / per-state / per-iteration placement.
class DeadlineGate {
 public:
  static constexpr std::uint32_t kDefaultStride = 1024;

  explicit DeadlineGate(Deadline deadline,
                        std::uint32_t stride = kDefaultStride) noexcept
      : deadline_(deadline), stride_(stride > 0 ? stride : 1) {}

  /// True once the underlying deadline has passed (checked at most once per
  /// `stride` calls, then latched).
  [[nodiscard]] bool expired() {
    if (latched_) return true;
    if (!deadline_.has_deadline()) return false;
    if (countdown_ > 0) {
      --countdown_;
      return false;
    }
    countdown_ = stride_ - 1;
    latched_ = deadline_.expired();
    return latched_;
  }

  /// Throws DeadlineExceeded on expiry; same amortization as expired().
  void check() {
    if (expired()) throw DeadlineExceeded();
  }

  [[nodiscard]] Deadline deadline() const noexcept { return deadline_; }

 private:
  Deadline deadline_;
  std::uint32_t stride_;
  std::uint32_t countdown_ = 0;  ///< first call always reads the clock
  bool latched_ = false;
};

}  // namespace sap
