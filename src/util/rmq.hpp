// Sparse-table range-minimum queries over a static array.
//
// The path model uses this to answer bottleneck queries b(j) = min_{e in I_j}
// c_e in O(1) after O(m log m) preprocessing, which every classification and
// rectangle-reduction step in the SAP pipeline depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sap {

/// Static range-minimum structure: O(n log n) build, O(1) query.
///
/// Queries return the minimum *value*; `argmin` returns the left-most index
/// attaining it. Both operate on closed ranges [lo, hi].
class RangeMin {
 public:
  RangeMin() = default;

  /// Builds the table over a snapshot of `values`.
  explicit RangeMin(std::span<const std::int64_t> values);

  /// Minimum value over the closed index range [lo, hi]. Requires lo <= hi
  /// and hi < size().
  [[nodiscard]] std::int64_t min(std::size_t lo, std::size_t hi) const;

  /// Left-most index attaining min(lo, hi).
  [[nodiscard]] std::size_t argmin(std::size_t lo, std::size_t hi) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  // table_[k][i] = index of the minimum in [i, i + 2^k - 1]; ties to the left.
  std::vector<std::vector<std::uint32_t>> table_;
  std::vector<std::int64_t> values_;
  std::size_t size_ = 0;
};

}  // namespace sap
