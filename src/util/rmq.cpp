#include "src/util/rmq.hpp"

#include <bit>
#include <cassert>

namespace sap {

RangeMin::RangeMin(std::span<const std::int64_t> values)
    : values_(values.begin(), values.end()), size_(values.size()) {
  if (size_ == 0) return;
  const auto levels =
      static_cast<std::size_t>(std::bit_width(size_));  // >= 1
  table_.resize(levels);
  table_[0].resize(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    table_[0][i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::size_t width = half << 1;
    table_[k].resize(size_ - width + 1);
    for (std::size_t i = 0; i + width <= size_; ++i) {
      const std::uint32_t left = table_[k - 1][i];
      const std::uint32_t right = table_[k - 1][i + half];
      table_[k][i] = values_[left] <= values_[right] ? left : right;
    }
  }
}

std::size_t RangeMin::argmin(std::size_t lo, std::size_t hi) const {
  assert(lo <= hi && hi < size_);
  const std::size_t span_len = hi - lo + 1;
  const auto k = static_cast<std::size_t>(std::bit_width(span_len)) - 1;
  const std::uint32_t left = table_[k][lo];
  const std::uint32_t right = table_[k][hi + 1 - (std::size_t{1} << k)];
  if (values_[left] <= values_[right]) return left;
  return right;
}

std::int64_t RangeMin::min(std::size_t lo, std::size_t hi) const {
  return values_[argmin(lo, hi)];
}

}  // namespace sap
