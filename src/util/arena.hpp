// Bump ("arena") allocation for the solver hot paths.
//
// A solve that builds millions of short-lived DP states, tableau rows and
// branch-and-bound scratch vectors spends a measurable share of its time in
// the general-purpose heap. The Arena replaces that churn with pointer-bump
// allocation out of a small list of large chunks: an allocation is a bump
// and an occasional chunk acquisition, a whole solve's worth of scratch is
// released with one reset(), and a warmed arena (after the first solve on a
// thread) performs ZERO heap allocations — the property the telemetry
// counters below exist to assert.
//
// Memory model
//  - Chunks form a singly-linked stack; allocation bumps the top chunk.
//  - mark()/rewind(mark) pop back to a saved position; popped chunks move
//    to a spare list for reuse, they are not freed (so nested scopes --
//    branch-and-bound nodes, per-edge DP frontiers -- stay heap-free).
//  - reset() rewinds everything and keeps only the largest spare chunk (the
//    high-water chunk), so steady-state reuse needs no heap traffic while a
//    one-off giant solve does not pin its peak footprint forever.
//  - Arena does not run destructors: only trivially destructible types may
//    live in it (alloc_array enforces this at compile time).
//
// Thread model: an Arena is single-threaded by design (no locks). Use
// thread_arena() for a per-thread instance; distinct threads then bump
// distinct arenas and never race, which is what the TSan-labeled test
// exercises.
//
// Telemetry (rare events only -- nothing on the bump path):
//  - alloc.arena.chunks       heap chunk acquisitions (malloc calls)
//  - alloc.arena.chunk_bytes  bytes obtained from the heap
//  - alloc.arena.reuse        chunks served from the spare list instead
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>

#include "src/util/checked.hpp"
#include "src/util/telemetry.hpp"

namespace sap {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 26;

  /// Position snapshot for rewind(); treat as opaque.
  struct Mark {
    void* chunk = nullptr;
    std::size_t used = 0;
  };

  Arena() = default;
  explicit Arena(std::size_t first_chunk_bytes)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes
                              ? kMinChunkBytes
                              : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    free_list(top_);
    free_list(spare_);
  }

  /// Raw bump allocation. `align` must be a power of two no greater than
  /// alignof(std::max_align_t). Never returns nullptr; throws
  /// std::bad_alloc when the size arithmetic would overflow or the heap is
  /// exhausted.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    ChunkHeader* chunk = top_;
    if (chunk != nullptr) {
      const std::size_t aligned = align_up(chunk->used, align);
      if (aligned <= chunk->capacity && bytes <= chunk->capacity - aligned) {
        chunk->used = aligned + bytes;
        return payload(chunk) + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Uninitialized array of `n` trivially-destructible elements. (The arena
  /// never runs destructors, so anything else would leak resources.)
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    std::int64_t bytes = 0;
    if (n > kMaxArrayElems ||
        !checked_mul(static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(sizeof(T)), &bytes)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        allocate(static_cast<std::size_t>(bytes), alignof(T)));
  }

  /// Current position; pass to rewind() to release everything allocated
  /// after this call (memory is recycled, not freed).
  [[nodiscard]] Mark mark() const noexcept {
    return {top_, top_ != nullptr ? top_->used : 0};
  }

  /// Pops back to `m`. Chunks acquired since the mark move to the spare
  /// list for reuse. The mark must come from this arena and still be live
  /// (LIFO discipline; rewinding to a stale mark is undefined).
  void rewind(const Mark& m) noexcept {
    auto* target = static_cast<ChunkHeader*>(m.chunk);
    while (top_ != target) {
      ChunkHeader* popped = top_;
      top_ = popped->prev;
      popped->used = 0;
      popped->prev = spare_;
      spare_ = popped;
    }
    if (top_ != nullptr) top_->used = m.used;
  }

  /// Releases the whole arena for reuse, retaining only the largest chunk
  /// (the high-water chunk) so the next solve of similar size allocates
  /// nothing from the heap.
  void reset() noexcept {
    rewind(Mark{});
    ChunkHeader* best = nullptr;
    ChunkHeader* it = spare_;
    while (it != nullptr) {
      if (best == nullptr || it->capacity > best->capacity) best = it;
      it = it->prev;
    }
    ChunkHeader* keep = nullptr;
    while (spare_ != nullptr) {
      ChunkHeader* next = spare_->prev;
      if (spare_ == best) {
        spare_->prev = nullptr;
        keep = spare_;
      } else {
        bytes_reserved_ -= spare_->capacity;
        std::free(spare_);
      }
      spare_ = next;
    }
    spare_ = keep;
  }

  /// Bytes currently obtained from the heap (live + spare chunks).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }

  /// Bytes handed out since the last reset/rewind-to-empty (alignment
  /// padding included).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t used = 0;
    for (const ChunkHeader* c = top_; c != nullptr; c = c->prev) {
      used += c->used;
    }
    return used;
  }

  /// Lifetime count of heap chunk acquisitions (the arena's only heap
  /// traffic); flat after warmup on a steady workload.
  [[nodiscard]] std::int64_t chunk_allocations() const noexcept {
    return chunk_allocations_;
  }

 private:
  static constexpr std::size_t kMinChunkBytes = std::size_t{1} << 12;
  static constexpr std::size_t kMaxArrayElems = std::size_t{1} << 48;

  struct ChunkHeader {
    ChunkHeader* prev;
    std::size_t capacity;  ///< payload bytes
    std::size_t used;      ///< payload bytes handed out
  };

  static constexpr std::size_t align_up(std::size_t v,
                                        std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  static char* payload(ChunkHeader* chunk) noexcept {
    return reinterpret_cast<char*>(chunk) + kHeaderBytes;
  }

  static constexpr std::size_t kHeaderBytes =
      (sizeof(ChunkHeader) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);

  [[noreturn]] static void throw_bad_alloc() { throw std::bad_alloc(); }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // A fresh chunk's payload is max_align_t-aligned, so only the size must
    // account for `align` worth of slack.
    std::size_t need = bytes;
    if (align > alignof(std::max_align_t)) throw_bad_alloc();

    // Reuse a spare chunk when one fits (LIFO scan; the list is short).
    ChunkHeader** link = &spare_;
    while (*link != nullptr) {
      if ((*link)->capacity >= need) {
        ChunkHeader* chunk = *link;
        *link = chunk->prev;
        chunk->prev = top_;
        chunk->used = bytes;
        top_ = chunk;
        telemetry::count("alloc.arena.reuse");
        return payload(chunk);
      }
      link = &(*link)->prev;
    }

    // Geometric growth, clamped: each heap trip at least doubles the next
    // chunk so chunk count stays logarithmic in total footprint.
    std::size_t cap = next_chunk_bytes_;
    if (cap < need) cap = align_up(need, kMinChunkBytes);
    std::int64_t total = 0;
    if (cap > static_cast<std::size_t>(INT64_MAX) ||
        !checked_add(static_cast<std::int64_t>(cap),
                     static_cast<std::int64_t>(kHeaderBytes), &total)) {
      throw_bad_alloc();
    }
    auto* chunk = static_cast<ChunkHeader*>(
        std::malloc(static_cast<std::size_t>(total)));
    if (chunk == nullptr) throw_bad_alloc();
    chunk->prev = top_;
    chunk->capacity = cap;
    chunk->used = bytes;
    top_ = chunk;
    bytes_reserved_ += cap;
    ++chunk_allocations_;
    telemetry::count("alloc.arena.chunks");
    telemetry::count("alloc.arena.chunk_bytes",
                     static_cast<std::int64_t>(cap));
    if (next_chunk_bytes_ < kMaxChunkBytes) {
      next_chunk_bytes_ =
          cap >= kMaxChunkBytes / 2 ? kMaxChunkBytes : cap * 2;
    }
    return payload(chunk);
  }

  void free_list(ChunkHeader* head) noexcept {
    while (head != nullptr) {
      ChunkHeader* prev = head->prev;
      std::free(head);
      head = prev;
    }
  }

  ChunkHeader* top_ = nullptr;    ///< chunk stack currently bumped into
  ChunkHeader* spare_ = nullptr;  ///< rewound chunks kept for reuse
  std::size_t next_chunk_bytes_ = kDefaultChunkBytes;
  std::size_t bytes_reserved_ = 0;
  std::int64_t chunk_allocations_ = 0;
};

/// The calling thread's arena. Solver entry points default to this (reset
/// between solves); tests may construct private arenas instead.
[[nodiscard]] inline Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

/// RAII mark/rewind: everything the protected scope allocates from `arena`
/// is recycled on scope exit. Scopes must nest (LIFO), which the stack
/// discipline of C++ scopes gives for free.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) noexcept
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace sap
