// Minimal fixed-size thread pool used by the benchmark harness to run
// parameter sweeps in parallel (shared-memory fork/join, OpenMP-style).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sap {

/// Fixed worker pool with a fork/join `parallel_for`. Exceptions thrown by
/// loop bodies are rethrown on the calling thread (first one wins).
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. The calling thread participates.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace sap
