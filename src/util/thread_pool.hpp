// Minimal fixed-size thread pool with two entry points: a fork/join
// `parallel_for` used by the benchmark harness for parameter sweeps, and a
// fire-and-forget `submit` used by the sapd service to fan requests out to
// solver workers. Both share the same worker threads and FIFO task queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sap {

/// Fixed worker pool with a fork/join `parallel_for`. Exceptions thrown by
/// loop bodies are rethrown on the calling thread (first one wins).
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. The calling thread participates.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Enqueues one task for asynchronous execution and returns immediately.
  /// The task must not throw (an escaping exception terminates the worker);
  /// callers that need completion or error signalling build it into the
  /// task. Destroying the pool runs every task already submitted.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace sap
