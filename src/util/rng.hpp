// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library (instance generators, randomized
// LP rounding) draws from this engine so experiments are reproducible from a
// single seed recorded in the bench output.
#pragma once

#include <cstdint>
#include <limits>

namespace sap {

/// xoshiro256** with splitmix64 seeding. Satisfies
/// std::uniform_random_bit_generator, so it plugs into <random>
/// distributions, but the helpers below avoid libstdc++ distribution
/// non-portability for anything the benches must reproduce bit-exactly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Forks an independent stream; children of distinct fork calls on the same
  /// parent are decorrelated.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace sap
