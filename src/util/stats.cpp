#include "src/util/stats.hpp"

#include <algorithm>

namespace sap {

void Summary::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::ranges::sort(values);
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace sap
