// Streaming summary statistics for ratio measurements in the bench harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace sap {

/// Welford-style accumulator: mean/variance/min/max over a stream of doubles.
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another summary into this one (parallel-reduction friendly).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile of `values` (p in [0, 100]) by linear interpolation
/// between order statistics; NaN on an empty sample. Sorts a copy, so the
/// caller's order (e.g. the batch harness's instance order) is untouched.
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace sap
