#include "src/util/rng.hpp"

#include <bit>

namespace sap {
namespace {

__extension__ typedef unsigned __int128 Uint128;

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire rejection sampling: unbiased and deterministic across platforms.
  std::uint64_t x = (*this)();
  Uint128 m = static_cast<Uint128>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<Uint128>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace sap
