#include "src/util/telemetry.hpp"

#include <cmath>
#include <ostream>

namespace sap {
namespace {

thread_local TelemetryReport* g_sink = nullptr;

/// Minimal JSON string escape; telemetry names are plain identifiers, but a
/// correct writer costs little.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void write_indent(std::ostream& os, int spaces) {
  for (int i = 0; i < spaces; ++i) os << ' ';
}

}  // namespace

void TelemetryReport::add_count(std::string_view name, std::int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void TelemetryReport::add_time(std::string_view name, std::int64_t entries,
                               double seconds) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    timers_.emplace(std::string(name), TimerStat{entries, seconds});
  } else {
    it->second.count += entries;
    it->second.seconds += seconds;
  }
}

void TelemetryReport::merge(const TelemetryReport& other) {
  for (const auto& [name, value] : other.counters_) add_count(name, value);
  for (const auto& [name, stat] : other.timers_) {
    add_time(name, stat.count, stat.seconds);
  }
}

void TelemetryReport::drop_counters_with_prefix(std::string_view prefix) {
  for (auto it = counters_.lower_bound(prefix); it != counters_.end();) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) break;
    it = counters_.erase(it);
  }
}

std::int64_t TelemetryReport::count(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

TimerStat TelemetryReport::timer(std::string_view name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void TelemetryReport::clear() {
  counters_.clear();
  timers_.clear();
}

void TelemetryReport::write_json(std::ostream& os, bool include_timers,
                                 int indent) const {
  os << "{\n";
  write_indent(os, indent + 2);
  os << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n");
    first = false;
    write_indent(os, indent + 4);
    write_json_string(os, name);
    os << ": " << value;
  }
  if (!first) {
    os << "\n";
    write_indent(os, indent + 2);
  }
  os << "}";
  if (include_timers) {
    os << ",\n";
    write_indent(os, indent + 2);
    os << "\"timers\": {";
    first = true;
    for (const auto& [name, stat] : timers_) {
      os << (first ? "\n" : ",\n");
      first = false;
      write_indent(os, indent + 4);
      write_json_string(os, name);
      const double seconds = std::isfinite(stat.seconds) ? stat.seconds : 0.0;
      os << ": {\"count\": " << stat.count << ", \"seconds\": " << seconds
         << "}";
    }
    if (!first) {
      os << "\n";
      write_indent(os, indent + 2);
    }
    os << "}";
  }
  os << "\n";
  write_indent(os, indent);
  os << "}";
}

namespace telemetry {

TelemetryReport* sink() noexcept { return g_sink; }

void count(std::string_view name, std::int64_t delta) {
  if (g_sink != nullptr) g_sink->add_count(name, delta);
}

}  // namespace telemetry

TelemetrySession::TelemetrySession(TelemetryReport* report) noexcept
    : previous_(g_sink) {
  g_sink = report;
}

TelemetrySession::~TelemetrySession() { g_sink = previous_; }

// sapkit-lint: begin-allow(determinism) -- ScopedTimer reads the monotonic
// clock to fill timer telemetry, which is declared nondeterministic and is
// excluded from deterministic (counters-only) reports.
ScopedTimer::ScopedTimer(const char* name) noexcept
    : name_(name), sink_(g_sink) {
  if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (sink_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  sink_->add_time(name_, 1,
                  std::chrono::duration<double>(elapsed).count());
}
// sapkit-lint: end-allow(determinism)

}  // namespace sap
