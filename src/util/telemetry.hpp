// Solver telemetry: named counters and RAII scoped wall timers feeding a
// per-solve TelemetryReport, with near-zero cost when no collector is
// installed.
//
// Collection model: a TelemetrySession installs a report as the *calling
// thread's* sink. Instrumentation points (telemetry::count, ScopedTimer)
// write to that thread-local sink, so concurrent solves on different threads
// collect into disjoint reports without locking — this is what makes the
// counters safe under the batch harness's ThreadPool. When no session is
// active, every instrumentation point reduces to one thread-local pointer
// load and a predictable branch, so always-on instrumentation in the hot
// solver paths costs nothing measurable (acceptance budget: < 2% on
// bench_full_solver).
//
// Determinism contract: counter values and timer *entry counts* depend only
// on the instrumented computation, never on wall time or scheduling; timer
// *seconds* are inherently nondeterministic. TelemetryReport::write_json
// therefore exposes a counters-only mode that the batch harness uses for
// byte-identical reports across thread counts. Exception: the `alloc.`
// counters (arena slow paths, src/util/arena.hpp) depend on the executing
// thread's arena warmth; deterministic consumers drop them via
// drop_counters_with_prefix("alloc.").
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace sap {

/// Accumulated state of one named timer: scope entries and total seconds.
struct TimerStat {
  std::int64_t count = 0;
  double seconds = 0.0;
};

/// The telemetry collected over one scope (typically one solve): ordered
/// name -> value maps so iteration, merging and JSON output are
/// deterministic. Plain value type; one writer at a time (the session's
/// thread), aggregation via merge() after joining.
class TelemetryReport {
 public:
  void add_count(std::string_view name, std::int64_t delta);
  void add_time(std::string_view name, std::int64_t entries, double seconds);

  /// Adds every counter and timer of `other` into this report.
  void merge(const TelemetryReport& other);

  /// Removes every counter whose name starts with `prefix`. The batch
  /// harness uses this to drop the allocator counters (`alloc.`): they
  /// record whether the *executing thread's* arena was already warm — a
  /// scheduling fact, not a property of the case — and so are exempt from
  /// the determinism contract below.
  void drop_counters_with_prefix(std::string_view prefix);

  /// Value of a counter (0 when never touched).
  [[nodiscard]] std::int64_t count(std::string_view name) const;
  /// State of a timer ({0, 0.0} when never entered).
  [[nodiscard]] TimerStat timer(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>&
  counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, TimerStat, std::less<>>& timers()
      const noexcept {
    return timers_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && timers_.empty();
  }
  void clear();

  /// Writes {"counters": {...}, "timers": {...}} with keys in sorted order.
  /// With include_timers = false only the (deterministic) counters object is
  /// emitted. `indent` spaces prefix every line when > 0.
  void write_json(std::ostream& os, bool include_timers = true,
                  int indent = 0) const;

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

namespace telemetry {

/// The calling thread's active sink, or nullptr when collection is off.
[[nodiscard]] TelemetryReport* sink() noexcept;

/// True when the calling thread has an active TelemetrySession.
[[nodiscard]] inline bool enabled() noexcept { return sink() != nullptr; }

/// Adds `delta` to the named counter of the active sink; no-op when
/// collection is off.
void count(std::string_view name, std::int64_t delta = 1);

}  // namespace telemetry

/// RAII collection scope: installs `report` as the calling thread's sink and
/// restores the previous sink on destruction, so sessions nest (an outer
/// aggregate session is shadowed, not corrupted, by an inner per-solve one).
class TelemetrySession {
 public:
  explicit TelemetrySession(TelemetryReport* report) noexcept;
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

 private:
  TelemetryReport* previous_;
};

/// RAII wall timer: charges the elapsed time between construction and
/// destruction to `name` on the sink captured at construction. When no
/// session is active at construction both ends are no-ops (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  TelemetryReport* sink_;
  // sapkit-lint: allow(determinism) -- timer start point for telemetry
  // only; timings are declared nondeterministic.
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sap
