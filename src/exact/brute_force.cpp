#include "src/exact/brute_force.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace sap {
namespace {

struct BruteSearcher {
  const PathInstance& inst;
  std::vector<TaskId> order;
  std::vector<Weight> suffix;
  std::vector<Placement> current;
  std::vector<Placement> best;
  Weight current_weight = 0;
  Weight best_weight = -1;
  DeadlineGate gate;

  BruteSearcher(const PathInstance& instance, std::span<const TaskId> subset,
                Deadline deadline)
      : inst(instance), order(subset.begin(), subset.end()), gate(deadline) {
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i = order.size(); i-- > 0;) {
      // sapkit-lint: allow(exact-arith) -- suffix sums of task weights; the
      // PathInstance constructor proved the full sum fits in int64.
      suffix[i] = suffix[i + 1] + inst.task(order[i]).weight;
    }
  }

  [[nodiscard]] bool placeable(const Task& t, Value h) const {
    for (const Placement& p : current) {
      const Task& other = inst.task(p.task);
      if (!t.overlaps(other)) continue;
      // sapkit-lint: begin-allow(exact-arith) -- candidate and settled
      // heights satisfy h <= b(j) - d, so h + d <= b(j) <= 2^62 is exact.
      const Value other_top = p.height + other.demand;
      if (h < other_top && p.height < h + t.demand) return false;
      // sapkit-lint: end-allow(exact-arith)
    }
    return true;
  }

  void dfs(std::size_t i) {
    gate.check();  // throws DeadlineExceeded; amortized clock read
    if (current_weight > best_weight) {
      best_weight = current_weight;
      best = current;
    }
    if (i == order.size()) return;
    if (static_cast<Int128>(current_weight) + suffix[i] <= best_weight) return;
    const TaskId j = order[i];
    const Task& t = inst.task(j);
    const Value top_limit = inst.bottleneck(j) - t.demand;
    for (Value h = 0; h <= top_limit; ++h) {
      if (!placeable(t, h)) continue;
      current.push_back({j, h});
      // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
      // PathInstance constructor proved the full sum fits in int64.
      current_weight += t.weight;
      dfs(i + 1);
      current_weight -= t.weight;
      current.pop_back();
    }
    dfs(i + 1);  // skip j
  }
};

}  // namespace

SapSolution sap_brute_force(const PathInstance& inst,
                            std::span<const TaskId> subset,
                            const SapBruteForceOptions& options) {
  if (subset.size() > options.max_tasks) {
    throw std::invalid_argument("sap_brute_force: too many tasks");
  }
  if (inst.max_capacity() > options.max_capacity) {
    throw std::invalid_argument("sap_brute_force: capacities too large");
  }
  BruteSearcher searcher(inst, subset, options.deadline);
  searcher.dfs(0);
  return SapSolution{std::move(searcher.best)};
}

SapSolution sap_brute_force(const PathInstance& inst,
                            const SapBruteForceOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return sap_brute_force(inst, all, options);
}

}  // namespace sap
