// A second, independent exact UFPP oracle: edge-sweep DP over "active
// selection profiles" (which selected tasks are alive, reduced to their
// (demand, last-edge) signature). Cross-checks the branch-and-bound of
// src/ufpp/branch_and_bound.hpp in the test suite; exponential in the
// per-edge crossing count, pseudo-independent of weights and capacities.
#pragma once

#include <cstddef>
#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

class Arena;

struct UfppProfileDpOptions {
  /// Beam cap on live states per edge; exceeding it truncates to the best
  /// states and clears `proven_optimal`.
  std::size_t max_states = 500'000;
  /// Bump allocator for the sweep's state pools. nullptr uses the calling
  /// thread's arena; either way the solve's footprint is recycled on return.
  Arena* arena = nullptr;
};

struct UfppProfileDpResult {
  UfppSolution solution;
  Weight weight = 0;
  bool proven_optimal = true;
  std::size_t peak_states = 0;
};

[[nodiscard]] UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, std::span<const TaskId> subset,
    const UfppProfileDpOptions& options = {});

[[nodiscard]] UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, const UfppProfileDpOptions& options = {});

}  // namespace sap
