#include "src/exact/ufpp_profile_dp.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/flat.hpp"

namespace sap {
namespace {

/// One selected task alive at the current edge, reduced to what future
/// feasibility depends on. The explicit zero padding keeps whole-profile
/// equality a memcmp (same layout trick as exact/profile_dp.cpp's Slot).
struct ActiveRec {
  Value demand;
  EdgeId last;
  EdgeId pad = 0;

  friend bool operator<(const ActiveRec& a, const ActiveRec& b) noexcept {
    if (a.demand != b.demand) return a.demand < b.demand;
    return a.last < b.last;
  }
};
static_assert(sizeof(ActiveRec) == 16);  // no hidden padding left for memcmp

/// Flat state record: spans into the profile/selection pools plus the DP
/// payload. Offsets stay valid across pool growth.
struct UfppStateRec {
  std::size_t active_off = 0;
  std::size_t added_off = 0;
  std::uint32_t active_len = 0;
  std::uint32_t added_len = 0;
  Value load = 0;
  Weight weight = 0;
  std::int32_t parent = -1;
};

std::uint64_t hash_profile(const ActiveRec* active, std::size_t n) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < n; ++i) {
    mix(static_cast<std::uint64_t>(active[i].demand));
    mix(static_cast<std::uint64_t>(active[i].last));
  }
  return h;
}

/// Open-addressing profile-hash -> state-id table (linear probing, arena
/// storage, cleared per edge). Like the unordered_map it replaces it is
/// lookup-only — never iterated — so its layout cannot reach solver output.
class DedupeIds {
 public:
  struct Entry {
    std::uint64_t key;
    std::int32_t id_plus1;  ///< 0 = empty (so a zeroed table is empty)
  };

  explicit DedupeIds(Arena& arena) : entries_(arena) {}

  void clear(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap < expected * 2) cap *= 2;
    entries_.resize(cap);
    std::memset(entries_.data(), 0, cap * sizeof(Entry));
    count_ = 0;
  }

  /// Entry for `key`: occupied or the empty slot where it would insert.
  /// Grows first, so the reference survives an insert_at.
  [[nodiscard]] Entry& find(std::uint64_t key) {
    if ((count_ + 1) * 4 > entries_.size() * 3) grow();
    return entries_[probe(key)];
  }

  void insert_at(Entry& entry, std::uint64_t key, std::int32_t id) noexcept {
    entry = {key, id + 1};
    ++count_;
  }

 private:
  static constexpr std::size_t kMinCapacity = 1024;

  [[nodiscard]] std::size_t probe(std::uint64_t key) const noexcept {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(key) & mask;
    while (entries_[i].id_plus1 != 0 && entries_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    FlatBuf<Entry> old = entries_;  // shallow view of the current storage
    entries_.resize(0);
    entries_.reserve(old.size() * 2);
    entries_.resize(old.size() * 2);
    std::memset(entries_.data(), 0, entries_.size() * sizeof(Entry));
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old[i].id_plus1 != 0) entries_[probe(old[i].key)] = old[i];
    }
  }

  FlatBuf<Entry> entries_;
  std::size_t count_ = 0;
};

/// Everything one edge sweep shares between the subset enumeration and the
/// emit path. Static dispatch — no std::function on the recursion.
struct UfppSweep {
  const PathInstance& inst;
  const UfppProfileDpOptions& options;

  FlatBuf<ActiveRec> active_pool;
  FlatBuf<TaskId> added_pool;
  FlatBuf<UfppStateRec> states;
  FlatBuf<std::int32_t> frontier;
  FlatBuf<std::int32_t> next;
  DedupeIds dedupe;

  // Per-state scratch, reused across states and edges.
  std::vector<ActiveRec> active;   // survivors of the frontier state
  std::vector<ActiveRec> profile;  // emit scratch: survivors + added, sorted
  std::vector<TaskId> added;

  bool overflow = false;
  const std::vector<TaskId>* starters = nullptr;
  Value cap = 0;

  // Of the frontier state currently being expanded:
  Weight base_weight = 0;
  std::int32_t parent = -1;

  UfppSweep(const PathInstance& inst_, const UfppProfileDpOptions& options_,
            Arena& arena)
      : inst(inst_),
        options(options_),
        active_pool(arena),
        added_pool(arena),
        states(arena),
        frontier(arena),
        next(arena),
        dedupe(arena) {}

  void emit(Value used, Weight gained) {
    profile.assign(active.begin(), active.end());
    for (TaskId j : added) {
      profile.push_back({inst.task(j).demand, inst.task(j).last, 0});
    }
    std::sort(profile.begin(), profile.end());
    // sapkit-lint: allow(exact-arith) -- weights of disjoint task sets;
    // their sum is a subset sum, proven to fit in int64 at construction.
    const Weight total = base_weight + gained;
    const std::uint64_t key = hash_profile(profile.data(), profile.size());
    DedupeIds::Entry& entry = dedupe.find(key);
    bool collision = false;
    if (entry.id_plus1 != 0) {
      UfppStateRec& old =
          states[static_cast<std::size_t>(entry.id_plus1 - 1)];
      // Byte comparison is exact: ActiveRec has no hidden padding and its
      // explicit pad field is always zero.
      if (old.active_len == profile.size() &&
          std::memcmp(active_pool.data() + old.active_off, profile.data(),
                      profile.size() * sizeof(ActiveRec)) == 0) {
        if (old.weight >= total) return;  // dominated duplicate
        // Overwrite the weaker state in place; the stored profile span is
        // byte-equal, so only the payload and selection span change.
        old.added_off = added_pool.size();
        old.added_len = static_cast<std::uint32_t>(added.size());
        added_pool.append(added.data(), added.size());
        old.load = used;
        old.weight = total;
        old.parent = parent;
        if (next.size() > 4 * options.max_states) overflow = true;
        return;
      }
      collision = true;  // 64-bit hash collision: keep both states
    }
    UfppStateRec rec;
    rec.active_off = active_pool.size();
    rec.active_len = static_cast<std::uint32_t>(profile.size());
    active_pool.append(profile.data(), profile.size());
    rec.added_off = added_pool.size();
    rec.added_len = static_cast<std::uint32_t>(added.size());
    added_pool.append(added.data(), added.size());
    rec.load = used;
    rec.weight = total;
    rec.parent = parent;
    states.push_back(rec);
    const auto id = static_cast<std::int32_t>(states.size() - 1);
    if (!collision) dedupe.insert_at(entry, key, id);
    next.push_back(id);
    if (next.size() > 4 * options.max_states) overflow = true;
  }

  /// Enumerates subsets of `starters[i..]` whose added demand fits under
  /// cap, emitting a state per subset (including the empty one).
  void enumerate(std::size_t i, Value used, Weight gained) {
    if (overflow) return;
    if (i == starters->size()) {
      emit(used, gained);
      return;
    }
    enumerate(i + 1, used, gained);  // skip starter i
    const Task& t = inst.task((*starters)[i]);
    // sapkit-lint: begin-allow(exact-arith) -- `used` and the gained weight
    // are subset sums of demands/weights; the PathInstance constructor
    // proved the full sums fit in int64.
    if (used + t.demand <= cap) {
      added.push_back((*starters)[i]);
      enumerate(i + 1, used + t.demand, gained + t.weight);
      // sapkit-lint: end-allow(exact-arith)
      added.pop_back();
    }
  }
};

}  // namespace

UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, std::span<const TaskId> subset,
    const UfppProfileDpOptions& options) {
  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  // One arena scope per solve: all pools below are recycled on return.
  ArenaScope scope(arena);

  const auto m = static_cast<EdgeId>(inst.num_edges());
  std::vector<std::vector<TaskId>> starters_at(inst.num_edges());
  for (TaskId j : subset) {
    starters_at[static_cast<std::size_t>(inst.task(j).first)].push_back(j);
  }

  UfppSweep ctx(inst, options, arena);
  ctx.states.push_back(UfppStateRec{});  // empty start state
  ctx.frontier.push_back(0);
  UfppProfileDpResult out;
  out.peak_states = 1;

  for (EdgeId e = 0; e < m; ++e) {
    const Value cap = inst.capacity(e);
    ctx.dedupe.clear(ctx.frontier.size());
    ctx.next.clear();
    ctx.overflow = false;
    ctx.cap = cap;
    ctx.starters = &starters_at[static_cast<std::size_t>(e)];

    for (std::size_t fi = 0; fi < ctx.frontier.size(); ++fi) {
      if (ctx.overflow) break;
      const std::int32_t sid = ctx.frontier[fi];
      // Copy the record: the states pool may grow (and move) during emits.
      const UfppStateRec rec = ctx.states[static_cast<std::size_t>(sid)];
      // Retire tasks ending before e.
      ctx.active.clear();
      Value load = 0;
      const ActiveRec* pool = ctx.active_pool.data() + rec.active_off;
      for (std::uint32_t ai = 0; ai < rec.active_len; ++ai) {
        const ActiveRec& a = pool[ai];
        if (a.last < e) continue;
        ctx.active.push_back(a);
        // sapkit-lint: allow(exact-arith) -- subset sum of demands; the
        // PathInstance constructor proved the full sum fits in int64.
        load += a.demand;
      }
      if (load > cap) continue;  // dead branch (capacity dropped)

      ctx.added.clear();
      ctx.base_weight = rec.weight;
      ctx.parent = sid;
      ctx.enumerate(0, load, 0);
    }

    if (ctx.overflow) out.proven_optimal = false;
    if (ctx.next.size() > options.max_states) {
      // Weight-descending with a state-id tie-break: which states survive
      // truncation (and their order) must not depend on the sort
      // implementation. The comparator is a strict total order, so
      // nth_element + sorting only the kept prefix yields the exact
      // sequence a full sort would.
      const auto by_weight_then_id = [&](std::int32_t a, std::int32_t b) {
        const Weight wa = ctx.states[static_cast<std::size_t>(a)].weight;
        const Weight wb = ctx.states[static_cast<std::size_t>(b)].weight;
        if (wa != wb) return wa > wb;
        return a < b;
      };
      const auto keep = static_cast<std::ptrdiff_t>(options.max_states);
      std::nth_element(ctx.next.begin(), ctx.next.begin() + keep,
                       ctx.next.end(), by_weight_then_id);
      std::sort(ctx.next.begin(), ctx.next.begin() + keep,
                by_weight_then_id);
      ctx.next.resize(options.max_states);
      out.proven_optimal = false;
    }
    out.peak_states = std::max(out.peak_states, ctx.next.size());
    std::swap(ctx.frontier, ctx.next);
  }

  std::int32_t best = -1;
  for (std::size_t fi = 0; fi < ctx.frontier.size(); ++fi) {
    const std::int32_t sid = ctx.frontier[fi];
    if (best < 0 || ctx.states[static_cast<std::size_t>(sid)].weight >
                        ctx.states[static_cast<std::size_t>(best)].weight) {
      best = sid;
    }
  }
  if (best < 0) return out;
  out.weight = ctx.states[static_cast<std::size_t>(best)].weight;
  for (std::int32_t sid = best; sid >= 0;
       sid = ctx.states[static_cast<std::size_t>(sid)].parent) {
    const UfppStateRec& s = ctx.states[static_cast<std::size_t>(sid)];
    const TaskId* added = ctx.added_pool.data() + s.added_off;
    out.solution.tasks.insert(out.solution.tasks.end(), added,
                              added + s.added_len);
  }
  return out;
}

UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, const UfppProfileDpOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return ufpp_exact_profile_dp(inst, all, options);
}

}  // namespace sap
