#include "src/exact/ufpp_profile_dp.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
// sapkit-lint: allow(determinism) -- profile-dedupe lookups only; the map is
// never iterated, so its order cannot reach solver output.
#include <unordered_map>
#include <vector>

namespace sap {
namespace {

/// One selected task alive at the current edge, reduced to what future
/// feasibility depends on.
struct ActiveTask {
  Value demand;
  EdgeId last;

  friend auto operator<=>(const ActiveTask&, const ActiveTask&) = default;
};

struct State {
  std::vector<ActiveTask> active;  // sorted
  Value load = 0;                  // sum of active demands
  Weight weight = 0;
  std::int32_t parent = -1;
  std::vector<TaskId> added;       // selections made at this edge
};

std::uint64_t hash_profile(const std::vector<ActiveTask>& active) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const ActiveTask& a : active) {
    mix(static_cast<std::uint64_t>(a.demand));
    mix(static_cast<std::uint64_t>(a.last));
  }
  return h;
}

}  // namespace

UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, std::span<const TaskId> subset,
    const UfppProfileDpOptions& options) {
  const auto m = static_cast<EdgeId>(inst.num_edges());
  std::vector<std::vector<TaskId>> starters_at(inst.num_edges());
  for (TaskId j : subset) {
    starters_at[static_cast<std::size_t>(inst.task(j).first)].push_back(j);
  }

  std::vector<State> arena;
  arena.push_back(State{});
  std::vector<std::int32_t> frontier{0};
  UfppProfileDpResult out;
  out.peak_states = 1;

  for (EdgeId e = 0; e < m; ++e) {
    const Value cap = inst.capacity(e);
    // sapkit-lint: allow(determinism) -- try_emplace/lookup only, never
    // iterated; surviving states live in `arena`, which is append-ordered.
    std::unordered_map<std::uint64_t, std::int32_t> dedupe;
    std::vector<std::int32_t> next;
    bool overflow = false;

    for (std::int32_t sid : frontier) {
      if (overflow) break;
      // Retire tasks ending before e.
      std::vector<ActiveTask> active;
      Value load = 0;
      for (const ActiveTask& a :
           arena[static_cast<std::size_t>(sid)].active) {
        if (a.last < e) continue;
        active.push_back(a);
        // sapkit-lint: allow(exact-arith) -- subset sum of demands; the
        // PathInstance constructor proved the full sum fits in int64.
        load += a.demand;
      }
      if (load > cap) continue;  // dead branch (capacity dropped)

      const Weight base_weight = arena[static_cast<std::size_t>(sid)].weight;
      const auto& starters = starters_at[static_cast<std::size_t>(e)];

      // Enumerate subsets of starters whose added demand fits under cap.
      std::vector<TaskId> added;
      std::function<void(std::size_t, Value, Weight)> enumerate =
          [&](std::size_t i, Value used, Weight gained) {
            if (overflow) return;
            if (i == starters.size()) {
              // Emit the state.
              std::vector<ActiveTask> profile = active;
              for (TaskId j : added) {
                profile.push_back({inst.task(j).demand, inst.task(j).last});
              }
              std::ranges::sort(profile);
              // sapkit-lint: allow(exact-arith) -- weights of disjoint task
              // sets; the sum is a subset sum, proven at construction.
              const Weight total = base_weight + gained;
              const std::uint64_t key = hash_profile(profile);
              auto [it, inserted] = dedupe.try_emplace(key, -1);
              bool collision = false;
              if (!inserted) {
                const State& old =
                    arena[static_cast<std::size_t>(it->second)];
                if (old.active == profile) {
                  if (old.weight >= total) return;
                } else {
                  collision = true;
                }
              }
              State state;
              state.active = std::move(profile);
              state.load = used;
              state.weight = total;
              state.parent = sid;
              state.added = added;
              if (!inserted && !collision) {
                arena[static_cast<std::size_t>(it->second)] =
                    std::move(state);
              } else {
                arena.push_back(std::move(state));
                const auto id = static_cast<std::int32_t>(arena.size() - 1);
                if (inserted) it->second = id;
                next.push_back(id);
              }
              if (next.size() > 4 * options.max_states) overflow = true;
              return;
            }
            enumerate(i + 1, used, gained);  // skip starter i
            const Task& t = inst.task(starters[i]);
            // sapkit-lint: begin-allow(exact-arith) -- `used` and the gained
            // weight are subset sums of demands/weights; the PathInstance
            // constructor proved the full sums fit in int64.
            if (used + t.demand <= cap) {
              added.push_back(starters[i]);
              enumerate(i + 1, used + t.demand, gained + t.weight);
              // sapkit-lint: end-allow(exact-arith)
              added.pop_back();
            }
          };
      enumerate(0, load, 0);
    }

    if (overflow) out.proven_optimal = false;
    if (next.size() > options.max_states) {
      std::ranges::sort(next, [&](std::int32_t a, std::int32_t b) {
        return arena[static_cast<std::size_t>(a)].weight >
               arena[static_cast<std::size_t>(b)].weight;
      });
      next.resize(options.max_states);
      out.proven_optimal = false;
    }
    out.peak_states = std::max(out.peak_states, next.size());
    frontier = std::move(next);
  }

  std::int32_t best = -1;
  for (std::int32_t sid : frontier) {
    if (best < 0 || arena[static_cast<std::size_t>(sid)].weight >
                        arena[static_cast<std::size_t>(best)].weight) {
      best = sid;
    }
  }
  if (best < 0) return out;
  out.weight = arena[static_cast<std::size_t>(best)].weight;
  for (std::int32_t sid = best; sid >= 0;
       sid = arena[static_cast<std::size_t>(sid)].parent) {
    const State& s = arena[static_cast<std::size_t>(sid)];
    out.solution.tasks.insert(out.solution.tasks.end(), s.added.begin(),
                              s.added.end());
  }
  return out;
}

UfppProfileDpResult ufpp_exact_profile_dp(
    const PathInstance& inst, const UfppProfileDpOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return ufpp_exact_profile_dp(inst, all, options);
}

}  // namespace sap
