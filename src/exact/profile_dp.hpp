// Exact SAP on paths by an edge-sweep dynamic program over vertical
// "profiles", in the style of Chen, Hassin, Tzur [18] (O(n (nK)^K) for
// integer capacity K) and of the paper's Lemma 13 DP.
//
// A state at edge e is the canonical multiset of (height, demand, last-edge)
// slots of the selected tasks alive at e; integral heights are WLOG for
// integral demands (gravity, Observation 11). States are merged by profile
// (task identity beyond (height, demand, last) is irrelevant to future
// feasibility), keeping the maximum accumulated weight.
//
// This is the exact oracle behind the medium-task Elevator (Lemma 13) and
// behind every measured-approximation-ratio bench.
#pragma once

#include <cstddef>
#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {

class Arena;

struct SapExactOptions {
  /// Beam cap on live states per edge; exceeding it truncates to the best
  /// states and clears `proven_optimal`.
  std::size_t max_states = 500'000;
  /// Cap on candidate heights tried per starting task per state (0 = all
  /// integer heights). Leave 0 for exactness.
  std::size_t max_heights_per_task = 0;
  /// Every placement must satisfy height >= min_height: used by the medium-
  /// task Elevator to compute optimal beta-elevated solutions directly (the
  /// paper's remark after Lemma 15).
  Value min_height = 0;
  /// Heuristic mode: restrict candidate heights to min_height and the tops
  /// of tasks currently alive. Exponentially faster on tall instances but
  /// no longer exact (clears proven_optimal); misses solutions in which a
  /// task rests on a later-starting task.
  bool grounded_only = false;
  /// Cooperative cancellation: once this expires the sweep stops and the
  /// result is a typed timeout (`timed_out`, empty solution) — never a
  /// partial answer. Default: unlimited.
  Deadline deadline{};
  /// Bump allocator for the sweep's state pools and scratch. nullptr uses
  /// the calling thread's arena; either way the solve's footprint is
  /// recycled on return, so a warmed arena makes the sweep heap-free.
  Arena* arena = nullptr;
};

struct SapExactResult {
  SapSolution solution;
  Weight weight = 0;
  bool proven_optimal = true;   ///< false iff the beam cap truncated states
  bool timed_out = false;       ///< deadline expired: solution is empty
  std::size_t peak_states = 0;  ///< max live states over the sweep
};

/// Maximum-weight SAP solution over `subset` (exact unless the beam cap
/// trips, in which case the result is still feasible and a lower bound).
[[nodiscard]] SapExactResult sap_exact_profile_dp(
    const PathInstance& inst, std::span<const TaskId> subset,
    const SapExactOptions& options = {});

[[nodiscard]] SapExactResult sap_exact_profile_dp(
    const PathInstance& inst, const SapExactOptions& options = {});

}  // namespace sap
