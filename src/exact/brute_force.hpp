// Obviously-correct exponential SAP oracle for tiny instances.
//
// Enumerates, via DFS with weight pruning, every subset and every integral
// height assignment (integral heights are WLOG for integral demands: apply
// gravity, Observation 11, and heights become sums of demands). Exists to
// cross-validate the profile DP and to anchor the ratio benches.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {

struct SapBruteForceOptions {
  std::size_t max_tasks = 20;        ///< guard: refuse larger inputs
  Value max_capacity = 64;           ///< guard: refuse taller instances
  /// Cooperative cancellation: expiry aborts the search by throwing
  /// DeadlineExceeded (a typed outcome — never a partial best-so-far).
  Deadline deadline{};
};

/// Maximum-weight SAP solution by exhaustive search. Throws
/// std::invalid_argument when the instance exceeds the guards and
/// DeadlineExceeded when `options.deadline` expires mid-search.
[[nodiscard]] SapSolution sap_brute_force(
    const PathInstance& inst, std::span<const TaskId> subset,
    const SapBruteForceOptions& options = {});

[[nodiscard]] SapSolution sap_brute_force(
    const PathInstance& inst, const SapBruteForceOptions& options = {});

}  // namespace sap
