#include "src/exact/profile_dp.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/flat.hpp"
#include "src/util/telemetry.hpp"

// Memory substrate: every state the sweep creates lives in flat arena pools
// (slot spans, placement spans, fixed-size records) instead of per-state
// heap vectors, and profile dedupe runs on a flat open-addressing table
// instead of node-based unordered_map. A state is three bulk appends; a
// whole solve is recycled with one arena rewind, so a warmed thread
// performs zero heap allocations here. The state *semantics* — emit order,
// dedupe and collision handling, overflow brake, truncation — are
// byte-identical to the vector-based implementation (locked by
// tests/golden_test.cpp and exact_test).

namespace sap {
namespace {

/// One selected task alive at the current edge. Identity is reduced to what
/// future feasibility needs: vertical extent and remaining lifetime.
struct Slot {
  Value height;
  Value demand;
  EdgeId last;
  /// Explicit padding, always zero, so whole-profile equality can memcmp
  /// Slot spans instead of comparing field by field.
  EdgeId pad = 0;

  friend bool operator==(const Slot&, const Slot&) = default;
  // sapkit-lint: allow(exact-arith) -- slots are only created with
  // h + d <= cap <= 2^62 (see place()/free_span), so the top is exact.
  [[nodiscard]] Value top() const noexcept { return height + demand; }
};
static_assert(sizeof(Slot) == 24);  // no hidden padding left for memcmp

/// Flat state record: spans into the slot/placement pools plus the DP
/// payload. Offsets stay valid across pool growth (growth only moves the
/// backing block, never re-bases spans).
struct StateRec {
  std::size_t slots_off = 0;
  std::size_t added_off = 0;
  std::uint32_t slots_len = 0;
  std::uint32_t added_len = 0;
  Weight weight = 0;
  std::int32_t parent = -1;
};

/// Two independent 64-bit digests of one slot. A profile's digest is the
/// wrapping SUM of its slots' digests plus the length: profiles are
/// canonical (sorted) multisets, so a commutative combine identifies them
/// exactly as well as a sequential one — and, crucially, it can be
/// maintained incrementally by the enumeration DFS (insert adds, undo
/// subtracts), making the per-emit hashing cost O(1) instead of O(len).
/// (key, fp, length) give ~128 bits of identity, so a false profile match
/// is astronomically unlikely and the emit path never has to re-read the
/// candidate's slots from the pool.
struct SlotDigest {
  std::uint64_t key;
  std::uint64_t fp;
};

std::uint64_t mix64(std::uint64_t x) {  // splitmix64 finalizer
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

SlotDigest slot_digest(const Slot& s) {
  const std::uint64_t key =
      mix64(mix64(mix64(0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(s.height)) ^
                  static_cast<std::uint64_t>(s.demand)) ^
            static_cast<std::uint64_t>(s.last));
  return {key, mix64(key + 0xcbf29ce484222325ULL)};
}

/// Open-addressing profile-hash -> state table (linear probing, arena
/// storage, cleared per edge). Keys are the 64-bit profile hashes; like the
/// unordered_map it replaces it is lookup-only — never iterated — so its
/// layout cannot reach solver output.
///
/// Each entry mirrors the hot fields of its state (weight, profile
/// identity), so the dominant emit outcome — "this exact profile already
/// exists with at least this weight, reject" — is decided from the 32-byte
/// entry alone, without touching the state records or the slot pool.
class DedupeTable {
 public:
  struct Entry {
    std::uint64_t key;
    std::uint64_t fp;        ///< second digest: (key, fp, len) = identity
    Weight weight;           ///< mirror of the state's weight
    std::int32_t id_plus1;   ///< 0 = empty (so a zeroed table is empty)
    std::uint32_t slots_len; ///< mirror of the state's profile length
  };
  static_assert(sizeof(Entry) == 32);  // two entries per cache line

  explicit DedupeTable(Arena& arena) : entries_(arena) {}

  void clear(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap < expected * 2) cap *= 2;
    entries_.resize(cap);
    std::memset(entries_.data(), 0, cap * sizeof(Entry));
    count_ = 0;
  }

  /// Entry for `key`: occupied (id_plus1 != 0) or the empty slot where it
  /// would insert. Grows first, so the reference survives an insert_at and
  /// any amount of non-table allocation.
  [[nodiscard]] Entry& find(std::uint64_t key) {
    if ((count_ + 1) * 4 > entries_.size() * 3) grow();
    return entries_[probe(key)];
  }

  void insert_at(Entry& entry, std::uint64_t key, std::uint64_t fp,
                 std::int32_t id, std::uint32_t slots_len,
                 Weight weight) noexcept {
    entry.key = key;
    entry.fp = fp;
    entry.weight = weight;
    entry.id_plus1 = id + 1;
    entry.slots_len = slots_len;
    ++count_;
  }

 private:
  static constexpr std::size_t kMinCapacity = 1024;

  [[nodiscard]] std::size_t probe(std::uint64_t key) const noexcept {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(key) & mask;
    while (entries_[i].id_plus1 != 0 && entries_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    FlatBuf<Entry> old = entries_;  // shallow view of the current storage
    entries_.resize(0);
    entries_.reserve(old.size() * 2);
    entries_.resize(old.size() * 2);
    std::memset(entries_.data(), 0, entries_.size() * sizeof(Entry));
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old[i].id_plus1 != 0) entries_[probe(old[i].key)] = old[i];
    }
  }

  FlatBuf<Entry> entries_;
  std::size_t count_ = 0;
};

/// Everything one edge sweep shares between the per-state enumeration and
/// the emit path. Scratch buffers persist across states and edges so the
/// steady state touches no allocator.
struct SweepContext {
  const PathInstance& inst;
  const SapExactOptions& options;

  FlatBuf<Slot> slot_pool;
  FlatBuf<Placement> added_pool;
  FlatBuf<StateRec> states;
  FlatBuf<std::int32_t> frontier;
  FlatBuf<std::int32_t> next;
  DedupeTable dedupe;

  // Per-state scratch, reused: the alive-slot profile (sorted by height,
  // mutated by the enumeration DFS) and the placements added at this edge.
  std::vector<Slot> slots;
  std::vector<Placement> added;
  // Running profile digest of `slots`, maintained incrementally at every
  // insert/remove (commutative sum — see slot_digest).
  std::uint64_t key_sum = 0;
  std::uint64_t fp_sum = 0;
  // Grounded-mode candidate heights, one buffer per DFS depth (a deeper
  // place() must not clobber the list its caller is iterating).
  std::vector<std::vector<Value>> candidates_by_depth;

  DeadlineGate gate;
  bool overflow = false;
  bool timed_out = false;

  // Of the frontier state currently being expanded:
  Weight base_weight = 0;
  std::int32_t parent = -1;

  SweepContext(const PathInstance& inst_, const SapExactOptions& options_,
               Arena& arena)
      : inst(inst_),
        options(options_),
        slot_pool(arena),
        added_pool(arena),
        states(arena),
        frontier(arena),
        next(arena),
        dedupe(arena),
        gate(options_.deadline) {}

  void emit(Weight added_weight) {
    if (gate.expired()) {
      // Reuse the overflow brake to unwind the enumeration promptly; the
      // timeout return below supersedes the truncated result.
      timed_out = true;
      overflow = true;
      return;
    }
    if (next.size() > 4 * options.max_states) {
      overflow = true;
      return;
    }
    // sapkit-lint: allow(exact-arith) -- weights of disjoint task sets;
    // their sum is a subset sum, proven to fit in int64 at construction.
    const Weight total = base_weight + added_weight;
    DedupeTable::Entry& entry = dedupe.find(key_sum);
    bool collision = false;
    if (entry.id_plus1 != 0) {
      // 128 bits of digest plus the length identify the profile; no byte
      // comparison against the pool is needed (and the reject path below
      // therefore costs exactly one cache line: the entry itself).
      if (entry.slots_len == slots.size() && entry.fp == fp_sum) {
        if (entry.weight >= total) return;  // dominated duplicate
        // Overwrite the weaker state in place; `next` already points at it
        // and the stored slot span is byte-equal, so only the payload and
        // the added-placement span change.
        StateRec& rec =
            states[static_cast<std::size_t>(entry.id_plus1 - 1)];
        rec.added_off = added_pool.size();
        rec.added_len = static_cast<std::uint32_t>(added.size());
        added_pool.append(added.data(), added.size());
        rec.weight = total;
        rec.parent = parent;
        entry.weight = total;
        return;
      }
      collision = true;  // 64-bit hash collision: keep both states
    }
    StateRec rec;
    rec.slots_off = slot_pool.size();
    rec.slots_len = static_cast<std::uint32_t>(slots.size());
    slot_pool.append(slots.data(), slots.size());
    rec.added_off = added_pool.size();
    rec.added_len = static_cast<std::uint32_t>(added.size());
    added_pool.append(added.data(), added.size());
    rec.weight = total;
    rec.parent = parent;
    states.push_back(rec);
    const auto id = static_cast<std::int32_t>(states.size() - 1);
    if (!collision) {
      dedupe.insert_at(entry, key_sum, fp_sum, id, rec.slots_len, total);
    }
    next.push_back(id);
  }
};

/// Enumerates placements of `starters[i..]` on top of the context's slot
/// profile, invoking SweepContext::emit at every leaf (including "place
/// none"). Static dispatch — no std::function on the hot path.
struct StarterEnumerator {
  SweepContext& ctx;
  const std::vector<TaskId>& starters;
  Value cap;
  std::size_t max_heights;
  Value min_height;
  bool grounded_only;
  Weight added_weight = 0;

  [[nodiscard]] bool free_span(Value h, Value demand) const {
    for (const Slot& s : ctx.slots) {
      // sapkit-lint: allow(exact-arith) -- h <= cap and d <= cap <= 2^62
      // (instance construction), so h + d <= 2^63 stays exact in int64.
      if (s.height >= h + demand) break;  // sorted: all later are above
      if (s.top() > h) return false;
    }
    return true;
  }

  void run(std::size_t i) {
    if (ctx.overflow) return;
    if (i == starters.size()) {
      ctx.emit(added_weight);
      return;
    }
    run(i + 1);  // skip starters[i]
    const TaskId j = starters[i];
    const Task& t = ctx.inst.task(j);
    // sapkit-lint: allow(exact-arith) -- min_height <= cap and d <= cap <=
    // 2^62 (instance construction), so the sum is exact in int64.
    if (min_height + t.demand > cap) return;
    if (grounded_only) {
      // Candidates: the floor and the top of every alive slot.
      if (i >= ctx.candidates_by_depth.size()) {
        ctx.candidates_by_depth.resize(i + 1);
      }
      std::vector<Value>& candidates = ctx.candidates_by_depth[i];
      candidates.clear();
      candidates.push_back(min_height);
      for (const Slot& s : ctx.slots) {
        if (s.top() >= min_height) candidates.push_back(s.top());
      }
      std::ranges::sort(candidates);
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      std::size_t tried = 0;
      for (Value h : candidates) {
        // sapkit-lint: allow(exact-arith) -- candidate tops are <= cap and
        // d <= cap <= 2^62, so the sum is exact in int64.
        if (h + t.demand > cap) break;
        if (!free_span(h, t.demand)) continue;
        if (max_heights != 0 && tried >= max_heights) return;
        ++tried;
        place(i, j, t, h);
      }
      return;
    }
    // Try every integral height whose span is free. Walk the free gaps of
    // the (sorted) profile so each feasible height is visited once.
    std::size_t tried = 0;
    Value h = min_height;
    std::size_t k = 0;
    // sapkit-lint: allow(exact-arith) -- h <= cap (starts at min_height and
    // jumps to slot tops <= cap) and d <= cap <= 2^62: exact in int64.
    while (h + t.demand <= cap) {
      // Skip forward over any slot blocking [h, h+demand).
      bool blocked = false;
      for (; k < ctx.slots.size(); ++k) {
        const Slot& s = ctx.slots[k];
        if (s.top() <= h) continue;           // entirely below
        // sapkit-lint: allow(exact-arith) -- same h <= cap, d <= cap <= 2^62
        // bound as the loop condition above: exact in int64.
        if (s.height >= h + t.demand) break;  // entirely above; gap is free
        h = s.top();                          // jump past the blocker
        blocked = true;
        break;
      }
      if (blocked) continue;
      // [h, h+demand) is free; recurse with every height in this gap.
      Value gap_end = cap;
      if (k < ctx.slots.size()) {
        gap_end = std::min(gap_end, ctx.slots[k].height);
      }
      // sapkit-lint: allow(exact-arith) -- hh <= gap_end <= cap and d <=
      // cap <= 2^62 (instance construction): exact in int64.
      for (Value hh = h; hh + t.demand <= gap_end; ++hh) {
        if (max_heights != 0 && tried >= max_heights) return;
        ++tried;
        place(i, j, t, hh);
      }
      if (k >= ctx.slots.size()) return;  // explored the unbounded top gap
      h = ctx.slots[k].top();
      ++k;
    }
  }

  void place(std::size_t i, TaskId j, const Task& t, Value h) {
    const Slot slot{h, t.demand, t.last};
    const auto pos = std::lower_bound(
        ctx.slots.begin(), ctx.slots.end(), slot,
        [](const Slot& a, const Slot& b) { return a.height < b.height; });
    const auto idx = static_cast<std::size_t>(pos - ctx.slots.begin());
    ctx.slots.insert(pos, slot);
    const SlotDigest digest = slot_digest(slot);
    ctx.key_sum += digest.key;
    ctx.fp_sum += digest.fp;
    ctx.added.push_back({j, h});
    // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
    // PathInstance constructor proved the full sum fits in int64.
    added_weight += t.weight;
    run(i + 1);
    added_weight -= t.weight;
    ctx.added.pop_back();
    ctx.key_sum -= digest.key;
    ctx.fp_sum -= digest.fp;
    ctx.slots.erase(ctx.slots.begin() + static_cast<std::ptrdiff_t>(idx));
  }
};

}  // namespace

SapExactResult sap_exact_profile_dp(const PathInstance& inst,
                                    std::span<const TaskId> subset,
                                    const SapExactOptions& options) {
  ScopedTimer timer("dp.solve");
  Arena& arena = options.arena != nullptr ? *options.arena : thread_arena();
  // The whole solve is one arena scope: every pool below is recycled (not
  // freed) on return, so the next solve on this thread reuses the chunks.
  ArenaScope scope(arena);

  const auto m = static_cast<EdgeId>(inst.num_edges());
  std::vector<std::vector<TaskId>> starters_at(inst.num_edges());
  for (TaskId j : subset) {
    starters_at[static_cast<std::size_t>(inst.task(j).first)].push_back(j);
  }

  SweepContext ctx(inst, options, arena);
  ctx.states.push_back(StateRec{});  // empty start state
  ctx.frontier.push_back(0);
  SapExactResult out;
  out.peak_states = 1;
  if (options.grounded_only || options.max_heights_per_task != 0) {
    out.proven_optimal = false;  // restricted height candidates: heuristic
  }

  for (EdgeId e = 0; e < m; ++e) {
    const Value cap = inst.capacity(e);
    ctx.dedupe.clear(ctx.frontier.size());
    ctx.next.clear();
    ctx.overflow = false;

    // Hard cap on states generated at this edge: past it, stop expanding so
    // memory stays bounded; the result degrades to a feasible lower bound.
    for (std::size_t fi = 0; fi < ctx.frontier.size(); ++fi) {
      if (ctx.overflow) break;
      const std::int32_t sid = ctx.frontier[fi];
      // Copy the record: the states pool may grow (and move) during emits.
      const StateRec rec = ctx.states[static_cast<std::size_t>(sid)];
      // Drop tasks ending before e; kill the state if a survivor no longer
      // fits under this edge's capacity.
      ctx.slots.clear();
      ctx.key_sum = 0;
      ctx.fp_sum = 0;
      bool alive = true;
      const Slot* pool = ctx.slot_pool.data() + rec.slots_off;
      for (std::uint32_t si = 0; si < rec.slots_len; ++si) {
        const Slot& s = pool[si];
        if (s.last < e) continue;
        if (s.top() > cap) {
          alive = false;
          break;
        }
        ctx.slots.push_back(s);
        const SlotDigest digest = slot_digest(s);
        ctx.key_sum += digest.key;
        ctx.fp_sum += digest.fp;
      }
      if (!alive) continue;

      ctx.added.clear();
      ctx.base_weight = rec.weight;
      ctx.parent = sid;
      StarterEnumerator enumerator{ctx,
                                   starters_at[static_cast<std::size_t>(e)],
                                   cap,
                                   options.max_heights_per_task,
                                   options.min_height,
                                   options.grounded_only,
                                   0};
      enumerator.run(0);
    }

    if (ctx.timed_out) {
      // Typed timeout outcome: an empty solution, never a partial answer.
      SapExactResult expired;
      expired.timed_out = true;
      expired.proven_optimal = false;
      expired.peak_states = std::max(out.peak_states, ctx.next.size());
      telemetry::count("dp.timeout");
      return expired;
    }
    if (ctx.overflow) out.proven_optimal = false;
    if (ctx.next.size() > options.max_states) {
      // Weight-descending with a state-id tie-break: which states survive
      // truncation (and their frontier order) must not depend on the sort
      // implementation. The comparator is a strict total order, so
      // nth_element + sorting only the kept prefix yields the exact
      // sequence a full sort would — at O(n + k log k) instead of
      // O(n log n) over up to 4x max_states entries.
      const auto by_weight_then_id = [&](std::int32_t a, std::int32_t b) {
        const Weight wa = ctx.states[static_cast<std::size_t>(a)].weight;
        const Weight wb = ctx.states[static_cast<std::size_t>(b)].weight;
        if (wa != wb) return wa > wb;
        return a < b;
      };
      const auto keep = static_cast<std::ptrdiff_t>(options.max_states);
      const auto mid = ctx.next.begin() + keep;
      std::nth_element(ctx.next.begin(), mid, ctx.next.end(),
                       by_weight_then_id);
      std::sort(ctx.next.begin(), mid, by_weight_then_id);
      ctx.next.resize(options.max_states);
      out.proven_optimal = false;
    }
    out.peak_states = std::max(out.peak_states, ctx.next.size());
    std::swap(ctx.frontier, ctx.next);
  }

  telemetry::count("dp.runs");
  telemetry::count("dp.states.peak",
                   static_cast<std::int64_t>(out.peak_states));
  telemetry::count("dp.states.expanded",
                   static_cast<std::int64_t>(ctx.states.size()));
  if (!out.proven_optimal) telemetry::count("dp.truncated");

  std::int32_t best = -1;
  for (const std::int32_t sid : ctx.frontier) {
    if (best < 0 || ctx.states[static_cast<std::size_t>(sid)].weight >
                        ctx.states[static_cast<std::size_t>(best)].weight) {
      best = sid;
    }
  }
  if (best < 0) return out;  // no feasible state (cannot happen: empty set)
  out.weight = ctx.states[static_cast<std::size_t>(best)].weight;
  for (std::int32_t sid = best; sid >= 0;
       sid = ctx.states[static_cast<std::size_t>(sid)].parent) {
    const StateRec& s = ctx.states[static_cast<std::size_t>(sid)];
    const Placement* adds = ctx.added_pool.data() + s.added_off;
    out.solution.placements.insert(out.solution.placements.end(), adds,
                                   adds + s.added_len);
  }
  return out;
}

SapExactResult sap_exact_profile_dp(const PathInstance& inst,
                                    const SapExactOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return sap_exact_profile_dp(inst, all, options);
}

}  // namespace sap
