#include "src/exact/profile_dp.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
// sapkit-lint: allow(determinism) -- profile-dedupe lookups only; the map is
// never iterated, so its order cannot reach solver output.
#include <unordered_map>
#include <vector>

#include "src/util/telemetry.hpp"

namespace sap {
namespace {

/// One selected task alive at the current edge. Identity is reduced to what
/// future feasibility needs: vertical extent and remaining lifetime.
struct Slot {
  Value height;
  Value demand;
  EdgeId last;

  friend bool operator==(const Slot&, const Slot&) = default;
  // sapkit-lint: allow(exact-arith) -- slots are only created with
  // h + d <= cap <= 2^62 (see place()/free_span), so the top is exact.
  [[nodiscard]] Value top() const noexcept { return height + demand; }
};

struct State {
  std::vector<Slot> slots;  // sorted by height
  Weight weight = 0;
  std::int32_t parent = -1;           // arena index of predecessor state
  std::vector<Placement> added;       // placements introduced at this edge
};

std::uint64_t hash_profile(const std::vector<Slot>& slots) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const Slot& s : slots) {
    mix(static_cast<std::uint64_t>(s.height));
    mix(static_cast<std::uint64_t>(s.demand));
    mix(static_cast<std::uint64_t>(s.last));
  }
  return h;
}

/// Enumerates placements of `starters[i..]` on top of `slots`, invoking
/// `emit` at every leaf (including "place none").
struct StarterEnumerator {
  const PathInstance& inst;
  const std::vector<TaskId>& starters;
  Value cap;
  std::size_t max_heights;
  Value min_height;
  bool grounded_only;
  std::vector<Slot>* slots;                // sorted by height, mutated in DFS
  std::vector<Placement>* added;
  Weight added_weight = 0;
  const bool* stop = nullptr;              // set when the state cap trips
  std::function<void(Weight)> emit;

  [[nodiscard]] bool free_span(Value h, Value demand) const {
    for (const Slot& s : *slots) {
      // sapkit-lint: allow(exact-arith) -- h <= cap and d <= cap <= 2^62
      // (instance construction), so h + d <= 2^63 stays exact in int64.
      if (s.height >= h + demand) break;  // sorted: all later are above
      if (s.top() > h) return false;
    }
    return true;
  }

  void run(std::size_t i) {
    if (stop != nullptr && *stop) return;
    if (i == starters.size()) {
      emit(added_weight);
      return;
    }
    run(i + 1);  // skip starters[i]
    const TaskId j = starters[i];
    const Task& t = inst.task(j);
    // sapkit-lint: allow(exact-arith) -- min_height <= cap and d <= cap <=
    // 2^62 (instance construction), so the sum is exact in int64.
    if (min_height + t.demand > cap) return;
    if (grounded_only) {
      // Candidates: the floor and the top of every alive slot.
      std::vector<Value> candidates{min_height};
      for (const Slot& s : *slots) {
        if (s.top() >= min_height) candidates.push_back(s.top());
      }
      std::ranges::sort(candidates);
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      std::size_t tried = 0;
      for (Value h : candidates) {
        // sapkit-lint: allow(exact-arith) -- candidate tops are <= cap and
        // d <= cap <= 2^62, so the sum is exact in int64.
        if (h + t.demand > cap) break;
        if (!free_span(h, t.demand)) continue;
        if (max_heights != 0 && tried >= max_heights) return;
        ++tried;
        place(i, j, t, h);
      }
      return;
    }
    // Try every integral height whose span is free. Walk the free gaps of
    // the (sorted) profile so each feasible height is visited once.
    std::size_t tried = 0;
    Value h = min_height;
    std::size_t k = 0;
    // sapkit-lint: allow(exact-arith) -- h <= cap (starts at min_height and
    // jumps to slot tops <= cap) and d <= cap <= 2^62: exact in int64.
    while (h + t.demand <= cap) {
      // Skip forward over any slot blocking [h, h+demand).
      bool blocked = false;
      for (; k < slots->size(); ++k) {
        const Slot& s = (*slots)[k];
        if (s.top() <= h) continue;           // entirely below
        // sapkit-lint: allow(exact-arith) -- same h <= cap, d <= cap <= 2^62
        // bound as the loop condition above: exact in int64.
        if (s.height >= h + t.demand) break;  // entirely above; gap is free
        h = s.top();                          // jump past the blocker
        blocked = true;
        break;
      }
      if (blocked) continue;
      // [h, h+demand) is free; recurse with every height in this gap.
      Value gap_end = cap;
      if (k < slots->size()) gap_end = std::min(gap_end, (*slots)[k].height);
      // sapkit-lint: allow(exact-arith) -- hh <= gap_end <= cap and d <=
      // cap <= 2^62 (instance construction): exact in int64.
      for (Value hh = h; hh + t.demand <= gap_end; ++hh) {
        if (max_heights != 0 && tried >= max_heights) return;
        ++tried;
        place(i, j, t, hh);
      }
      if (k >= slots->size()) return;  // explored the unbounded top gap
      h = (*slots)[k].top();
      ++k;
    }
  }

  void place(std::size_t i, TaskId j, const Task& t, Value h) {
    const Slot slot{h, t.demand, t.last};
    const auto pos = std::lower_bound(
        slots->begin(), slots->end(), slot,
        [](const Slot& a, const Slot& b) { return a.height < b.height; });
    const auto idx = static_cast<std::size_t>(pos - slots->begin());
    slots->insert(pos, slot);
    added->push_back({j, h});
    // sapkit-lint: allow(exact-arith) -- subset sum of task weights; the
    // PathInstance constructor proved the full sum fits in int64.
    added_weight += t.weight;
    run(i + 1);
    added_weight -= t.weight;
    added->pop_back();
    slots->erase(slots->begin() + static_cast<std::ptrdiff_t>(idx));
  }
};

}  // namespace

SapExactResult sap_exact_profile_dp(const PathInstance& inst,
                                    std::span<const TaskId> subset,
                                    const SapExactOptions& options) {
  ScopedTimer timer("dp.solve");
  const auto m = static_cast<EdgeId>(inst.num_edges());
  std::vector<std::vector<TaskId>> starters_at(inst.num_edges());
  for (TaskId j : subset) {
    starters_at[static_cast<std::size_t>(inst.task(j).first)].push_back(j);
  }

  std::vector<State> arena;
  arena.push_back(State{});  // empty start state
  std::vector<std::int32_t> frontier{0};
  SapExactResult out;
  out.peak_states = 1;
  DeadlineGate gate(options.deadline);
  bool timed_out = false;
  if (options.grounded_only || options.max_heights_per_task != 0) {
    out.proven_optimal = false;  // restricted height candidates: heuristic
  }

  for (EdgeId e = 0; e < m; ++e) {
    const Value cap = inst.capacity(e);
    // sapkit-lint: allow(determinism) -- lookups only, never iterated.
    std::unordered_map<std::uint64_t, std::int32_t> dedupe;
    std::vector<std::int32_t> next;

    // Hard cap on states generated at this edge: past it, stop expanding so
    // memory stays bounded; the result degrades to a feasible lower bound.
    bool overflow = false;
    for (std::int32_t sid : frontier) {
      if (overflow) break;
      // Drop tasks ending before e; kill the state if a survivor no longer
      // fits under this edge's capacity.
      std::vector<Slot> slots;
      slots.reserve(arena[static_cast<std::size_t>(sid)].slots.size());
      bool alive = true;
      for (const Slot& s : arena[static_cast<std::size_t>(sid)].slots) {
        if (s.last < e) continue;
        if (s.top() > cap) {
          alive = false;
          break;
        }
        slots.push_back(s);
      }
      if (!alive) continue;

      std::vector<Placement> added;
      const Weight base_weight = arena[static_cast<std::size_t>(sid)].weight;
      StarterEnumerator enumerator{
          inst,
          starters_at[static_cast<std::size_t>(e)],
          cap,
          options.max_heights_per_task,
          options.min_height,
          options.grounded_only,
          &slots,
          &added,
          0,
          &overflow,
          {}};
      enumerator.emit = [&](Weight added_weight) {
        if (gate.expired()) {
          // Reuse the overflow brake to unwind the enumeration promptly; the
          // timeout return below supersedes the truncated result.
          timed_out = true;
          overflow = true;
          return;
        }
        if (next.size() > 4 * options.max_states) {
          overflow = true;
          return;
        }
        // sapkit-lint: allow(exact-arith) -- weights of disjoint task sets;
        // their sum is a subset sum, proven to fit in int64 at construction.
        const Weight total = base_weight + added_weight;
        const std::uint64_t key = hash_profile(slots);
        auto [it, inserted] = dedupe.try_emplace(key, -1);
        bool collision = false;
        if (!inserted) {
          const std::int32_t existing = it->second;
          const State& old = arena[static_cast<std::size_t>(existing)];
          if (old.slots == slots) {
            if (old.weight >= total) return;
          } else {
            collision = true;  // 64-bit hash collision: keep both states
          }
        }
        State state;
        state.slots = slots;
        state.weight = total;
        state.parent = sid;
        state.added = added;
        if (!inserted && !collision) {
          // Overwrite the weaker state in place; `next` already points at it.
          arena[static_cast<std::size_t>(it->second)] = std::move(state);
        } else {
          arena.push_back(std::move(state));
          const auto id = static_cast<std::int32_t>(arena.size() - 1);
          if (inserted) it->second = id;
          next.push_back(id);
        }
      };
      enumerator.run(0);
    }

    if (timed_out) {
      // Typed timeout outcome: an empty solution, never a partial answer.
      SapExactResult expired;
      expired.timed_out = true;
      expired.proven_optimal = false;
      expired.peak_states = std::max(out.peak_states, next.size());
      telemetry::count("dp.timeout");
      return expired;
    }
    if (overflow) out.proven_optimal = false;
    if (next.size() > options.max_states) {
      std::ranges::sort(next, [&](std::int32_t a, std::int32_t b) {
        return arena[static_cast<std::size_t>(a)].weight >
               arena[static_cast<std::size_t>(b)].weight;
      });
      next.resize(options.max_states);
      out.proven_optimal = false;
    }
    out.peak_states = std::max(out.peak_states, next.size());
    frontier = std::move(next);
  }

  telemetry::count("dp.runs");
  telemetry::count("dp.states.peak",
                   static_cast<std::int64_t>(out.peak_states));
  telemetry::count("dp.states.expanded",
                   static_cast<std::int64_t>(arena.size()));
  if (!out.proven_optimal) telemetry::count("dp.truncated");

  std::int32_t best = -1;
  for (std::int32_t sid : frontier) {
    if (best < 0 || arena[static_cast<std::size_t>(sid)].weight >
                        arena[static_cast<std::size_t>(best)].weight) {
      best = sid;
    }
  }
  if (best < 0) return out;  // no feasible state (cannot happen: empty set)
  out.weight = arena[static_cast<std::size_t>(best)].weight;
  for (std::int32_t sid = best; sid >= 0;
       sid = arena[static_cast<std::size_t>(sid)].parent) {
    const State& s = arena[static_cast<std::size_t>(sid)];
    out.solution.placements.insert(out.solution.placements.end(),
                                   s.added.begin(), s.added.end());
  }
  return out;
}

SapExactResult sap_exact_profile_dp(const PathInstance& inst,
                                    const SapExactOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return sap_exact_profile_dp(inst, all, options);
}

}  // namespace sap
