// SAP-U: the uniform-capacity special case (Section 1.1's lineage: Bar-Noy
// et al. [5] gave a 7-approximation, Bar-Yehuda et al. [6] a 2.582-
// approximation by combining an exact DP for delta-large tasks with a
// strip-packed solution for delta-small tasks).
//
// This solver follows the [6] architecture on integral instances:
//   large  (d > delta*cap): exact profile DP (pseudo-polynomial),
//   small  (d <= delta*cap): UFPP-U local ratio, then the strip
//                            transformation into the full-height strip,
//   result: the heavier of the two (Lemma 3).
// It is the specialized baseline the ablation bench compares the general
// (9+eps) pipeline against on uniform workloads.
#pragma once

#include "src/core/params.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

struct SapUniformOptions {
  Ratio delta{1, 4};      ///< small/large split threshold
  SapExactOptions dp;     ///< budget for the large-task DP
  /// Switch the large-task DP to grounded heuristic above this capacity.
  Value exact_capacity_limit = 512;
};

struct SapUniformReport {
  std::size_t num_small = 0;
  std::size_t num_large = 0;
  Weight small_weight = 0;
  Weight large_weight = 0;
  bool large_exact = true;
  double strip_retention = 1.0;
};

/// Solves SAP with uniform capacities. Throws std::invalid_argument when
/// capacities are not uniform. Always returns a feasible solution.
[[nodiscard]] SapSolution solve_sap_uniform(
    const PathInstance& inst, const SapUniformOptions& options = {},
    SapUniformReport* report = nullptr);

}  // namespace sap
