#include "src/sapu/sapu_solver.hpp"

#include <stdexcept>

#include "src/dsa/strip_transform.hpp"
#include "src/ufpp/local_ratio.hpp"

namespace sap {

SapSolution solve_sap_uniform(const PathInstance& inst,
                              const SapUniformOptions& options,
                              SapUniformReport* report) {
  const Value cap = inst.min_capacity();
  if (cap != inst.max_capacity()) {
    throw std::invalid_argument(
        "solve_sap_uniform: capacities must be uniform");
  }

  std::vector<TaskId> small;
  std::vector<TaskId> large;
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const auto id = static_cast<TaskId>(j);
    (inst.is_small(id, options.delta) ? small : large).push_back(id);
  }

  // Large branch: exact (or grounded-heuristic) DP on the large tasks.
  SapExactOptions dp = options.dp;
  if (cap > options.exact_capacity_limit) dp.grounded_only = true;
  const SapExactResult large_result =
      sap_exact_profile_dp(inst, large, dp);

  // Small branch: UFPP-U local ratio at full capacity, then strip-pack the
  // result into the [0, cap) strip.
  const UfppSolution small_ufpp =
      ufpp_uniform_narrow_local_ratio(inst, small, cap);
  const StripTransformResult strip =
      strip_transform(inst, small_ufpp, cap);

  if (report != nullptr) {
    report->num_small = small.size();
    report->num_large = large.size();
    report->small_weight = strip.solution.weight(inst);
    report->large_weight = large_result.weight;
    report->large_exact = large_result.proven_optimal;
    report->strip_retention = strip.retention();
  }
  return strip.solution.weight(inst) >= large_result.weight
             ? strip.solution
             : large_result.solution;
}

}  // namespace sap
