#include "src/io/canonical.hpp"

namespace sap {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr bool is_blank(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r';
}

}  // namespace

std::string canonical_instance_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t line_start = out.size();
  bool pending_space = false;
  bool in_comment = false;
  for (const char c : text) {
    if (c == '\n') {
      if (out.size() > line_start) {
        out += '\n';
        line_start = out.size();
      }
      pending_space = false;
      in_comment = false;
      continue;
    }
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (is_blank(c)) {
      // Collapse a run of blanks to one separator — emitted lazily so
      // leading/trailing blanks vanish instead of becoming spaces.
      pending_space = out.size() > line_start;
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  if (out.size() > line_start) out += '\n';
  return out;
}

void InstanceHasher::update(std::string_view bytes) noexcept {
  // Pack bytes into 64-bit words (tail zero-padded; the running length
  // disambiguates pad bytes from real zeros) and run each word through
  // splitmix64, alternating lanes with cross-feed so the two lanes observe
  // different functions of the same stream.
  std::uint64_t word = 0;
  unsigned filled = 0;
  for (const char c : bytes) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      lane0_ = splitmix64(lane0_ ^ word);
      lane1_ = splitmix64(lane1_ + (word ^ lane0_));
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) {
    lane0_ = splitmix64(lane0_ ^ word);
    lane1_ = splitmix64(lane1_ + (word ^ lane0_));
  }
  length_ += bytes.size();
}

void InstanceHasher::update_u64(std::uint64_t value) noexcept {
  lane0_ = splitmix64(lane0_ ^ value);
  lane1_ = splitmix64(lane1_ + (value ^ lane0_));
  length_ += 8;
}

InstanceDigest InstanceHasher::digest() const noexcept {
  InstanceDigest d;
  d.hi = splitmix64(lane0_ ^ splitmix64(length_));
  d.lo = splitmix64(lane1_ + splitmix64(length_ ^ d.hi));
  return d;
}

InstanceDigest canonical_digest(std::string_view text) {
  InstanceHasher hasher;
  hasher.update(canonical_instance_text(text));
  return hasher.digest();
}

}  // namespace sap
