// Canonical form + stable digest for instance/request text, the key of the
// sapd solve cache (src/service/solve_cache.hpp).
//
// Two requests that differ only in formatting — comments, indentation,
// trailing blanks, CRLF — describe the same instance, so the cache keys on a
// *canonical* rendering of the text rather than the raw bytes: '#' comments
// are stripped, every maximal run of blanks/tabs collapses to one space, and
// blank lines disappear. Canonicalization never merges distinct token
// streams (a separator survives wherever one existed), so a canonical-text
// collision implies token-level equality; the converse misses (same
// instance, different token spelling like "07" vs "7") only cost a cache
// miss, never a wrong hit.
//
// The digest is a splitmix64-style two-lane 128-bit mix: fast, seedless and
// stable across platforms/runs (unlike std::hash), which the sharded server
// also relies on to route identical instances to the same shard. It is not
// cryptographic; sapd trusts its cache only as far as it trusts its peers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sap {

/// A 128-bit content digest; value type, usable as a hash-map key.
struct InstanceDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const InstanceDigest&,
                         const InstanceDigest&) = default;
};

/// Canonical rendering of line-oriented instance/request text: comments and
/// blank lines dropped, runs of spaces/tabs/CR collapsed, every surviving
/// line '\n'-terminated.
[[nodiscard]] std::string canonical_instance_text(std::string_view text);

/// Splitmix64 two-lane digest over a sequence of framed fields (no
/// canonicalization). Each update() call is one field: chunk boundaries are
/// part of the hashed stream, so update("ful") + update("lx") never
/// collides with update("full") + update("x") — feed one logical value per
/// call rather than streaming a value in pieces.
class InstanceHasher {
 public:
  void update(std::string_view bytes) noexcept;
  /// Mixes a 64-bit value (e.g. a seed or flag word) into the stream.
  void update_u64(std::uint64_t value) noexcept;
  /// Finalizes over everything fed so far; the hasher may keep being fed
  /// afterwards (digest() is a pure function of the state).
  [[nodiscard]] InstanceDigest digest() const noexcept;

 private:
  std::uint64_t lane0_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t lane1_ = 0xbf58476d1ce4e5b9ull;
  std::uint64_t length_ = 0;
};

/// Convenience: digest of the canonical form of `text`.
[[nodiscard]] InstanceDigest canonical_digest(std::string_view text);

}  // namespace sap
