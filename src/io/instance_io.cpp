#include "src/io/instance_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sap {
namespace {

/// Token reader that skips '#' comments and tracks line numbers for errors.
class TokenReader {
 public:
  explicit TokenReader(std::istream& is) : is_(is) {}

  std::string next(const char* what) {
    std::string token;
    for (;;) {
      if (!(is_ >> token)) {
        throw std::invalid_argument(std::string("instance_io: expected ") +
                                    what + ", got end of input");
      }
      if (token.front() == '#') {
        std::string rest;
        std::getline(is_, rest);
        continue;
      }
      return token;
    }
  }

  std::int64_t next_int(const char* what) {
    const std::string token = next(what);
    try {
      std::size_t used = 0;
      const std::int64_t value = std::stoll(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return value;
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("instance_io: expected ") +
                                  what + ", got '" + token + "'");
    }
  }

  void expect(const std::string& literal) {
    const std::string token = next(literal.c_str());
    if (token != literal) {
      throw std::invalid_argument("instance_io: expected '" + literal +
                                  "', got '" + token + "'");
    }
  }

 private:
  std::istream& is_;
};

std::size_t checked_count(std::int64_t n, const char* what) {
  if (n < 0 || n > 10'000'000) {
    throw std::invalid_argument(std::string("instance_io: implausible ") +
                                what + " count");
  }
  return static_cast<std::size_t>(n);
}

std::vector<Value> read_capacities(TokenReader& reader, std::size_t m) {
  reader.expect("capacities");
  std::vector<Value> caps(m);
  for (auto& c : caps) c = reader.next_int("capacity");
  return caps;
}

}  // namespace

void write_path_instance(std::ostream& os, const PathInstance& inst) {
  os << "sap-path v1\n";
  os << "edges " << inst.num_edges() << "\n";
  os << "capacities";
  for (Value c : inst.capacities()) os << ' ' << c;
  os << "\n";
  os << "tasks " << inst.num_tasks() << "\n";
  for (const Task& t : inst.tasks()) {
    os << t.first << ' ' << t.last << ' ' << t.demand << ' ' << t.weight
       << "\n";
  }
}

PathInstance read_path_instance(std::istream& is) {
  TokenReader reader(is);
  reader.expect("sap-path");
  reader.expect("v1");
  reader.expect("edges");
  const std::size_t m = checked_count(reader.next_int("edge count"), "edge");
  auto caps = read_capacities(reader, m);
  reader.expect("tasks");
  const std::size_t n = checked_count(reader.next_int("task count"), "task");
  std::vector<Task> tasks(n);
  for (Task& t : tasks) {
    t.first = static_cast<EdgeId>(reader.next_int("task first edge"));
    t.last = static_cast<EdgeId>(reader.next_int("task last edge"));
    t.demand = reader.next_int("task demand");
    t.weight = reader.next_int("task weight");
  }
  return PathInstance(std::move(caps), std::move(tasks));
}

void write_ring_instance(std::ostream& os, const RingInstance& inst) {
  os << "sap-ring v1\n";
  os << "edges " << inst.num_edges() << "\n";
  os << "capacities";
  for (Value c : inst.capacities()) os << ' ' << c;
  os << "\n";
  os << "tasks " << inst.num_tasks() << "\n";
  for (const RingTask& t : inst.tasks()) {
    os << t.start << ' ' << t.end << ' ' << t.demand << ' ' << t.weight
       << "\n";
  }
}

RingInstance read_ring_instance(std::istream& is) {
  TokenReader reader(is);
  reader.expect("sap-ring");
  reader.expect("v1");
  reader.expect("edges");
  const std::size_t m = checked_count(reader.next_int("edge count"), "edge");
  auto caps = read_capacities(reader, m);
  reader.expect("tasks");
  const std::size_t n = checked_count(reader.next_int("task count"), "task");
  std::vector<RingTask> tasks(n);
  for (RingTask& t : tasks) {
    t.start = static_cast<int>(reader.next_int("task start vertex"));
    t.end = static_cast<int>(reader.next_int("task end vertex"));
    t.demand = reader.next_int("task demand");
    t.weight = reader.next_int("task weight");
  }
  return RingInstance(std::move(caps), std::move(tasks));
}

void write_sap_solution(std::ostream& os, const SapSolution& sol) {
  os << "sap-solution v1\n";
  os << "placements " << sol.placements.size() << "\n";
  for (const Placement& p : sol.placements) {
    os << p.task << ' ' << p.height << "\n";
  }
}

SapSolution read_sap_solution(std::istream& is) {
  TokenReader reader(is);
  reader.expect("sap-solution");
  reader.expect("v1");
  reader.expect("placements");
  const std::size_t k =
      checked_count(reader.next_int("placement count"), "placement");
  SapSolution sol;
  sol.placements.resize(k);
  for (Placement& p : sol.placements) {
    p.task = static_cast<TaskId>(reader.next_int("placement task"));
    p.height = reader.next_int("placement height");
  }
  return sol;
}

std::string to_string(const PathInstance& inst) {
  std::ostringstream os;
  write_path_instance(os, inst);
  return os.str();
}

PathInstance path_instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_path_instance(is);
}

}  // namespace sap
