#include "src/io/instance_io.hpp"

#include <cctype>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sap {
namespace {

/// Token reader that skips '#' comments and tracks 1-based line numbers so
/// every parse error can say where it happened. Reads character-wise (the
/// formatted `>>` extractor cannot count newlines).
class TokenReader {
 public:
  explicit TokenReader(std::istream& is) : is_(is) {}

  [[nodiscard]] int line() const noexcept { return line_; }

  std::string next(const char* what) {
    skip_space_and_comments();
    std::string token;
    for (;;) {
      const int c = is_.peek();
      if (c == std::char_traits<char>::eof() ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      token.push_back(static_cast<char>(get()));
    }
    if (token.empty()) {
      fail(std::string("expected ") + what + ", got end of input");
    }
    return token;
  }

  /// Parses the next token as an integer in [lo, hi]; overflowing tokens
  /// are rejected (std::stoll throws std::out_of_range) rather than
  /// wrapped, so a count can never alias a small value.
  std::int64_t next_int(
      const char* what,
      std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
      std::int64_t hi = std::numeric_limits<std::int64_t>::max()) {
    const std::string token = next(what);
    std::int64_t value = 0;
    try {
      std::size_t used = 0;
      value = std::stoll(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      fail(std::string("expected ") + what + ", got '" + token + "'");
    }
    if (value < lo || value > hi) {
      fail(std::string(what) + " " + token + " out of range [" +
           std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    return value;
  }

  void expect(const std::string& literal) {
    const std::string token = next(literal.c_str());
    if (token != literal) {
      fail("expected '" + literal + "', got '" + token + "'");
    }
  }

  /// Count of a collection, checked against `cap` before the caller
  /// allocates anything proportional to it.
  std::size_t count(const char* what, std::size_t cap) {
    const std::int64_t n =
        next_int(what, 0, std::numeric_limits<std::int64_t>::max());
    if (static_cast<std::uint64_t>(n) > cap) {
      fail(std::string(what) + " " + std::to_string(n) + " exceeds limit " +
           std::to_string(cap));
    }
    return static_cast<std::size_t>(n);
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("instance_io: line " + std::to_string(line_) +
                                ": " + why);
  }

 private:
  int get() {
    const int c = is_.get();
    if (c == '\n') ++line_;
    return c;
  }

  void skip_space_and_comments() {
    for (;;) {
      const int c = is_.peek();
      if (c == std::char_traits<char>::eof()) return;
      if (c == '#') {
        while (is_.peek() != std::char_traits<char>::eof() && get() != '\n') {
        }
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        get();
        continue;
      }
      return;
    }
  }

  std::istream& is_;
  int line_ = 1;
};

constexpr std::int64_t kEdgeIdMin = std::numeric_limits<EdgeId>::min();
constexpr std::int64_t kEdgeIdMax = std::numeric_limits<EdgeId>::max();
constexpr std::int64_t kTaskIdMin = std::numeric_limits<TaskId>::min();
constexpr std::int64_t kTaskIdMax = std::numeric_limits<TaskId>::max();

std::vector<Value> read_capacities(TokenReader& reader, std::size_t m) {
  reader.expect("capacities");
  std::vector<Value> caps(m);
  for (auto& c : caps) c = reader.next_int("capacity");
  return caps;
}

}  // namespace

void write_path_instance(std::ostream& os, const PathInstance& inst) {
  os << "sap-path v1\n";
  os << "edges " << inst.num_edges() << "\n";
  os << "capacities";
  for (Value c : inst.capacities()) os << ' ' << c;
  os << "\n";
  os << "tasks " << inst.num_tasks() << "\n";
  for (const Task& t : inst.tasks()) {
    os << t.first << ' ' << t.last << ' ' << t.demand << ' ' << t.weight
       << "\n";
  }
}

PathInstance read_path_instance(std::istream& is, const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("sap-path");
  reader.expect("v1");
  reader.expect("edges");
  const std::size_t m = reader.count("edge count", limits.max_edges);
  auto caps = read_capacities(reader, m);
  reader.expect("tasks");
  const std::size_t n = reader.count("task count", limits.max_tasks);
  std::vector<Task> tasks(n);
  for (Task& t : tasks) {
    t.first = static_cast<EdgeId>(
        reader.next_int("task first edge", kEdgeIdMin, kEdgeIdMax));
    t.last = static_cast<EdgeId>(
        reader.next_int("task last edge", kEdgeIdMin, kEdgeIdMax));
    t.demand = reader.next_int("task demand");
    t.weight = reader.next_int("task weight");
  }
  return PathInstance(std::move(caps), std::move(tasks));
}

void write_ring_instance(std::ostream& os, const RingInstance& inst) {
  os << "sap-ring v1\n";
  os << "edges " << inst.num_edges() << "\n";
  os << "capacities";
  for (Value c : inst.capacities()) os << ' ' << c;
  os << "\n";
  os << "tasks " << inst.num_tasks() << "\n";
  for (const RingTask& t : inst.tasks()) {
    os << t.start << ' ' << t.end << ' ' << t.demand << ' ' << t.weight
       << "\n";
  }
}

RingInstance read_ring_instance(std::istream& is, const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("sap-ring");
  reader.expect("v1");
  reader.expect("edges");
  const std::size_t m = reader.count("edge count", limits.max_edges);
  auto caps = read_capacities(reader, m);
  reader.expect("tasks");
  const std::size_t n = reader.count("task count", limits.max_tasks);
  std::vector<RingTask> tasks(n);
  for (RingTask& t : tasks) {
    t.start = static_cast<int>(
        reader.next_int("task start vertex", kEdgeIdMin, kEdgeIdMax));
    t.end = static_cast<int>(
        reader.next_int("task end vertex", kEdgeIdMin, kEdgeIdMax));
    t.demand = reader.next_int("task demand");
    t.weight = reader.next_int("task weight");
  }
  return RingInstance(std::move(caps), std::move(tasks));
}

void write_sap_solution(std::ostream& os, const SapSolution& sol) {
  os << "sap-solution v1\n";
  os << "placements " << sol.placements.size() << "\n";
  for (const Placement& p : sol.placements) {
    os << p.task << ' ' << p.height << "\n";
  }
}

SapSolution read_sap_solution(std::istream& is, const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("sap-solution");
  reader.expect("v1");
  reader.expect("placements");
  const std::size_t k =
      reader.count("placement count", limits.max_placements);
  SapSolution sol;
  sol.placements.resize(k);
  for (Placement& p : sol.placements) {
    p.task = static_cast<TaskId>(
        reader.next_int("placement task", kTaskIdMin, kTaskIdMax));
    p.height = reader.next_int("placement height");
  }
  return sol;
}

void write_ring_solution(std::ostream& os, const RingSapSolution& sol) {
  os << "sap-ring-solution v1\n";
  os << "placements " << sol.placements.size() << "\n";
  for (const RingPlacement& p : sol.placements) {
    os << p.task << ' ' << p.height << ' ' << (p.clockwise ? 1 : 0) << "\n";
  }
}

RingSapSolution read_ring_solution(std::istream& is,
                                   const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("sap-ring-solution");
  reader.expect("v1");
  reader.expect("placements");
  const std::size_t k =
      reader.count("placement count", limits.max_placements);
  RingSapSolution sol;
  sol.placements.resize(k);
  for (RingPlacement& p : sol.placements) {
    p.task = static_cast<TaskId>(
        reader.next_int("placement task", kTaskIdMin, kTaskIdMax));
    p.height = reader.next_int("placement height");
    p.clockwise = reader.next_int("placement route", 0, 1) != 0;
  }
  return sol;
}

void write_round_assignment(std::ostream& os,
                            const round::RoundAssignment& assignment) {
  os << "round-solution v1\n";
  os << "kind " << round::round_kind_name(assignment.kind) << "\n";
  os << "rounds " << assignment.rounds.size() << "\n";
  for (const SapSolution& sol : assignment.rounds) {
    os << "round " << sol.placements.size() << "\n";
    for (const Placement& p : sol.placements) {
      os << p.task << ' ' << p.height << "\n";
    }
  }
}

round::RoundAssignment read_round_assignment(std::istream& is,
                                             const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("round-solution");
  reader.expect("v1");
  reader.expect("kind");
  const std::string kind = reader.next("round kind");
  round::RoundAssignment assignment;
  if (kind == "round-ufp") {
    assignment.kind = round::RoundKind::kUfp;
  } else if (kind == "round-sap") {
    assignment.kind = round::RoundKind::kSap;
  } else {
    reader.fail("expected round kind 'round-ufp' or 'round-sap', got '" +
                kind + "'");
  }
  reader.expect("rounds");
  const std::size_t r = reader.count("round count", limits.max_placements);
  assignment.rounds.resize(r);
  std::size_t total = 0;
  for (SapSolution& sol : assignment.rounds) {
    reader.expect("round");
    const std::size_t k =
        reader.count("round placement count", limits.max_placements - total);
    total += k;
    sol.placements.resize(k);
    for (Placement& p : sol.placements) {
      p.task = static_cast<TaskId>(
          reader.next_int("placement task", kTaskIdMin, kTaskIdMax));
      p.height = reader.next_int("placement height");
    }
  }
  return assignment;
}

void write_certificate(std::ostream& os, const cert::Certificate& cert) {
  os << "sap-cert v1\n";
  os << "kind "
     << (cert.kind == cert::Certificate::Kind::kRing ? "ring" : "path")
     << "\n";
  os << "weight " << cert.solution_weight << "\n";
  os << "rung " << cert::ub_rung_name(cert.ub.rung) << "\n";
  os << "ub " << cert.ub.value << "\n";
  os << "alpha " << cert.alpha_num << ' ' << cert.alpha_den << "\n";
  os << "prices " << cert.ub.dual.scale << ' '
     << cert.ub.dual.edge_price.size() << "\n";
  if (!cert.ub.dual.edge_price.empty()) {
    bool first = true;
    for (std::int64_t y : cert.ub.dual.edge_price) {
      os << (first ? "" : " ") << y;
      first = false;
    }
    os << "\n";
  }
  os << "end\n";
}

cert::Certificate read_certificate(std::istream& is,
                                   const ReadLimits& limits) {
  TokenReader reader(is);
  reader.expect("sap-cert");
  reader.expect("v1");
  cert::Certificate cert;
  reader.expect("kind");
  const std::string kind = reader.next("certificate kind");
  if (kind == "path") {
    cert.kind = cert::Certificate::Kind::kPath;
  } else if (kind == "ring") {
    cert.kind = cert::Certificate::Kind::kRing;
  } else {
    reader.fail("expected certificate kind 'path' or 'ring', got '" + kind +
                "'");
  }
  reader.expect("weight");
  cert.solution_weight = reader.next_int("certificate weight");
  reader.expect("rung");
  const std::string rung = reader.next("upper-bound rung");
  try {
    cert.ub.rung = cert::parse_ub_rung(rung);
  } catch (const std::invalid_argument&) {
    reader.fail("unknown upper-bound rung '" + rung + "'");
  }
  reader.expect("ub");
  cert.ub.value = reader.next_int("upper bound");
  reader.expect("alpha");
  cert.alpha_num = reader.next_int("alpha numerator");
  cert.alpha_den = reader.next_int("alpha denominator");
  reader.expect("prices");
  cert.ub.dual.scale = reader.next_int("dual scale");
  const std::size_t m = reader.count("dual price count", limits.max_edges);
  cert.ub.dual.edge_price.resize(m);
  for (auto& y : cert.ub.dual.edge_price) y = reader.next_int("dual price");
  reader.expect("end");
  return cert;
}

std::string to_string(const PathInstance& inst) {
  std::ostringstream os;
  write_path_instance(os, inst);
  return os.str();
}

PathInstance path_instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_path_instance(is);
}

}  // namespace sap
