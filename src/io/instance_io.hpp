// Plain-text (de)serialization of instances and solutions, so workloads can
// be saved, shared and replayed (and so the CLI example can exist).
//
// Format (line oriented, '#' comments, whitespace separated):
//   sap-path v1
//   edges <m>
//   capacities c_0 ... c_{m-1}
//   tasks <n>
//   <first> <last> <demand> <weight>     (n lines)
//
//   sap-ring v1
//   edges <m>
//   capacities c_0 ... c_{m-1}
//   tasks <n>
//   <start> <end> <demand> <weight>      (n lines)
//
//   sap-solution v1
//   placements <k>
//   <task> <height>                      (k lines)
//
//   sap-ring-solution v1
//   placements <k>
//   <task> <height> <clockwise 0|1>      (k lines)
//
//   round-solution v1
//   kind round-ufp                       (or: round-sap)
//   rounds <r>
//   round <k_i>                          (r blocks)
//   <task> <height>                      (k_i lines; heights 0 for
//                                         round-ufp — enforced by the
//                                         verifier, not the reader)
//
//   sap-cert v1
//   kind path                            (or: ring)
//   weight <w(S)>
//   rung <exact_dp|ufpp_bnb|lp_dual|total_weight>
//   ub <value>
//   alpha <num> <den>
//   prices <scale> <m>                   (m = 0 unless rung is lp_dual)
//   y_0 ... y_{m-1}                      (only when m > 0)
//   end
//
// The readers are safe on untrusted input (the sapd service feeds them
// network-supplied payloads): counts are parsed overflow-safely and checked
// against ReadLimits *before* any allocation, edge/vertex indices are range
// checked before narrowing, and every error carries the 1-based line number
// where parsing stopped.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "src/cert/certificate.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"
#include "src/round/solution.hpp"

namespace sap {

/// Upper bounds enforced by the readers before allocating. The defaults
/// admit anything a local workflow plausibly produces; servers parsing
/// untrusted payloads should pass much tighter caps.
struct ReadLimits {
  std::size_t max_edges = 10'000'000;
  std::size_t max_tasks = 10'000'000;
  std::size_t max_placements = 10'000'000;
};

/// Serializes a path instance. Throws std::ios_base::failure on bad stream.
void write_path_instance(std::ostream& os, const PathInstance& inst);

/// Parses a path instance; throws std::invalid_argument with a line-
/// numbered message on malformed input or a count exceeding `limits`.
[[nodiscard]] PathInstance read_path_instance(std::istream& is,
                                              const ReadLimits& limits = {});

void write_ring_instance(std::ostream& os, const RingInstance& inst);
[[nodiscard]] RingInstance read_ring_instance(std::istream& is,
                                              const ReadLimits& limits = {});

void write_sap_solution(std::ostream& os, const SapSolution& sol);
[[nodiscard]] SapSolution read_sap_solution(std::istream& is,
                                            const ReadLimits& limits = {});

void write_ring_solution(std::ostream& os, const RingSapSolution& sol);
[[nodiscard]] RingSapSolution read_ring_solution(std::istream& is,
                                                 const ReadLimits& limits = {});

/// Serializes a round assignment (`round-solution v1`). The reader bounds
/// both the round count and the cumulative placement count by
/// `ReadLimits::max_placements` before allocating.
void write_round_assignment(std::ostream& os,
                            const round::RoundAssignment& assignment);
[[nodiscard]] round::RoundAssignment read_round_assignment(
    std::istream& is, const ReadLimits& limits = {});

/// Serializes a certificate (`sap-cert v1`); the dual-price count is bounded
/// by `ReadLimits::max_edges` on the way back in.
void write_certificate(std::ostream& os, const cert::Certificate& cert);
[[nodiscard]] cert::Certificate read_certificate(std::istream& is,
                                                 const ReadLimits& limits = {});

/// Convenience round-trips through std::string (used by tests and the CLI).
[[nodiscard]] std::string to_string(const PathInstance& inst);
[[nodiscard]] PathInstance path_instance_from_string(const std::string& text);

}  // namespace sap
