// Plain-text (de)serialization of instances and solutions, so workloads can
// be saved, shared and replayed (and so the CLI example can exist).
//
// Format (line oriented, '#' comments, whitespace separated):
//   sap-path v1
//   edges <m>
//   capacities c_0 ... c_{m-1}
//   tasks <n>
//   <first> <last> <demand> <weight>     (n lines)
//
//   sap-ring v1
//   edges <m>
//   capacities c_0 ... c_{m-1}
//   tasks <n>
//   <start> <end> <demand> <weight>      (n lines)
//
//   sap-solution v1
//   placements <k>
//   <task> <height>                      (k lines)
#pragma once

#include <iosfwd>
#include <string>

#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Serializes a path instance. Throws std::ios_base::failure on bad stream.
void write_path_instance(std::ostream& os, const PathInstance& inst);

/// Parses a path instance; throws std::invalid_argument with a line-
/// numbered message on malformed input.
[[nodiscard]] PathInstance read_path_instance(std::istream& is);

void write_ring_instance(std::ostream& os, const RingInstance& inst);
[[nodiscard]] RingInstance read_ring_instance(std::istream& is);

void write_sap_solution(std::ostream& os, const SapSolution& sol);
[[nodiscard]] SapSolution read_sap_solution(std::istream& is);

/// Convenience round-trips through std::string (used by tests and the CLI).
[[nodiscard]] std::string to_string(const PathInstance& inst);
[[nodiscard]] PathInstance path_instance_from_string(const std::string& text);

}  // namespace sap
