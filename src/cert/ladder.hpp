// The upper-bound ladder: the cheapest applicable proven upper bound on OPT.
//
// Rungs, tightest first (OPT_SAP <= OPT_UFPP <= LP <= sum w justifies
// stopping at the first rung that proves a bound):
//   1. exact_dp      — exact SAP optimum via the profile DP (tiny instances);
//   2. ufpp_bnb      — exact UFPP optimum via branch-and-bound;
//   3. lp_dual       — the UFPP LP relaxation, certified by an exact
//                      rational re-check of dual feasibility: the simplex
//                      *suggests* prices, the ladder rounds them to a scaled
//                      integral vector y >= 0, recomputes each task's slack
//                      z_j = max(0, w_j*S - d_j * sum_{e in I_j} y_e)
//                      exactly in 128-bit arithmetic, and takes
//                      UB = floor((sum c_e y_e + sum z_j) / S). By weak LP
//                      duality ANY such (y, z) is dual-feasible, so double
//                      round-off can make the bound looser but never invalid,
//                      and floor() is sound because OPT is integral;
//   4. total_weight  — sum of all weights, the unconditional fallback.
//
// The result records which rung fired, its bound, and per-rung attempt
// timings so callers can report the cost of certification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/cert/certificate.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/util/deadline.hpp"

namespace sap::cert {

struct LadderOptions {
  /// Rung 1: exact SAP profile DP. Applicable when the instance is within
  /// both caps; used only when the DP proves optimality within its beam.
  bool try_exact_dp = true;
  std::size_t exact_dp_max_tasks = 24;
  Value exact_dp_max_capacity = 48;
  SapExactOptions dp{.max_states = 100'000};

  /// Rung 2: exact UFPP branch-and-bound. Applicable when num_tasks is
  /// within the cap; used only when the search proves optimality within its
  /// node budget.
  bool try_ufpp_bnb = true;
  std::size_t bnb_max_tasks = 18;
  UfppExactOptions bnb{.max_nodes = 2'000'000};

  /// Rung 3: rational-repaired LP dual. Always applicable on non-empty
  /// instances; fails only if the simplex does not reach optimality or the
  /// repaired bound overflows / is looser than sum w.
  bool try_lp_dual = true;
  /// Fixed-point denominator for the repaired dual prices.
  std::int64_t dual_scale = std::int64_t{1} << 20;

  /// Cooperative cancellation for the whole ladder: an expensive rung whose
  /// slice runs out is recorded as `timed_out` and the ladder falls through
  /// to the next (cheaper) rung — total_weight is instant, so a deadline
  /// degrades the bound rather than losing it.
  Deadline deadline{};
};

/// What happened at one rung of the ladder (in try order).
struct LadderRungAttempt {
  UbRung rung = UbRung::kTotalWeight;
  bool applicable = false;  ///< rung was within its caps and attempted
  bool proved = false;      ///< rung produced a proven bound
  bool timed_out = false;   ///< the deadline cut this rung short
  Weight value = 0;         ///< the bound, when proved
  double seconds = 0.0;     ///< wall time spent on the attempt
};

struct LadderResult {
  /// False only when every rung failed (e.g. sum w overflows int64); then
  /// `best` is meaningless and no certificate can be produced.
  bool proven = false;
  UpperBoundCertificate best;
  std::vector<LadderRungAttempt> attempts;
};

/// Runs the ladder on a path instance, returning the first rung that proves
/// a bound (tightest first).
[[nodiscard]] LadderResult run_upper_bound_ladder(
    const PathInstance& inst, const LadderOptions& options = {});

/// Ring ladder: only the lp_dual rung (per-(task, direction) dual rows; the
/// slack uses the cheaper of the two route directions) and the total_weight
/// fallback apply.
[[nodiscard]] LadderResult run_ring_upper_bound_ladder(
    const RingInstance& inst, const LadderOptions& options = {});

}  // namespace sap::cert
