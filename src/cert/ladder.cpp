#include "src/cert/ladder.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/lp/simplex.hpp"
#include "src/util/telemetry.hpp"

namespace sap::cert {
namespace {

// sapkit-lint: allow(determinism) -- the monotonic clock feeds per-rung
// wall-time telemetry only; ladder bounds and rung order never read it.
using Clock = std::chrono::steady_clock;

// sapkit-lint: begin-allow(float-ban) -- wall-time measurement feeds the
// per-rung telemetry only; it never touches a bound or a solver decision.
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
// sapkit-lint: end-allow(float-ban)

const char* rung_counter_name(UbRung rung) {
  switch (rung) {
    case UbRung::kExactDp:
      return "cert.ladder.exact_dp";
    case UbRung::kUfppBnb:
      return "cert.ladder.ufpp_bnb";
    case UbRung::kLpDual:
      return "cert.ladder.lp_dual";
    case UbRung::kTotalWeight:
      return "cert.ladder.total_weight";
  }
  return "cert.ladder.total_weight";
}

bool checked_add(Int128 a, Int128 b, Int128* out) {
  return !__builtin_add_overflow(a, b, out);
}

bool checked_mul(Int128 a, Int128 b, Int128* out) {
  return !__builtin_mul_overflow(a, b, out);
}

/// Sum of all task weights, or nullopt-style failure via the bool return.
bool checked_total_weight(std::span<const Weight> weights, Weight* out) {
  Weight total = 0;
  for (Weight w : weights) {
    if (__builtin_add_overflow(total, w, &total)) return false;
  }
  *out = total;
  return true;
}

/// Rounds one simplex-suggested price to the scaled integral grid. Any
/// non-negative result keeps the bound valid; the guard only rejects values
/// too large to represent.
// sapkit-lint: begin-allow(float-ban) -- the declared LP-dual-repair region:
// floating-point simplex output is a *suggestion* only; every repaired price
// is re-evaluated exactly in Int128 (evaluate_dual_bound) before any bound
// is emitted, so float error can weaken the bound but never falsify it.
bool repair_price(double y, std::int64_t scale, std::int64_t* out) {
  if (!std::isfinite(y)) return false;
  const double scaled = std::max(0.0, y) * static_cast<double>(scale);
  if (scaled >= 9.0e18) return false;
  *out = static_cast<std::int64_t>(std::llround(scaled));
  return true;
}
// sapkit-lint: end-allow(float-ban)

/// Exact evaluation of the repaired dual bound shared by path and ring:
/// UB = floor((sum_e c_e*Y_e + sum_j z_j) / S) with
/// z_j = max(0, w_j*S - d_j * price_j) and price_j supplied per task
/// (the route price sum — for rings, the cheaper direction). Returns false
/// on 128-bit overflow.
bool evaluate_dual_bound(std::span<const Value> capacities,
                         std::span<const std::int64_t> prices,
                         std::span<const Int128> task_price,
                         std::span<const Value> demands,
                         std::span<const Weight> weights, std::int64_t scale,
                         Weight* out) {
  Int128 total = 0;
  for (std::size_t e = 0; e < capacities.size(); ++e) {
    Int128 term = 0;
    if (!checked_mul(capacities[e], prices[e], &term)) return false;
    if (!checked_add(total, term, &total)) return false;
  }
  for (std::size_t j = 0; j < weights.size(); ++j) {
    Int128 ws = 0;
    if (!checked_mul(weights[j], scale, &ws)) return false;
    Int128 dp = 0;
    if (!checked_mul(demands[j], task_price[j], &dp)) return false;
    Int128 slack = ws - dp;  // subtraction of in-range products cannot wrap
    if (slack < 0) slack = 0;
    if (!checked_add(total, slack, &total)) return false;
  }
  const Int128 ub = total / scale;  // total >= 0, scale > 0: floor
  if (ub > std::numeric_limits<Weight>::max()) return false;
  *out = static_cast<Weight>(ub);
  return true;
}

/// Attempts the lp_dual rung for a path instance: solves the dual of the
/// UFPP LP relaxation (min c.y + sum z s.t. d_j sum_{e in I_j} y_e + z_j >=
/// w_j, y,z >= 0) with the primal simplex, then repairs the prices exactly.
bool try_path_lp_dual(const PathInstance& inst, const LadderOptions& options,
                      UpperBoundCertificate* out, bool* timed_out) {
  const std::size_t m = inst.num_edges();
  const std::size_t n = inst.num_tasks();
  if (n == 0 || options.dual_scale <= 0) return false;

  // sapkit-lint: begin-allow(float-ban) -- LP-dual-repair region: the dual
  // LP is posed in doubles for the simplex, but its solution is only ever a
  // hint; the emitted bound comes from the exact Int128 re-evaluation below.
  LpProblem dual;
  dual.objective.assign(m + n, 0.0);
  for (std::size_t e = 0; e < m; ++e) {
    dual.objective[e] = -static_cast<double>(inst.capacity(
        static_cast<EdgeId>(e)));
  }
  for (std::size_t j = 0; j < n; ++j) dual.objective[m + j] = -1.0;
  dual.constraints.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Task& t = inst.task(static_cast<TaskId>(j));
    LpConstraint row;
    row.coeffs.assign(m + n, 0.0);
    for (EdgeId e = t.first; e <= t.last; ++e) {
      row.coeffs[static_cast<std::size_t>(e)] = static_cast<double>(t.demand);
    }
    row.coeffs[m + j] = 1.0;
    row.relation = LpRelation::kGreaterEqual;
    row.rhs = static_cast<double>(t.weight);
    dual.constraints.push_back(std::move(row));
  }

  const LpSolution lp = solve_lp(dual, 0, options.deadline);
  // sapkit-lint: end-allow(float-ban)
  if (lp.status == LpStatus::kTimeout) {
    *timed_out = true;
    return false;
  }
  if (lp.status != LpStatus::kOptimal) return false;

  DualWitness witness;
  witness.scale = options.dual_scale;
  witness.edge_price.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!repair_price(lp.x[e], witness.scale, &witness.edge_price[e])) {
      return false;
    }
  }

  std::vector<Int128> task_price(n, 0);
  std::vector<Value> demands(n);
  std::vector<Weight> weights(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Task& t = inst.task(static_cast<TaskId>(j));
    Int128 sum = 0;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      sum += witness.edge_price[static_cast<std::size_t>(e)];
    }
    task_price[j] = sum;
    demands[j] = t.demand;
    weights[j] = t.weight;
  }

  Weight ub = 0;
  if (!evaluate_dual_bound(inst.capacities(), witness.edge_price, task_price,
                           demands, weights, witness.scale, &ub)) {
    return false;
  }
  out->rung = UbRung::kLpDual;
  out->value = ub;
  out->dual = std::move(witness);
  return true;
}

/// The ring analogue: one dual row per (task, direction); the exact slack
/// uses the cheaper direction, matching the verifier in check.cpp.
bool try_ring_lp_dual(const RingInstance& inst, const LadderOptions& options,
                      UpperBoundCertificate* out, bool* timed_out) {
  const std::size_t m = inst.num_edges();
  const std::size_t n = inst.num_tasks();
  if (n == 0 || options.dual_scale <= 0) return false;

  // sapkit-lint: begin-allow(float-ban) -- LP-dual-repair region: the dual
  // LP is posed in doubles for the simplex, but its solution is only ever a
  // hint; the emitted bound comes from the exact Int128 re-evaluation below.
  LpProblem dual;
  dual.objective.assign(m + n, 0.0);
  for (std::size_t e = 0; e < m; ++e) {
    dual.objective[e] = -static_cast<double>(inst.capacity(
        static_cast<EdgeId>(e)));
  }
  for (std::size_t j = 0; j < n; ++j) dual.objective[m + j] = -1.0;
  dual.constraints.reserve(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    const RingTask& t = inst.task(static_cast<TaskId>(j));
    for (bool clockwise : {true, false}) {
      LpConstraint row;
      row.coeffs.assign(m + n, 0.0);
      for (EdgeId e : inst.route_edges(static_cast<TaskId>(j), clockwise)) {
        row.coeffs[static_cast<std::size_t>(e)] =
            static_cast<double>(t.demand);
      }
      row.coeffs[m + j] = 1.0;
      row.relation = LpRelation::kGreaterEqual;
      row.rhs = static_cast<double>(t.weight);
      dual.constraints.push_back(std::move(row));
    }
  }

  const LpSolution lp = solve_lp(dual, 0, options.deadline);
  // sapkit-lint: end-allow(float-ban)
  if (lp.status == LpStatus::kTimeout) {
    *timed_out = true;
    return false;
  }
  if (lp.status != LpStatus::kOptimal) return false;

  DualWitness witness;
  witness.scale = options.dual_scale;
  witness.edge_price.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!repair_price(lp.x[e], witness.scale, &witness.edge_price[e])) {
      return false;
    }
  }

  std::vector<Int128> task_price(n, 0);
  std::vector<Value> demands(n);
  std::vector<Weight> weights(n);
  for (std::size_t j = 0; j < n; ++j) {
    const RingTask& t = inst.task(static_cast<TaskId>(j));
    Int128 cheapest = 0;
    for (bool clockwise : {true, false}) {
      Int128 sum = 0;
      for (EdgeId e : inst.route_edges(static_cast<TaskId>(j), clockwise)) {
        sum += witness.edge_price[static_cast<std::size_t>(e)];
      }
      if (clockwise || sum < cheapest) cheapest = sum;
    }
    task_price[j] = cheapest;
    demands[j] = t.demand;
    weights[j] = t.weight;
  }

  Weight ub = 0;
  if (!evaluate_dual_bound(inst.capacities(), witness.edge_price, task_price,
                           demands, weights, witness.scale, &ub)) {
    return false;
  }
  out->rung = UbRung::kLpDual;
  out->value = ub;
  out->dual = std::move(witness);
  return true;
}

/// Selects `candidate` as the ladder's answer and stamps telemetry.
void select(LadderResult* result, UpperBoundCertificate candidate) {
  result->proven = true;
  result->best = std::move(candidate);
  telemetry::count(rung_counter_name(result->best.rung));
}

UpperBoundCertificate plain_bound(UbRung rung, Weight value) {
  UpperBoundCertificate bound;
  bound.rung = rung;
  bound.value = value;
  return bound;
}

}  // namespace

LadderResult run_upper_bound_ladder(const PathInstance& inst,
                                    const LadderOptions& options) {
  LadderResult result;

  Weight sum_w = 0;
  std::vector<Weight> weights(inst.num_tasks());
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = inst.task(static_cast<TaskId>(j)).weight;
  }
  const bool sum_ok = checked_total_weight(weights, &sum_w);

  // Rung 1: exact SAP optimum by profile DP.
  {
    LadderRungAttempt attempt{.rung = UbRung::kExactDp};
    const bool applicable =
        options.try_exact_dp && inst.num_tasks() <= options.exact_dp_max_tasks &&
        (inst.num_edges() == 0 ||
         inst.max_capacity() <= options.exact_dp_max_capacity);
    if (applicable) {
      attempt.applicable = true;
      SapExactOptions dp_options = options.dp;
      dp_options.deadline = dp_options.deadline.min(options.deadline);
      const auto start = Clock::now();
      const SapExactResult dp = sap_exact_profile_dp(inst, dp_options);
      attempt.seconds = seconds_since(start);
      attempt.timed_out = dp.timed_out;
      if (dp.proven_optimal) {
        attempt.proved = true;
        attempt.value = dp.weight;
      }
    }
    result.attempts.push_back(attempt);
    if (attempt.proved) {
      select(&result, plain_bound(UbRung::kExactDp, attempt.value));
      return result;
    }
  }

  // Rung 2: exact UFPP optimum (>= OPT_SAP).
  {
    LadderRungAttempt attempt{.rung = UbRung::kUfppBnb};
    if (options.try_ufpp_bnb && inst.num_tasks() <= options.bnb_max_tasks) {
      attempt.applicable = true;
      UfppExactOptions bnb_options = options.bnb;
      bnb_options.deadline = bnb_options.deadline.min(options.deadline);
      const auto start = Clock::now();
      const UfppExactResult bnb = ufpp_exact(inst, bnb_options);
      attempt.seconds = seconds_since(start);
      attempt.timed_out = bnb.timed_out;
      if (bnb.proven_optimal) {
        attempt.proved = true;
        attempt.value = bnb.weight;
      }
    }
    result.attempts.push_back(attempt);
    if (attempt.proved) {
      select(&result, plain_bound(UbRung::kUfppBnb, attempt.value));
      return result;
    }
  }

  // Rung 3: rational-repaired LP dual. Skipped in favour of the fallback if
  // the repaired bound is looser than sum w.
  {
    LadderRungAttempt attempt{.rung = UbRung::kLpDual};
    UpperBoundCertificate candidate;
    if (options.try_lp_dual) {
      attempt.applicable = true;
      const auto start = Clock::now();
      const bool ok =
          try_path_lp_dual(inst, options, &candidate, &attempt.timed_out);
      attempt.seconds = seconds_since(start);
      if (ok) {
        attempt.proved = true;
        attempt.value = candidate.value;
      }
    }
    result.attempts.push_back(attempt);
    if (attempt.proved && !(sum_ok && candidate.value > sum_w)) {
      select(&result, std::move(candidate));
      return result;
    }
  }

  // Rung 4: the unconditional fallback, unless sum w itself overflows.
  {
    LadderRungAttempt attempt{.rung = UbRung::kTotalWeight,
                              .applicable = true};
    if (sum_ok) {
      attempt.proved = true;
      attempt.value = sum_w;
    }
    result.attempts.push_back(attempt);
    if (attempt.proved) {
      select(&result, plain_bound(UbRung::kTotalWeight, sum_w));
    }
  }
  return result;
}

LadderResult run_ring_upper_bound_ladder(const RingInstance& inst,
                                         const LadderOptions& options) {
  LadderResult result;

  Weight sum_w = 0;
  std::vector<Weight> weights(inst.num_tasks());
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = inst.task(static_cast<TaskId>(j)).weight;
  }
  const bool sum_ok = checked_total_weight(weights, &sum_w);

  {
    LadderRungAttempt attempt{.rung = UbRung::kLpDual};
    UpperBoundCertificate candidate;
    if (options.try_lp_dual) {
      attempt.applicable = true;
      const auto start = Clock::now();
      const bool ok =
          try_ring_lp_dual(inst, options, &candidate, &attempt.timed_out);
      attempt.seconds = seconds_since(start);
      if (ok) {
        attempt.proved = true;
        attempt.value = candidate.value;
      }
    }
    result.attempts.push_back(attempt);
    if (attempt.proved && !(sum_ok && candidate.value > sum_w)) {
      select(&result, std::move(candidate));
      return result;
    }
  }

  {
    LadderRungAttempt attempt{.rung = UbRung::kTotalWeight,
                              .applicable = true};
    if (sum_ok) {
      attempt.proved = true;
      attempt.value = sum_w;
    }
    result.attempts.push_back(attempt);
    if (attempt.proved) {
      select(&result, plain_bound(UbRung::kTotalWeight, sum_w));
    }
  }
  return result;
}

}  // namespace sap::cert
