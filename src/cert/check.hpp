// check_certificate — the standalone certificate verifier.
//
// Verifier contract: this code path shares NO logic with the certificate
// producers (src/cert/certify.cpp, src/cert/ladder.cpp) or with the library
// verifiers (model/verify.cpp). Feasibility is re-derived from scratch by
// pairwise overlap tests, the solution weight and every arithmetic claim is
// recomputed in checked 128-bit arithmetic, dual-price bounds are
// re-evaluated from the witness alone, and the exact rungs (exact_dp,
// ufpp_bnb) are re-proven by verifier-local budget-capped search. A
// certificate whose exact rung exceeds the verifier's budgets is REJECTED as
// unverifiable — the verifier never takes a producer's word for anything.
#pragma once

#include <cstddef>
#include <string>

#include "src/cert/certificate.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"

namespace sap::cert {

struct CheckResult {
  bool valid = false;
  std::string reason;  ///< empty on success; human-readable cause otherwise

  explicit operator bool() const noexcept { return valid; }

  [[nodiscard]] static CheckResult ok() { return {true, {}}; }
  [[nodiscard]] static CheckResult fail(std::string why) {
    return {false, std::move(why)};
  }
};

/// Budgets for the verifier-local re-proofs of the exact rungs. Certificates
/// whose instances exceed these are rejected as unverifiable, not accepted.
struct CheckOptions {
  /// exact_dp recheck: exhaustive height DFS, only tractable on tiny
  /// instances.
  std::size_t exact_recheck_max_tasks = 12;
  Value exact_recheck_max_capacity = 64;
  std::size_t exact_recheck_max_nodes = 20'000'000;

  /// ufpp_bnb recheck: subset DFS with suffix-weight pruning.
  std::size_t bnb_recheck_max_tasks = 22;
  std::size_t bnb_recheck_max_nodes = 50'000'000;
};

/// Verifies `cert` against the (instance, solution) pair it travels with:
/// feasibility, recomputed weight, the upper-bound rung, and the claimed
/// ratio. Rejects with a reason on the first violated claim.
[[nodiscard]] CheckResult check_certificate(const PathInstance& inst,
                                            const SapSolution& sol,
                                            const Certificate& cert,
                                            const CheckOptions& options = {});

/// Ring overload; only the lp_dual and total_weight rungs are accepted.
[[nodiscard]] CheckResult check_certificate(const RingInstance& inst,
                                            const RingSapSolution& sol,
                                            const Certificate& cert,
                                            const CheckOptions& options = {});

}  // namespace sap::cert
