// Per-solve certification vocabulary: what a certificate asserts and which
// witnesses it carries.
//
// A Certificate makes a solution self-verifying. It claims three things
// about a (instance, solution) pair that travels next to it:
//   1. feasibility — the solution itself is the witness; the verifier
//      re-checks capacities, height bounds and vertical disjointness from
//      scratch;
//   2. an upper bound on OPT — one "rung" of the UpperBoundLadder fired
//      (src/cert/ladder.hpp), and `ub.value` is its exact integral bound,
//      with a dual-price witness attached when the rung is the LP bound;
//   3. an a-posteriori approximation ratio — w(S) * alpha_num >=
//      ub.value * alpha_den, i.e. w(S)/OPT >= w(S)/UB >= alpha_den/alpha_num.
// The checker for all three is check_certificate (src/cert/check.hpp),
// which deliberately shares no code with the producers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/model/task.hpp"

namespace sap::cert {

/// The rungs of the upper-bound ladder, tightest first. Lower rungs are
/// never tighter than a higher rung that proved a bound, so the ladder
/// stops at the first rung that fires.
enum class UbRung : std::uint8_t {
  kExactDp = 0,      ///< exact SAP optimum (profile DP, tiny instances)
  kUfppBnb = 1,      ///< exact UFPP optimum (branch-and-bound), >= OPT_SAP
  kLpDual = 2,       ///< rational-repaired dual of the UFPP LP relaxation
  kTotalWeight = 3,  ///< trivial fallback: sum of all task weights
};

inline constexpr std::size_t kNumUbRungs = 4;

[[nodiscard]] const char* ub_rung_name(UbRung rung) noexcept;
/// Inverse of ub_rung_name; throws std::invalid_argument on unknown names.
[[nodiscard]] UbRung parse_ub_rung(std::string_view name);

/// Scaled integral dual prices for the UFPP LP relaxation: the price of
/// edge e is edge_price[e] / scale. Any non-negative price vector yields a
/// valid upper bound by weak duality once the per-task slacks are recomputed
/// exactly (the repair in ladder.cpp / the recheck in check.cpp), so the
/// double-based simplex that *suggested* the prices can never over-claim.
struct DualWitness {
  std::int64_t scale = 1;                ///< > 0
  std::vector<std::int64_t> edge_price;  ///< one per edge, each >= 0

  [[nodiscard]] bool empty() const noexcept { return edge_price.empty(); }
};

/// One proven upper bound on OPT: which rung fired and its exact value.
struct UpperBoundCertificate {
  UbRung rung = UbRung::kTotalWeight;
  Weight value = 0;
  DualWitness dual;  ///< populated iff rung == kLpDual
};

/// The full certificate attached to one solve. The instance and the
/// solution travel separately (wire envelope / files on disk); the
/// certificate references them only through recomputable quantities.
struct Certificate {
  enum class Kind : std::uint8_t { kPath, kRing };

  Kind kind = Kind::kPath;
  Weight solution_weight = 0;  ///< claimed w(S); verifier recomputes
  UpperBoundCertificate ub;

  /// Claimed a-posteriori ratio alpha = alpha_num / alpha_den, meaning
  /// w(S) * alpha_num >= ub.value * alpha_den. The producers set alpha to
  /// exactly ub/w(S) (reduced); alpha_den == 0 encodes "no finite ratio"
  /// (an empty solution against a positive bound).
  std::int64_t alpha_num = 1;
  std::int64_t alpha_den = 1;
};

/// Sets cert.alpha_* to the reduced fraction ub.value / solution_weight
/// (1/1 when both are zero).
void set_alpha_from_bound(Certificate& cert) noexcept;

}  // namespace sap::cert
