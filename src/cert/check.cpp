// The verifier. Everything here is deliberately self-contained: feasibility,
// weights, dual bounds and the exact rungs are re-derived with verifier-local
// code so a bug in a producer (certify.cpp, ladder.cpp, model/verify.cpp)
// cannot vouch for itself. Helper duplication with those files is by design.
#include "src/cert/check.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace sap::cert {
namespace {

std::string fmt_task(TaskId j) { return "task " + std::to_string(j); }

// ---------------------------------------------------------------------------
// Local checked arithmetic (128-bit accumulators; rejects on any overflow).

bool add128(Int128 a, Int128 b, Int128* out) {
  return !__builtin_add_overflow(a, b, out);
}

bool mul128(Int128 a, Int128 b, Int128* out) {
  return !__builtin_mul_overflow(a, b, out);
}

// ---------------------------------------------------------------------------
// Path feasibility, re-derived: O(k^2) pairwise interval tests instead of the
// library verifier's sweep, and per-edge capacity by direct scan.

CheckResult check_path_feasibility(const PathInstance& inst,
                                   const SapSolution& sol) {
  const auto n = static_cast<TaskId>(inst.num_tasks());
  std::vector<bool> used(inst.num_tasks(), false);
  for (const Placement& p : sol.placements) {
    if (p.task < 0 || p.task >= n) {
      return CheckResult::fail(fmt_task(p.task) + " out of range");
    }
    if (used[static_cast<std::size_t>(p.task)]) {
      return CheckResult::fail(fmt_task(p.task) + " placed twice");
    }
    used[static_cast<std::size_t>(p.task)] = true;
    if (p.height < 0) {
      return CheckResult::fail(fmt_task(p.task) + " has negative height");
    }
    const Task& t = inst.task(p.task);
    Value top = 0;
    if (__builtin_add_overflow(p.height, t.demand, &top)) {
      return CheckResult::fail(fmt_task(p.task) + " height + demand overflows");
    }
    for (EdgeId e = t.first; e <= t.last; ++e) {
      if (top > inst.capacity(e)) {
        return CheckResult::fail(fmt_task(p.task) + " exceeds capacity on edge " +
                                 std::to_string(e));
      }
    }
  }
  for (std::size_t a = 0; a < sol.placements.size(); ++a) {
    const Placement& pa = sol.placements[a];
    const Task& ta = inst.task(pa.task);
    // sapkit-lint: allow(exact-arith) -- every placement passed the
    // checked height + demand overflow test in the loop above.
    const Value top_a = pa.height + ta.demand;  // in range: checked above
    for (std::size_t b = a + 1; b < sol.placements.size(); ++b) {
      const Placement& pb = sol.placements[b];
      const Task& tb = inst.task(pb.task);
      const bool share_edge = ta.first <= tb.last && tb.first <= ta.last;
      if (!share_edge) continue;
      // sapkit-lint: allow(exact-arith) -- same checked bound as top_a.
      const Value top_b = pb.height + tb.demand;
      const bool disjoint = top_a <= pb.height || top_b <= pa.height;
      if (!disjoint) {
        return CheckResult::fail(fmt_task(pa.task) + " and " +
                                 fmt_task(pb.task) +
                                 " overlap vertically on a shared edge");
      }
    }
  }
  return CheckResult::ok();
}

// ---------------------------------------------------------------------------
// Ring feasibility, re-derived, including a local route walk that mirrors the
// documented route semantics (clockwise: start -> end in increasing vertex
// order; counter-clockwise routes walk forward from `end` back to `start`).

std::vector<EdgeId> local_ring_route(const RingTask& t, std::size_t num_edges,
                                     bool clockwise) {
  const auto m = static_cast<int>(num_edges);
  std::vector<EdgeId> edges;
  int v = clockwise ? t.start : t.end;
  const int stop = clockwise ? t.end : t.start;
  while (v != stop) {
    edges.push_back(static_cast<EdgeId>(v));
    v = (v + 1) % m;
  }
  return edges;
}

CheckResult check_ring_feasibility(const RingInstance& inst,
                                   const RingSapSolution& sol) {
  const auto n = static_cast<TaskId>(inst.num_tasks());
  std::vector<bool> used(inst.num_tasks(), false);
  std::vector<std::vector<std::pair<Value, Value>>> spans(inst.num_edges());
  for (const RingPlacement& p : sol.placements) {
    if (p.task < 0 || p.task >= n) {
      return CheckResult::fail(fmt_task(p.task) + " out of range");
    }
    if (used[static_cast<std::size_t>(p.task)]) {
      return CheckResult::fail(fmt_task(p.task) + " placed twice");
    }
    used[static_cast<std::size_t>(p.task)] = true;
    if (p.height < 0) {
      return CheckResult::fail(fmt_task(p.task) + " has negative height");
    }
    const RingTask& t = inst.task(p.task);
    Value top = 0;
    if (__builtin_add_overflow(p.height, t.demand, &top)) {
      return CheckResult::fail(fmt_task(p.task) + " height + demand overflows");
    }
    for (EdgeId e : local_ring_route(t, inst.num_edges(), p.clockwise)) {
      if (top > inst.capacity(e)) {
        return CheckResult::fail(fmt_task(p.task) +
                                 " exceeds capacity on edge " +
                                 std::to_string(e));
      }
      spans[static_cast<std::size_t>(e)].emplace_back(p.height, top);
    }
  }
  for (std::size_t e = 0; e < spans.size(); ++e) {
    auto& intervals = spans[e];
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first < intervals[i - 1].second) {
        return CheckResult::fail("vertical overlap on edge " +
                                 std::to_string(e));
      }
    }
  }
  return CheckResult::ok();
}

// ---------------------------------------------------------------------------
// Dual-bound re-evaluation from the witness alone.

struct TaskView {
  Value demand = 0;
  Weight weight = 0;
};

/// Recomputes floor((sum c_e*Y_e + sum_j max(0, w_j*S - d_j*price_j)) / S)
/// where price_j is the caller-supplied price sum of task j's (cheapest)
/// route. Fails on overflow or malformed witness values.
CheckResult recheck_dual_bound(const std::vector<Value>& capacities,
                               const DualWitness& dual,
                               const std::vector<Int128>& task_price,
                               const std::vector<TaskView>& tasks,
                               Weight claimed) {
  if (dual.scale <= 0) return CheckResult::fail("dual scale must be positive");
  if (dual.edge_price.size() != capacities.size()) {
    return CheckResult::fail("dual witness has wrong edge count");
  }
  for (std::int64_t y : dual.edge_price) {
    if (y < 0) return CheckResult::fail("negative dual price");
  }
  Int128 total = 0;
  for (std::size_t e = 0; e < capacities.size(); ++e) {
    Int128 term = 0;
    if (!mul128(capacities[e], dual.edge_price[e], &term) ||
        !add128(total, term, &total)) {
      return CheckResult::fail("dual bound overflows");
    }
  }
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    Int128 ws = 0;
    Int128 dp = 0;
    if (!mul128(tasks[j].weight, dual.scale, &ws) ||
        !mul128(tasks[j].demand, task_price[j], &dp)) {
      return CheckResult::fail("dual bound overflows");
    }
    Int128 slack = ws - dp;
    if (slack < 0) slack = 0;
    if (!add128(total, slack, &total)) {
      return CheckResult::fail("dual bound overflows");
    }
  }
  const Int128 recomputed = total / dual.scale;
  if (recomputed != static_cast<Int128>(claimed)) {
    return CheckResult::fail("dual witness does not support the recorded "
                             "upper bound");
  }
  return CheckResult::ok();
}

// ---------------------------------------------------------------------------
// Verifier-local exact SAP by height DFS (rung exact_dp). Budget-capped:
// blowing the budget REJECTS the certificate as unverifiable.

struct SapDfs {
  const PathInstance& inst;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  bool budget_ok = true;
  std::vector<Int128> suffix_weight;  // suffix_weight[j] = sum of w_k, k >= j
  std::vector<Placement> chosen;
  Int128 best = 0;

  explicit SapDfs(const PathInstance& instance, std::size_t budget)
      : inst(instance), max_nodes(budget) {
    const std::size_t n = inst.num_tasks();
    suffix_weight.assign(n + 1, 0);
    // sapkit-lint: begin-allow(exact-arith) -- Int128 accumulator; a sum of
    // n int64 weights cannot overflow 128 bits.
    for (std::size_t j = n; j-- > 0;) {
      suffix_weight[j] =
          suffix_weight[j + 1] + inst.task(static_cast<TaskId>(j)).weight;
    }
    // sapkit-lint: end-allow(exact-arith)
  }

  [[nodiscard]] bool fits(TaskId j, Value height) const {
    const Task& t = inst.task(j);
    // sapkit-lint: begin-allow(exact-arith) -- heights are enumerated up to
    // bottleneck - demand, so every top is <= bottleneck <= 2^62: exact.
    const Value top = height + t.demand;
    for (const Placement& p : chosen) {
      const Task& other = inst.task(p.task);
      if (t.first > other.last || other.first > t.last) continue;
      const Value other_top = p.height + other.demand;
      if (!(top <= p.height || other_top <= height)) return false;
    }
    // sapkit-lint: end-allow(exact-arith)
    return true;
  }

  // sapkit-lint: begin-allow(exact-arith) -- the running weight is an Int128
  // accumulator over int64 task weights: no overflow is possible.
  void run(std::size_t j, Int128 weight) {
    if (++nodes > max_nodes) {
      budget_ok = false;
      return;
    }
    if (j == inst.num_tasks()) {
      best = std::max(best, weight);
      return;
    }
    if (weight + suffix_weight[j] <= best) return;  // suffix-weight pruning
    const auto id = static_cast<TaskId>(j);
    const Task& t = inst.task(id);
    // Integral heights are exhaustive for integral demands (gravity).
    const Value limit = inst.bottleneck(id) - t.demand;
    for (Value h = 0; h <= limit && budget_ok; ++h) {
      if (!fits(id, h)) continue;
      chosen.push_back({id, h});
      run(j + 1, weight + t.weight);
      chosen.pop_back();
    }
    if (budget_ok) run(j + 1, weight);
  }
  // sapkit-lint: end-allow(exact-arith)
};

CheckResult recheck_exact_dp(const PathInstance& inst, Weight claimed,
                             const CheckOptions& options) {
  if (inst.num_tasks() > options.exact_recheck_max_tasks) {
    return CheckResult::fail("exact_dp rung unverifiable: too many tasks for "
                             "the recheck budget");
  }
  for (Value c : inst.capacities()) {
    if (c > options.exact_recheck_max_capacity) {
      return CheckResult::fail("exact_dp rung unverifiable: capacity exceeds "
                               "the recheck budget");
    }
  }
  SapDfs dfs(inst, options.exact_recheck_max_nodes);
  dfs.run(0, 0);
  if (!dfs.budget_ok) {
    return CheckResult::fail("exact_dp rung unverifiable: recheck node budget "
                             "exhausted");
  }
  if (dfs.best != static_cast<Int128>(claimed)) {
    return CheckResult::fail("exact_dp rung does not match the recomputed "
                             "SAP optimum");
  }
  return CheckResult::ok();
}

// ---------------------------------------------------------------------------
// Verifier-local exact UFPP by subset DFS (rung ufpp_bnb).

struct UfppDfs {
  const PathInstance& inst;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  bool budget_ok = true;
  std::vector<Int128> suffix_weight;
  std::vector<Value> remaining;  // residual capacity per edge
  Int128 best = 0;

  explicit UfppDfs(const PathInstance& instance, std::size_t budget)
      : inst(instance), max_nodes(budget) {
    const std::size_t n = inst.num_tasks();
    suffix_weight.assign(n + 1, 0);
    // sapkit-lint: begin-allow(exact-arith) -- Int128 accumulator; a sum of
    // n int64 weights cannot overflow 128 bits.
    for (std::size_t j = n; j-- > 0;) {
      suffix_weight[j] =
          suffix_weight[j + 1] + inst.task(static_cast<TaskId>(j)).weight;
    }
    // sapkit-lint: end-allow(exact-arith)
    remaining = inst.capacities();
  }

  // sapkit-lint: begin-allow(exact-arith) -- the running weight is an Int128
  // accumulator, and the residual-capacity restore only returns `remaining`
  // to a prior value <= capacity <= 2^62: both stay exact.
  void run(std::size_t j, Int128 weight) {
    if (++nodes > max_nodes) {
      budget_ok = false;
      return;
    }
    if (j == inst.num_tasks()) {
      best = std::max(best, weight);
      return;
    }
    if (weight + suffix_weight[j] <= best) return;
    const Task& t = inst.task(static_cast<TaskId>(j));
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      if (remaining[static_cast<std::size_t>(e)] < t.demand) {
        fits = false;
        break;
      }
    }
    if (fits) {
      for (EdgeId e = t.first; e <= t.last; ++e) {
        remaining[static_cast<std::size_t>(e)] -= t.demand;
      }
      run(j + 1, weight + t.weight);
      for (EdgeId e = t.first; e <= t.last; ++e) {
        remaining[static_cast<std::size_t>(e)] += t.demand;
      }
    }
    if (budget_ok) run(j + 1, weight);
  }
  // sapkit-lint: end-allow(exact-arith)
};

CheckResult recheck_ufpp_bnb(const PathInstance& inst, Weight claimed,
                             const CheckOptions& options) {
  if (inst.num_tasks() > options.bnb_recheck_max_tasks) {
    return CheckResult::fail("ufpp_bnb rung unverifiable: too many tasks for "
                             "the recheck budget");
  }
  UfppDfs dfs(inst, options.bnb_recheck_max_nodes);
  dfs.run(0, 0);
  if (!dfs.budget_ok) {
    return CheckResult::fail("ufpp_bnb rung unverifiable: recheck node budget "
                             "exhausted");
  }
  if (dfs.best != static_cast<Int128>(claimed)) {
    return CheckResult::fail("ufpp_bnb rung does not match the recomputed "
                             "UFPP optimum");
  }
  return CheckResult::ok();
}

// ---------------------------------------------------------------------------
// Shared tail: total_weight rung, UB-vs-weight sanity, and the ratio claim.

CheckResult recheck_total_weight(const std::vector<TaskView>& tasks,
                                 Weight claimed) {
  Int128 total = 0;
  for (const TaskView& t : tasks) {
    if (!add128(total, t.weight, &total)) {
      return CheckResult::fail("total weight overflows");
    }
  }
  if (total != static_cast<Int128>(claimed)) {
    return CheckResult::fail("total_weight rung does not match the sum of "
                             "task weights");
  }
  return CheckResult::ok();
}

CheckResult check_ratio_claim(const Certificate& cert, Weight weight) {
  if (cert.ub.value < weight) {
    return CheckResult::fail("upper bound is below the solution weight");
  }
  if (cert.alpha_num < 0 || cert.alpha_den < 0 ||
      (cert.alpha_num == 0 && cert.alpha_den == 0)) {
    return CheckResult::fail("malformed ratio claim");
  }
  const Int128 lhs = static_cast<Int128>(weight) * cert.alpha_num;
  const Int128 rhs = static_cast<Int128>(cert.ub.value) * cert.alpha_den;
  if (lhs < rhs) {
    return CheckResult::fail("ratio claim not supported: w(S) * alpha_num < "
                             "UB * alpha_den");
  }
  return CheckResult::ok();
}

CheckResult recheck_weight(const std::vector<TaskView>& tasks,
                           const std::vector<TaskId>& selected,
                           Weight claimed) {
  Int128 total = 0;
  for (TaskId j : selected) {
    if (!add128(total, tasks[static_cast<std::size_t>(j)].weight, &total)) {
      return CheckResult::fail("solution weight overflows");
    }
  }
  if (total != static_cast<Int128>(claimed)) {
    return CheckResult::fail("recorded solution weight does not match the "
                             "recomputed weight");
  }
  return CheckResult::ok();
}

}  // namespace

CheckResult check_certificate(const PathInstance& inst, const SapSolution& sol,
                              const Certificate& cert,
                              const CheckOptions& options) {
  if (cert.kind != Certificate::Kind::kPath) {
    return CheckResult::fail("certificate kind is not 'path'");
  }
  if (CheckResult r = check_path_feasibility(inst, sol); !r) return r;

  std::vector<TaskView> tasks(inst.num_tasks());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const Task& t = inst.task(static_cast<TaskId>(j));
    tasks[j] = {t.demand, t.weight};
  }
  std::vector<TaskId> selected;
  selected.reserve(sol.placements.size());
  for (const Placement& p : sol.placements) selected.push_back(p.task);
  if (CheckResult r = recheck_weight(tasks, selected, cert.solution_weight); !r)
    return r;

  switch (cert.ub.rung) {
    case UbRung::kExactDp: {
      if (CheckResult r = recheck_exact_dp(inst, cert.ub.value, options); !r)
        return r;
      break;
    }
    case UbRung::kUfppBnb: {
      if (CheckResult r = recheck_ufpp_bnb(inst, cert.ub.value, options); !r)
        return r;
      break;
    }
    case UbRung::kLpDual: {
      std::vector<Int128> task_price(inst.num_tasks(), 0);
      if (cert.ub.dual.edge_price.size() == inst.num_edges()) {
        for (std::size_t j = 0; j < tasks.size(); ++j) {
          const Task& t = inst.task(static_cast<TaskId>(j));
          Int128 sum = 0;
          for (EdgeId e = t.first; e <= t.last; ++e) {
            sum += cert.ub.dual.edge_price[static_cast<std::size_t>(e)];
          }
          task_price[j] = sum;
        }
      }
      if (CheckResult r = recheck_dual_bound(inst.capacities(), cert.ub.dual,
                                             task_price, tasks, cert.ub.value);
          !r)
        return r;
      break;
    }
    case UbRung::kTotalWeight: {
      if (CheckResult r = recheck_total_weight(tasks, cert.ub.value); !r)
        return r;
      break;
    }
    default:
      return CheckResult::fail("unknown upper-bound rung");
  }

  return check_ratio_claim(cert, cert.solution_weight);
}

CheckResult check_certificate(const RingInstance& inst,
                              const RingSapSolution& sol,
                              const Certificate& cert,
                              const CheckOptions& /*options*/) {
  if (cert.kind != Certificate::Kind::kRing) {
    return CheckResult::fail("certificate kind is not 'ring'");
  }
  if (CheckResult r = check_ring_feasibility(inst, sol); !r) return r;

  std::vector<TaskView> tasks(inst.num_tasks());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const RingTask& t = inst.task(static_cast<TaskId>(j));
    tasks[j] = {t.demand, t.weight};
  }
  std::vector<TaskId> selected;
  selected.reserve(sol.placements.size());
  for (const RingPlacement& p : sol.placements) selected.push_back(p.task);
  if (CheckResult r = recheck_weight(tasks, selected, cert.solution_weight); !r)
    return r;

  switch (cert.ub.rung) {
    case UbRung::kLpDual: {
      std::vector<Int128> task_price(inst.num_tasks(), 0);
      if (cert.ub.dual.edge_price.size() == inst.num_edges()) {
        for (std::size_t j = 0; j < tasks.size(); ++j) {
          const RingTask& t = inst.task(static_cast<TaskId>(j));
          Int128 cheapest = 0;
          for (bool clockwise : {true, false}) {
            Int128 sum = 0;
            for (EdgeId e :
                 local_ring_route(t, inst.num_edges(), clockwise)) {
              sum += cert.ub.dual.edge_price[static_cast<std::size_t>(e)];
            }
            if (clockwise || sum < cheapest) cheapest = sum;
          }
          task_price[j] = cheapest;
        }
      }
      if (CheckResult r = recheck_dual_bound(inst.capacities(), cert.ub.dual,
                                             task_price, tasks, cert.ub.value);
          !r)
        return r;
      break;
    }
    case UbRung::kTotalWeight: {
      if (CheckResult r = recheck_total_weight(tasks, cert.ub.value); !r)
        return r;
      break;
    }
    default:
      return CheckResult::fail(
          "ring certificates support only the lp_dual and total_weight rungs");
  }

  return check_ratio_claim(cert, cert.solution_weight);
}

}  // namespace sap::cert
