#include "src/cert/certify.hpp"

#include <stdexcept>
#include <utility>

#include "src/model/verify.hpp"
#include "src/util/checked.hpp"
#include "src/util/telemetry.hpp"

namespace sap::cert {
namespace {

/// Checked recomputation of w(S); certification refuses to claim a weight
/// that does not fit in int64.
bool checked_solution_weight(const PathInstance& inst, const SapSolution& sol,
                             Weight* out) {
  Weight total = 0;
  for (const Placement& p : sol.placements) {
    if (!checked_add(total, inst.task(p.task).weight, &total)) return false;
  }
  *out = total;
  return true;
}

bool checked_solution_weight(const RingInstance& inst,
                             const RingSapSolution& sol, Weight* out) {
  Weight total = 0;
  for (const RingPlacement& p : sol.placements) {
    if (!checked_add(total, inst.task(p.task).weight, &total)) return false;
  }
  *out = total;
  return true;
}

template <typename Outcome>
Outcome finish(Outcome outcome, Certificate::Kind kind, Weight weight,
               LadderResult ladder) {
  outcome.ladder = std::move(ladder);
  if (!outcome.ladder.proven) {
    outcome.detail = "upper-bound ladder could not prove any bound";
    return outcome;
  }
  outcome.cert.kind = kind;
  outcome.cert.solution_weight = weight;
  outcome.cert.ub = outcome.ladder.best;
  set_alpha_from_bound(outcome.cert);
  outcome.certified = true;
  telemetry::count("cert.produced");
  return outcome;
}

}  // namespace

CertifyOutcome certify_solution(const PathInstance& inst,
                                const SapSolution& sol,
                                const CertifyOptions& options) {
  CertifyOutcome outcome;
  const VerifyResult feasible = verify_sap(inst, sol);
  if (!feasible) {
    outcome.detail = "infeasible solution: " + feasible.reason;
    return outcome;
  }
  outcome.feasible = true;
  Weight weight = 0;
  if (!checked_solution_weight(inst, sol, &weight)) {
    outcome.detail = "solution weight overflows int64";
    return outcome;
  }
  return finish(std::move(outcome), Certificate::Kind::kPath, weight,
                run_upper_bound_ladder(inst, options.ladder));
}

CertifyOutcome certify_solution(const RingInstance& inst,
                                const RingSapSolution& sol,
                                const CertifyOptions& options) {
  CertifyOutcome outcome;
  const VerifyResult feasible = verify_ring_sap(inst, sol);
  if (!feasible) {
    outcome.detail = "infeasible solution: " + feasible.reason;
    return outcome;
  }
  outcome.feasible = true;
  Weight weight = 0;
  if (!checked_solution_weight(inst, sol, &weight)) {
    outcome.detail = "solution weight overflows int64";
    return outcome;
  }
  return finish(std::move(outcome), Certificate::Kind::kRing, weight,
                run_ring_upper_bound_ladder(inst, options.ladder));
}

CertifiedSapSolve solve_sap_certified(const PathInstance& inst,
                                      const SolverParams& params,
                                      const CertifyOptions& options) {
  CertifiedSapSolve result;
  result.solution = solve_sap(inst, params);
  result.outcome = certify_solution(inst, result.solution, options);
  if (!result.outcome.feasible) {
    throw std::logic_error("solve_sap produced an infeasible solution: " +
                           result.outcome.detail);
  }
  return result;
}

CertifiedSapSolve solve_sap_uniform_certified(
    const PathInstance& inst, const SapUniformOptions& solver_options,
    const CertifyOptions& options) {
  CertifiedSapSolve result;
  result.solution = solve_sap_uniform(inst, solver_options);
  result.outcome = certify_solution(inst, result.solution, options);
  if (!result.outcome.feasible) {
    throw std::logic_error(
        "solve_sap_uniform produced an infeasible solution: " +
        result.outcome.detail);
  }
  return result;
}

CertifiedRingSolve solve_ring_sap_certified(const RingInstance& inst,
                                            const RingSolverParams& params,
                                            const CertifyOptions& options) {
  CertifiedRingSolve result;
  result.solution = solve_ring_sap(inst, params);
  result.outcome = certify_solution(inst, result.solution, options);
  if (!result.outcome.feasible) {
    throw std::logic_error("solve_ring_sap produced an infeasible solution: " +
                           result.outcome.detail);
  }
  return result;
}

}  // namespace sap::cert
