#include "src/cert/certificate.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

namespace sap::cert {

const char* ub_rung_name(UbRung rung) noexcept {
  switch (rung) {
    case UbRung::kExactDp:
      return "exact_dp";
    case UbRung::kUfppBnb:
      return "ufpp_bnb";
    case UbRung::kLpDual:
      return "lp_dual";
    case UbRung::kTotalWeight:
      return "total_weight";
  }
  return "total_weight";
}

UbRung parse_ub_rung(std::string_view name) {
  if (name == "exact_dp") return UbRung::kExactDp;
  if (name == "ufpp_bnb") return UbRung::kUfppBnb;
  if (name == "lp_dual") return UbRung::kLpDual;
  if (name == "total_weight") return UbRung::kTotalWeight;
  throw std::invalid_argument("cert: unknown upper-bound rung '" +
                              std::string(name) + "'");
}

void set_alpha_from_bound(Certificate& cert) noexcept {
  const Weight ub = cert.ub.value;
  const Weight w = cert.solution_weight;
  if (ub == 0 && w == 0) {
    cert.alpha_num = 1;
    cert.alpha_den = 1;
    return;
  }
  const Weight g = std::gcd(ub, w);  // g > 0: not both are zero
  cert.alpha_num = ub / g;
  cert.alpha_den = w / g;
}

}  // namespace sap::cert
