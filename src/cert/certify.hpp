// Producer side of certification: turn a (instance, solution) pair into a
// Certificate, and certified wrappers around the solver entry points.
//
// certify_solution re-verifies feasibility with the library verifier (the
// FeasibilityCertificate: the solution itself is the witness, re-checked
// before anything is claimed about it), runs the upper-bound ladder, and
// records the exact a-posteriori ratio. The independent re-check of all of
// this is check_certificate (src/cert/check.hpp).
#pragma once

#include <string>

#include "src/cert/certificate.hpp"
#include "src/cert/ladder.hpp"
#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/ring_instance.hpp"
#include "src/model/solution.hpp"
#include "src/sapu/sapu_solver.hpp"

namespace sap::cert {

struct CertifyOptions {
  LadderOptions ladder;
};

/// Outcome of certifying one solution. `feasible` is the feasibility
/// certificate verdict; when false (or when the ladder cannot prove any
/// bound) `cert` is not meaningful and `detail` explains why.
struct CertifyOutcome {
  bool feasible = false;
  bool certified = false;  ///< feasible AND a bound was proven
  std::string detail;      ///< failure reason when !certified
  Certificate cert;
  LadderResult ladder;
};

/// Certifies an existing path solution.
[[nodiscard]] CertifyOutcome certify_solution(const PathInstance& inst,
                                              const SapSolution& sol,
                                              const CertifyOptions& options = {});

/// Certifies an existing ring solution.
[[nodiscard]] CertifyOutcome certify_solution(const RingInstance& inst,
                                              const RingSapSolution& sol,
                                              const CertifyOptions& options = {});

/// A solve plus its certificate. The wrappers throw std::logic_error if the
/// solver emits an infeasible solution (a library bug by contract).
struct CertifiedSapSolve {
  SapSolution solution;
  CertifyOutcome outcome;
};

struct CertifiedRingSolve {
  RingSapSolution solution;
  CertifyOutcome outcome;
};

[[nodiscard]] CertifiedSapSolve solve_sap_certified(
    const PathInstance& inst, const SolverParams& params = {},
    const CertifyOptions& options = {});

[[nodiscard]] CertifiedSapSolve solve_sap_uniform_certified(
    const PathInstance& inst, const SapUniformOptions& solver_options = {},
    const CertifyOptions& options = {});

[[nodiscard]] CertifiedRingSolve solve_ring_sap_certified(
    const RingInstance& inst, const RingSolverParams& params = {},
    const CertifyOptions& options = {});

}  // namespace sap::cert
