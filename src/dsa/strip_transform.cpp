#include "src/dsa/strip_transform.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "src/dsa/skyline.hpp"
#include "src/model/gravity.hpp"
#include "src/util/telemetry.hpp"

namespace sap {
namespace {

/// Best horizontal window [theta, theta + height) of the packing: the offset
/// (among all placement bottoms and 0) maximizing the weight of placements
/// entirely inside the window.
Value best_window_offset(const PathInstance& inst, const SapSolution& packed,
                         Value height) {
  std::vector<Value> candidates{0};
  candidates.reserve(packed.placements.size() + 1);
  for (const Placement& p : packed.placements) candidates.push_back(p.height);
  std::ranges::sort(candidates);
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  Value best_offset = 0;
  Weight best_weight = -1;
  for (Value theta : candidates) {
    Weight inside = 0;
    for (const Placement& p : packed.placements) {
      const Task& t = inst.task(p.task);
      if (p.height >= theta && p.height + t.demand <= theta + height) {
        inside += t.weight;
      }
    }
    if (inside > best_weight) {
      best_weight = inside;
      best_offset = theta;
    }
  }
  return best_offset;
}

}  // namespace

StripTransformResult strip_transform(const PathInstance& inst,
                                     const UfppSolution& ufpp, Value height,
                                     const StripTransformOptions& options) {
  StripTransformResult out;
  if (ufpp.empty()) return out;
  ScopedTimer timer("dsa.strip_transform");
  telemetry::count("dsa.strip_transform.calls");

  const DsaResult packed = options.use_portfolio
                               ? dsa_pack_portfolio(inst, ufpp.tasks)
                               : dsa_pack(inst, ufpp.tasks, {});
  out.dsa_makespan = packed.makespan;

  SapSolution kept;
  std::vector<TaskId> dropped;
  if (packed.makespan <= height) {
    kept = packed.solution;
  } else {
    const Value theta = best_window_offset(inst, packed.solution, height);
    for (const Placement& p : packed.solution.placements) {
      const Task& t = inst.task(p.task);
      if (p.height >= theta && p.height + t.demand <= theta + height) {
        kept.placements.push_back({p.task, p.height - theta});
      } else {
        dropped.push_back(p.task);
      }
    }
    // Compact, then give the dropped tasks a second chance in the freed
    // headroom, heaviest-density first.
    if (options.apply_gravity) kept = apply_gravity(inst, kept);
    if (!options.reinsert) {
      out.solution = std::move(kept);
      out.kept_weight = out.solution.weight(inst);
      for (TaskId j : dropped) out.dropped_weight += inst.task(j).weight;
      telemetry::count("dsa.strip_transform.kept",
                       static_cast<std::int64_t>(out.solution.size()));
      telemetry::count("dsa.strip_transform.dropped",
                       static_cast<std::int64_t>(dropped.size()));
      return out;
    }
    std::ranges::sort(dropped, [&](TaskId a, TaskId b) {
      const Task& ta = inst.task(a);
      const Task& tb = inst.task(b);
      const Int128 lhs = static_cast<Int128>(ta.weight) * tb.demand;
      const Int128 rhs = static_cast<Int128>(tb.weight) * ta.demand;
      if (lhs != rhs) return lhs > rhs;
      return a < b;  // tie-break: order must not depend on sort internals
    });
    OccupancyIndex index(inst);
    for (const Placement& p : kept.placements) index.add(p);
    std::vector<TaskId> still_dropped;
    for (TaskId j : dropped) {
      const std::optional<Value> h = index.best_fit(inst.task(j), height);
      if (h.has_value()) {
        index.add({j, *h});
        ++out.reinserted;
      } else {
        still_dropped.push_back(j);
      }
    }
    kept.placements = index.placements();
    dropped = std::move(still_dropped);
  }

  out.solution = std::move(kept);
  out.kept_weight = out.solution.weight(inst);
  for (TaskId j : dropped) out.dropped_weight += inst.task(j).weight;
  telemetry::count("dsa.strip_transform.kept",
                   static_cast<std::int64_t>(out.solution.size()));
  telemetry::count("dsa.strip_transform.dropped",
                   static_cast<std::int64_t>(dropped.size()));
  telemetry::count("dsa.strip_transform.reinserted",
                   static_cast<std::int64_t>(out.reinserted));
  return out;
}

}  // namespace sap
