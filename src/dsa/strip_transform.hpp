// The strip transformation of Lemma 4: turn a B-packable UFPP solution of
// delta-small tasks into a B-packable SAP solution losing only a small
// weight fraction ( >= (1-4*delta) in the paper's analysis).
//
// Substitution note (see DESIGN.md §4.2): the paper invokes the boxing-based
// DSA of Buchsbaum et al. [12]; we replace it with a DSA heuristic portfolio
// followed by best-window extraction and greedy re-insertion, and *measure*
// the retained weight fraction in bench_strip_transform. The property the
// rest of the pipeline consumes — a height-bounded SAP packing retaining
// nearly all weight — is preserved.
#pragma once

#include "src/dsa/dsa.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Toggles for the transformation's design choices (ablated by
/// bench_ablations; production callers use the defaults).
struct StripTransformOptions {
  bool use_portfolio = true;   ///< false: single first-fit engine
  bool apply_gravity = true;   ///< compact the window before reinsertion
  bool reinsert = true;        ///< greedy second chance for dropped tasks
};

struct StripTransformResult {
  SapSolution solution;       ///< heights in [0, height); vertically disjoint
  Weight kept_weight = 0;
  Weight dropped_weight = 0;
  Value dsa_makespan = 0;     ///< makespan of the unrestricted DSA packing
  std::size_t reinserted = 0; ///< tasks recovered by the greedy second pass

  [[nodiscard]] double retention() const noexcept {
    const Weight total = kept_weight + dropped_weight;
    return total == 0 ? 1.0
                      : static_cast<double>(kept_weight) /
                            static_cast<double>(total);
  }
};

/// Packs the tasks of `ufpp` into a strip of the given height. The result is
/// vertically disjoint and below `height` everywhere; capacities are NOT
/// consulted (Strip-Pack lifts strips so capacity holds by construction).
[[nodiscard]] StripTransformResult strip_transform(
    const PathInstance& inst, const UfppSolution& ufpp, Value height,
    const StripTransformOptions& options = {});

}  // namespace sap
