#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "src/dsa/dsa.hpp"
#include "src/dsa/skyline.hpp"

namespace sap {
namespace {

std::vector<TaskId> ordered(const PathInstance& inst,
                            std::span<const TaskId> subset, DsaOrder order) {
  std::vector<TaskId> ids(subset.begin(), subset.end());
  switch (order) {
    case DsaOrder::kByLeftEndpoint:
      std::ranges::sort(ids, [&](TaskId a, TaskId b) {
        const Task& ta = inst.task(a);
        const Task& tb = inst.task(b);
        if (ta.first != tb.first) return ta.first < tb.first;
        if (ta.demand != tb.demand) return ta.demand > tb.demand;
        return a < b;
      });
      break;
    case DsaOrder::kByDemandDecreasing:
      std::ranges::sort(ids, [&](TaskId a, TaskId b) {
        const Task& ta = inst.task(a);
        const Task& tb = inst.task(b);
        if (ta.demand != tb.demand) return ta.demand > tb.demand;
        if (ta.first != tb.first) return ta.first < tb.first;
        return a < b;
      });
      break;
    case DsaOrder::kBySpanDecreasing:
      std::ranges::sort(ids, [&](TaskId a, TaskId b) {
        const Task& ta = inst.task(a);
        const Task& tb = inst.task(b);
        if (ta.span() != tb.span()) return ta.span() > tb.span();
        if (ta.demand != tb.demand) return ta.demand > tb.demand;
        return a < b;
      });
      break;
  }
  return ids;
}

}  // namespace

DsaResult dsa_pack(const PathInstance& inst, std::span<const TaskId> subset,
                   const DsaOptions& options) {
  OccupancyIndex index(inst);
  for (TaskId j : ordered(inst, subset, options.order)) {
    const Task& t = inst.task(j);
    Value height = 0;
    if (options.fit == DsaFit::kFirstFit) {
      height = index.lowest_fit(t);
    } else {
      height = index.best_fit(t, std::numeric_limits<Value>::max() / 2)
                   .value();  // unbounded limit always yields a height
    }
    index.add({j, height});
  }
  DsaResult out;
  out.solution.placements = index.placements();
  out.makespan = max_makespan(inst, out.solution);
  out.load = max_load(inst, subset);
  return out;
}

DsaResult dsa_pack_portfolio(const PathInstance& inst,
                             std::span<const TaskId> subset) {
  DsaResult best;
  best.makespan = std::numeric_limits<Value>::max();
  for (DsaOrder order : {DsaOrder::kByLeftEndpoint,
                         DsaOrder::kByDemandDecreasing,
                         DsaOrder::kBySpanDecreasing}) {
    for (DsaFit fit : {DsaFit::kFirstFit, DsaFit::kBestFit}) {
      DsaResult candidate = dsa_pack(inst, subset, {order, fit});
      if (candidate.makespan < best.makespan) best = std::move(candidate);
    }
  }
  DsaResult rounded = dsa_pack_rounded(inst, subset);
  if (rounded.makespan < best.makespan) best = std::move(rounded);
  return best;
}

}  // namespace sap
