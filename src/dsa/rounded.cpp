#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "src/dsa/dsa.hpp"

namespace sap {
namespace {

/// Optimal interval-graph coloring by left endpoint with a free-color pool:
/// uses exactly the clique number (max per-edge count) of colors.
std::vector<int> color_intervals(const PathInstance& inst,
                                 std::span<const TaskId> ids,
                                 int* num_colors) {
  std::vector<TaskId> order(ids.begin(), ids.end());
  std::ranges::sort(order, [&](TaskId a, TaskId b) {
    if (inst.task(a).first != inst.task(b).first) {
      return inst.task(a).first < inst.task(b).first;
    }
    return a < b;
  });
  // Min-heap of (release edge, color) of active tasks, plus free colors.
  std::vector<int> color_of(inst.num_tasks(), -1);
  std::multimap<EdgeId, int> active;  // last edge -> color
  std::vector<int> free_colors;
  int colors = 0;
  for (TaskId j : order) {
    const Task& t = inst.task(j);
    while (!active.empty() && active.begin()->first < t.first) {
      free_colors.push_back(active.begin()->second);
      active.erase(active.begin());
    }
    int c;
    if (free_colors.empty()) {
      c = colors++;
    } else {
      c = free_colors.back();
      free_colors.pop_back();
    }
    color_of[static_cast<std::size_t>(j)] = c;
    active.emplace(t.last, c);
  }
  *num_colors = colors;
  return color_of;
}

}  // namespace

DsaResult dsa_pack_rounded(const PathInstance& inst,
                           std::span<const TaskId> subset) {
  // Round demands to powers of two; within a class all (rounded) demands
  // are equal, so optimal stacking is interval coloring; classes stack on
  // top of each other in shelves.
  std::map<int, std::vector<TaskId>> classes;
  for (TaskId j : subset) {
    const auto demand = static_cast<std::uint64_t>(inst.task(j).demand);
    const int cls = static_cast<int>(std::bit_width(demand - 1));  // ceil log2
    classes[cls].push_back(j);
  }
  DsaResult out;
  Value base = 0;
  for (const auto& [cls, ids] : classes) {
    const Value slab = Value{1} << cls;
    int colors = 0;
    const std::vector<int> color_of = color_intervals(inst, ids, &colors);
    for (TaskId j : ids) {
      out.solution.placements.push_back(
          {j, base + slab * color_of[static_cast<std::size_t>(j)]});
    }
    base += slab * colors;
  }
  out.makespan = max_makespan(inst, out.solution);
  out.load = max_load(inst, subset);
  return out;
}

}  // namespace sap
