#include "src/dsa/rho_packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/dsa/skyline.hpp"
#include "src/util/rmq.hpp"

namespace sap {
namespace {

/// Orders tried by the packing portfolio (same spirit as dsa_pack).
std::vector<std::vector<TaskId>> candidate_orders(
    const PathInstance& inst, std::span<const TaskId> subset) {
  std::vector<std::vector<TaskId>> orders;
  std::vector<TaskId> base(subset.begin(), subset.end());

  auto by_left = base;
  std::ranges::sort(by_left, [&](TaskId a, TaskId b) {
    if (inst.task(a).first != inst.task(b).first) {
      return inst.task(a).first < inst.task(b).first;
    }
    if (inst.task(a).demand != inst.task(b).demand) {
      return inst.task(a).demand > inst.task(b).demand;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });
  orders.push_back(std::move(by_left));

  auto by_slack = base;  // tightest ceiling-slack first
  std::ranges::sort(by_slack, [&](TaskId a, TaskId b) {
    const Value slack_a = inst.bottleneck(a) - inst.task(a).demand;
    const Value slack_b = inst.bottleneck(b) - inst.task(b).demand;
    if (slack_a != slack_b) return slack_a < slack_b;
    if (inst.task(a).demand != inst.task(b).demand) {
      return inst.task(a).demand > inst.task(b).demand;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });
  orders.push_back(std::move(by_slack));

  auto by_demand = base;
  std::ranges::sort(by_demand, [&](TaskId a, TaskId b) {
    if (inst.task(a).demand != inst.task(b).demand) {
      return inst.task(a).demand > inst.task(b).demand;
    }
    if (inst.task(a).first != inst.task(b).first) {
      return inst.task(a).first < inst.task(b).first;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });
  orders.push_back(std::move(by_demand));
  return orders;
}

}  // namespace

SapSolution pack_under_ceilings(const PathInstance& inst,
                                std::span<const TaskId> subset,
                                std::span<const Value> ceilings) {
  const RangeMin ceiling_rmq(
      std::span<const std::int64_t>(ceilings.data(), ceilings.size()));
  for (const auto& order : candidate_orders(inst, subset)) {
    OccupancyIndex index(inst);
    bool ok = true;
    for (TaskId j : order) {
      const Task& t = inst.task(j);
      const Value ceiling =
          ceiling_rmq.min(static_cast<std::size_t>(t.first),
                          static_cast<std::size_t>(t.last));
      const Value h = index.lowest_fit(t);
      if (h + t.demand > ceiling) {
        ok = false;
        break;
      }
      index.add({j, h});
    }
    if (ok) return SapSolution{index.placements()};
  }
  return {};
}

RhoPackResult rho_pack_all(const PathInstance& inst,
                           std::span<const TaskId> subset,
                           const RhoPackOptions& options) {
  RhoPackResult out;
  if (subset.empty()) {
    out.rho = 0.0;
    out.found = true;
    return out;
  }
  const auto loads = edge_loads(inst, std::vector<TaskId>(subset.begin(),
                                                          subset.end()));
  double lb = 0.0;
  for (std::size_t e = 0; e < loads.size(); ++e) {
    lb = std::max(lb, static_cast<double>(loads[e]) /
                          static_cast<double>(inst.capacities()[e]));
  }
  out.lower_bound = lb;

  // Search numerators of rho = num / resolution in
  // [ceil(lb * resolution), ceil(lb * max_blowup * resolution)].
  const std::int64_t res = options.resolution;
  const auto lo_num = static_cast<std::int64_t>(
      std::ceil(lb * static_cast<double>(res) - 1e-9));
  const auto hi_num = std::max(
      lo_num + 1, static_cast<std::int64_t>(std::ceil(
                      lb * options.max_blowup * static_cast<double>(res))));

  auto ceilings_for = [&](std::int64_t num) {
    std::vector<Value> ceilings(inst.num_edges());
    for (std::size_t e = 0; e < ceilings.size(); ++e) {
      ceilings[e] = static_cast<Value>(
          (static_cast<Int128>(inst.capacities()[e]) * num) / res);
    }
    return ceilings;
  };

  // Exponential probe upward for a feasible point, then binary search.
  std::int64_t feasible_num = -1;
  SapSolution feasible_solution;
  for (std::int64_t num = std::max<std::int64_t>(lo_num, 1); num <= hi_num;
       num = std::max(num + 1, num + (num - lo_num))) {
    SapSolution sol = pack_under_ceilings(inst, subset, ceilings_for(num));
    if (sol.size() == subset.size()) {
      feasible_num = num;
      feasible_solution = std::move(sol);
      break;
    }
  }
  if (feasible_num < 0) return out;  // not found within the blowup budget

  std::int64_t lo = std::max<std::int64_t>(lo_num, 1);
  std::int64_t hi = feasible_num;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    SapSolution sol = pack_under_ceilings(inst, subset, ceilings_for(mid));
    if (sol.size() == subset.size()) {
      hi = mid;
      feasible_solution = std::move(sol);
    } else {
      lo = mid + 1;
    }
  }
  out.rho = static_cast<double>(hi) / static_cast<double>(res);
  out.solution = std::move(feasible_solution);
  out.found = true;
  return out;
}

}  // namespace sap
