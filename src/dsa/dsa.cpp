// Common DSA definitions live in first_fit.cpp and strip_transform.cpp; this
// TU anchors dsa.hpp so the build compiles the header under full warnings.
#include "src/dsa/dsa.hpp"

namespace sap {
static_assert(static_cast<int>(DsaOrder::kByLeftEndpoint) == 0);
}  // namespace sap
