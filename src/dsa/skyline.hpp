// Occupancy index for dynamic-storage-allocation style placement: per-edge
// buckets of placed tasks supporting "which placements overlap this task"
// and exact lowest-fit / best-fit queries.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Mutable index over a growing set of placements on a fixed instance.
class OccupancyIndex {
 public:
  explicit OccupancyIndex(const PathInstance& inst);

  /// Records a placement (caller guarantees it does not overlap existing
  /// placements; `lowest_fit`/`best_fit` results always qualify).
  void add(const Placement& p);

  /// Vertical spans [bottom, top) of distinct placements overlapping task t.
  [[nodiscard]] std::vector<std::pair<Value, Value>> blocking_spans(
      const Task& t) const;

  /// Lowest height h >= 0 such that [h, h + t.demand) is free along t's whole
  /// edge range. Unconstrained by capacity; callers cap as needed.
  [[nodiscard]] Value lowest_fit(const Task& t) const;

  /// Lowest height whose enclosing free gap wastes the least space, i.e. the
  /// bottom of the smallest free gap of size >= t.demand below `limit`;
  /// falls back to lowest_fit when no bounded gap fits. Returns nullopt only
  /// if even the unbounded top region starts at or above `limit`.
  [[nodiscard]] std::optional<Value> best_fit(const Task& t,
                                              Value limit) const;

  [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
    return placements_;
  }

 private:
  const PathInstance* inst_;
  std::vector<Placement> placements_;
  std::vector<std::vector<std::uint32_t>> by_edge_;  // placement ids per edge
};

}  // namespace sap
