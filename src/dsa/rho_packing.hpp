// The paper's concluding open problem (Section 8): extended DSA on a
// non-uniform capacity vector — given a path with capacities c and a set of
// (small) tasks, find the minimum coefficient rho such that ALL tasks pack
// as a SAP solution within the scaled capacities rho * c.
//
// The decision problem is NP-hard (it contains DSA), so this module
// provides: a heuristic upper bound (capacity-aware first-fit portfolio
// inside a binary search over rho), and the LOAD-based lower bound
// rho >= max_e load(e) / c_e. bench_rho_dsa measures the gap between the
// two across workloads — the quantity a future approximation algorithm for
// the open problem would have to beat.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

struct RhoPackOptions {
  /// rho is searched over multiples of 1/resolution.
  std::int64_t resolution = 64;
  /// Upper end of the search range, as a multiple of the lower bound.
  double max_blowup = 8.0;
};

struct RhoPackResult {
  /// Smallest multiplier found such that every task packs under
  /// floor(rho * c_e) (heuristic => an upper bound on the true optimum).
  double rho = 0.0;
  /// LOAD lower bound: max_e load(e) / c_e; no packing can beat this.
  double lower_bound = 0.0;
  /// The witness packing at `rho` (contains every task in the subset).
  SapSolution solution;
  bool found = false;  ///< false iff even max_blowup * lower_bound failed
};

/// Packs all of `subset` into the tightest rho * c it can certify.
[[nodiscard]] RhoPackResult rho_pack_all(const PathInstance& inst,
                                         std::span<const TaskId> subset,
                                         const RhoPackOptions& options = {});

/// Decision version: tries to pack every task under the given per-edge
/// ceilings (height + demand <= ceiling on every used edge). Returns an
/// empty solution on failure.
[[nodiscard]] SapSolution pack_under_ceilings(
    const PathInstance& inst, std::span<const TaskId> subset,
    std::span<const Value> ceilings);

}  // namespace sap
