// Dynamic Storage Allocation (DSA) heuristics: place *every* given task,
// minimizing makespan. DSA is the substrate of the small-task pipeline
// (Section 4): the Lemma-4 strip transformation runs a DSA engine and then
// extracts a bounded-height window.
//
// DSA is strongly NP-hard (Stockmeyer, via 3-PARTITION), so these are
// heuristics; `bench_strip_transform` measures how close their makespan is
// to LOAD on the delta-small workloads the paper's pipeline feeds them.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Placement order for the sequential DSA engines.
enum class DsaOrder {
  kByLeftEndpoint,     ///< classic sweep order (ties: taller first)
  kByDemandDecreasing, ///< tall rectangles first
  kBySpanDecreasing,   ///< long rectangles first
};

/// Height selection rule for each placed task.
enum class DsaFit {
  kFirstFit,  ///< lowest feasible height
  kBestFit,   ///< smallest gap that fits (lowest on ties)
};

struct DsaOptions {
  DsaOrder order = DsaOrder::kByLeftEndpoint;
  DsaFit fit = DsaFit::kFirstFit;
};

struct DsaResult {
  SapSolution solution;  ///< places every input task; ignores capacities
  Value makespan = 0;    ///< max over placements of height + demand
  Value load = 0;        ///< max per-edge demand sum (the LOAD lower bound)
};

/// Packs every task in `subset`, returning a vertically-disjoint placement
/// (heights unbounded; callers bound them via strip extraction or lifting).
[[nodiscard]] DsaResult dsa_pack(const PathInstance& inst,
                                 std::span<const TaskId> subset,
                                 const DsaOptions& options = {});

/// Shelf packer: rounds demands up to powers of two, colors each class
/// optimally (interval coloring), stacks the class shelves. Worse constants
/// on average than first-fit but immune to fragmentation pathologies.
[[nodiscard]] DsaResult dsa_pack_rounded(const PathInstance& inst,
                                         std::span<const TaskId> subset);

/// Runs dsa_pack under every (order, fit) combination plus the rounded
/// shelf packer, and keeps the result with the smallest makespan.
[[nodiscard]] DsaResult dsa_pack_portfolio(const PathInstance& inst,
                                           std::span<const TaskId> subset);

}  // namespace sap
