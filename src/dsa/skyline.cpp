#include "src/dsa/skyline.hpp"

#include <algorithm>
#include <limits>

namespace sap {

OccupancyIndex::OccupancyIndex(const PathInstance& inst)
    : inst_(&inst), by_edge_(inst.num_edges()) {}

void OccupancyIndex::add(const Placement& p) {
  const auto id = static_cast<std::uint32_t>(placements_.size());
  placements_.push_back(p);
  const Task& t = inst_->task(p.task);
  for (EdgeId e = t.first; e <= t.last; ++e) {
    by_edge_[static_cast<std::size_t>(e)].push_back(id);
  }
}

std::vector<std::pair<Value, Value>> OccupancyIndex::blocking_spans(
    const Task& t) const {
  std::vector<std::uint32_t> ids;
  for (EdgeId e = t.first; e <= t.last; ++e) {
    const auto& bucket = by_edge_[static_cast<std::size_t>(e)];
    ids.insert(ids.end(), bucket.begin(), bucket.end());
  }
  std::ranges::sort(ids);
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<std::pair<Value, Value>> spans;
  spans.reserve(ids.size());
  for (std::uint32_t id : ids) {
    const Placement& p = placements_[id];
    spans.emplace_back(p.height,
                       p.height + inst_->task(p.task).demand);
  }
  std::ranges::sort(spans);
  return spans;
}

Value OccupancyIndex::lowest_fit(const Task& t) const {
  Value candidate = 0;
  for (const auto& [bottom, top] : blocking_spans(t)) {
    if (bottom >= candidate + t.demand) break;  // gap below `bottom` fits
    candidate = std::max(candidate, top);
  }
  return candidate;
}

std::optional<Value> OccupancyIndex::best_fit(const Task& t,
                                              Value limit) const {
  const auto spans = blocking_spans(t);
  // Walk the free gaps between the merged occupied regions.
  Value gap_start = 0;
  Value best_height = -1;
  Value best_waste = std::numeric_limits<Value>::max();
  auto consider = [&](Value start, Value end) {  // bounded free gap
    const Value size = end - start;
    if (size >= t.demand && start + t.demand <= limit) {
      const Value waste = size - t.demand;
      if (waste < best_waste) {
        best_waste = waste;
        best_height = start;
      }
    }
  };
  for (const auto& [bottom, top] : spans) {
    if (bottom > gap_start) consider(gap_start, bottom);
    gap_start = std::max(gap_start, top);
  }
  if (best_height >= 0) return best_height;
  // Unbounded top region.
  if (gap_start + t.demand <= limit) return gap_start;
  return std::nullopt;
}

}  // namespace sap
