#include "src/ufpp/local_ratio.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sap {

UfppSolution interval_mwis(const PathInstance& inst,
                           std::span<const TaskId> subset) {
  // Classic DP over tasks sorted by last edge: f(i) = best of skip/take.
  std::vector<TaskId> ids(subset.begin(), subset.end());
  std::ranges::sort(ids, [&](TaskId a, TaskId b) {
    if (inst.task(a).last != inst.task(b).last) {
      return inst.task(a).last < inst.task(b).last;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });
  const std::size_t n = ids.size();
  // pred[i] = number of tasks (prefix length) fully left of task i.
  std::vector<std::size_t> pred(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const EdgeId first = inst.task(ids[i]).first;
    // Largest prefix whose members end strictly before `first`.
    std::size_t lo = 0, hi = i;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (inst.task(ids[mid]).last < first) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pred[i] = lo;
  }
  std::vector<Weight> f(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    f[i + 1] = std::max(f[i], inst.task(ids[i]).weight + f[pred[i]]);
  }
  UfppSolution out;
  for (std::size_t i = n; i > 0;) {
    if (f[i] == f[i - 1]) {
      --i;
    } else {
      out.tasks.push_back(ids[i - 1]);
      i = pred[i - 1];
    }
  }
  std::ranges::reverse(out.tasks);
  return out;
}

UfppSolution ufpp_uniform_narrow_local_ratio(const PathInstance& inst,
                                             std::span<const TaskId> subset,
                                             Value cap) {
  constexpr double kEps = 1e-9;
  std::vector<TaskId> ids(subset.begin(), subset.end());
  std::ranges::sort(ids, [&](TaskId a, TaskId b) {
    if (inst.task(a).last != inst.task(b).last) {
      return inst.task(a).last < inst.task(b).last;
    }
    return a < b;  // tie-break: order must not depend on sort internals
  });
  std::vector<double> w(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    w[i] = static_cast<double>(inst.task(ids[i]).weight);
  }

  // Forward pass: repeatedly take the min-right-endpoint task with positive
  // residual weight and subtract its local decomposition from overlappers.
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (w[i] <= kEps) continue;
    const double star = w[i];
    const Task& tstar = inst.task(ids[i]);
    stack.push_back(i);
    w[i] = 0.0;
    for (std::size_t k = i + 1; k < ids.size(); ++k) {
      const Task& t = inst.task(ids[k]);
      if (t.overlaps(tstar)) {
        w[k] -= star * 2.0 * static_cast<double>(t.demand) /
                static_cast<double>(cap);
      }
    }
  }

  // Backward pass: add each stacked task if it stays feasible against the
  // uniform capacity.
  std::vector<Value> load(inst.num_edges() + 1, 0);
  UfppSolution out;
  for (std::size_t s = stack.size(); s-- > 0;) {
    const TaskId j = ids[stack[s]];
    const Task& t = inst.task(j);
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last && fits; ++e) {
      fits = load[static_cast<std::size_t>(e)] + t.demand <= cap;
    }
    if (!fits) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    out.tasks.push_back(j);
  }
  return out;
}

UfppSolution ufpp_uniform_local_ratio(const PathInstance& inst) {
  const Value cap = inst.min_capacity();
  if (cap != inst.max_capacity()) {
    throw std::invalid_argument(
        "ufpp_uniform_local_ratio: capacities must be uniform");
  }
  std::vector<TaskId> wide;
  std::vector<TaskId> narrow;
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const auto id = static_cast<TaskId>(j);
    (2 * inst.task(id).demand > cap ? wide : narrow).push_back(id);
  }
  UfppSolution wide_sol = interval_mwis(inst, wide);
  UfppSolution narrow_sol =
      ufpp_uniform_narrow_local_ratio(inst, narrow, cap);
  return wide_sol.weight(inst) >= narrow_sol.weight(inst) ? wide_sol
                                                          : narrow_sol;
}

}  // namespace sap
