#include "src/ufpp/branch_and_bound.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/lp/ufpp_lp.hpp"

namespace sap {
namespace {

struct Searcher {
  const PathInstance& inst;
  const UfppExactOptions& options;
  std::vector<TaskId> order;        // density-descending task ids
  std::vector<Weight> suffix;       // suffix weight sums over `order`
  std::vector<Value> residual;      // per-edge remaining capacity
  std::vector<TaskId> current;
  std::vector<TaskId> best;
  Weight current_weight = 0;
  Weight best_weight = 0;
  std::size_t nodes = 0;
  bool budget_exhausted = false;
  bool timed_out = false;
  DeadlineGate gate;

  Searcher(const PathInstance& instance, std::span<const TaskId> subset,
           const UfppExactOptions& opts)
      : inst(instance), options(opts), order(subset.begin(), subset.end()),
        gate(opts.deadline) {
    std::ranges::sort(order, [&](TaskId a, TaskId b) {
      const Task& ta = inst.task(a);
      const Task& tb = inst.task(b);
      const Int128 lhs = static_cast<Int128>(ta.weight) * tb.demand;
      const Int128 rhs = static_cast<Int128>(tb.weight) * ta.demand;
      if (lhs != rhs) return lhs > rhs;
      return a < b;
    });
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i = order.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + inst.task(order[i]).weight;
    }
    residual = inst.capacities();
  }

  [[nodiscard]] bool fits(const Task& t) const {
    for (EdgeId e = t.first; e <= t.last; ++e) {
      if (residual[static_cast<std::size_t>(e)] < t.demand) return false;
    }
    return true;
  }

  void occupy(const Task& t, Value sign) {
    for (EdgeId e = t.first; e <= t.last; ++e) {
      residual[static_cast<std::size_t>(e)] -= sign * t.demand;
    }
  }

  // Reused bound scratch: the LP relaxation is rebuilt in place on every
  // probe, so its row/coefficient storage is recycled call to call instead
  // of being reallocated per node.
  std::vector<TaskId> rest;
  LpProblem relax;

  /// Upper bound on the weight attainable from order[i..) with the current
  /// residual capacities.
  [[nodiscard]] double remaining_bound(std::size_t i, std::size_t depth) {
    const auto loose = static_cast<double>(suffix[i]);
    if (!options.use_lp_bound || depth >= options.lp_bound_depth) {
      return loose;
    }
    rest.clear();
    for (std::size_t k = i; k < order.size(); ++k) {
      if (fits(inst.task(order[k]))) rest.push_back(order[k]);
    }
    if (rest.empty()) return 0.0;

    // Build the UFPP relaxation of the residual subproblem directly (the
    // same rows build_ufpp_relaxation would emit for the equivalent
    // sub-instance, without constructing one): a capacity row per edge some
    // surviving task crosses, then an x_v <= 1 box row per variable.
    // Residual capacities can hit 0 on saturated edges; clamp to 1, which
    // only loosens the LP value and so keeps it a valid upper bound.
    const std::size_t n = rest.size();
    relax.objective.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      relax.objective[v] = static_cast<double>(inst.task(rest[v]).weight);
    }
    if (relax.constraints.size() < residual.size() + n) {
      relax.constraints.resize(residual.size() + n);
    }
    std::size_t row = 0;
    for (std::size_t e = 0; e < residual.size(); ++e) {
      LpConstraint* con = nullptr;
      for (std::size_t v = 0; v < n; ++v) {
        const Task& t = inst.task(rest[v]);
        if (static_cast<std::size_t>(t.first) > e ||
            static_cast<std::size_t>(t.last) < e) {
          continue;
        }
        if (con == nullptr) {
          con = &relax.constraints[row++];
          con->coeffs.assign(n, 0.0);
          con->relation = LpRelation::kLessEqual;
          con->rhs = static_cast<double>(std::max<Value>(1, residual[e]));
        }
        con->coeffs[v] = static_cast<double>(t.demand);
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      LpConstraint& con = relax.constraints[row++];
      con.coeffs.assign(n, 0.0);
      con.coeffs[v] = 1.0;
      con.relation = LpRelation::kLessEqual;
      con.rhs = 1.0;
    }
    relax.constraints.resize(row);

    // Bound LPs only consume the objective value, so steepest-edge pricing
    // is safe here: it reaches the same LP optimum in (typically far) fewer
    // pivots, and any optimum makes the bound valid. The solve runs on the
    // thread arena, so this per-node LP costs no heap traffic once warm.
    LpOptions lp_options;
    lp_options.pricing = LpPricing::kSteepestEdge;
    lp_options.deadline = options.deadline;
    const LpSolution lp = solve_lp(relax, lp_options);
    if (lp.status != LpStatus::kOptimal) return loose;
    return std::min(loose, lp.objective + 1e-6);
  }

  void dfs(std::size_t i, std::size_t depth) {
    if (budget_exhausted || timed_out) return;
    if (gate.expired()) {
      timed_out = true;
      return;
    }
    if (++nodes > options.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (current_weight > best_weight) {
      best_weight = current_weight;
      best = current;
    }
    if (i == order.size()) return;
    const double bound = remaining_bound(i, depth);
    if (static_cast<double>(current_weight) + bound <=
        static_cast<double>(best_weight)) {
      return;
    }
    const Task& t = inst.task(order[i]);
    if (fits(t)) {  // include-first: density order makes this promising
      occupy(t, 1);
      current.push_back(order[i]);
      current_weight += t.weight;
      dfs(i + 1, depth + 1);
      current_weight -= t.weight;
      current.pop_back();
      occupy(t, -1);
    }
    dfs(i + 1, depth + 1);
  }
};

}  // namespace

UfppExactResult ufpp_exact(const PathInstance& inst,
                           std::span<const TaskId> subset,
                           const UfppExactOptions& options) {
  Searcher searcher(inst, subset, options);
  searcher.dfs(0, 0);
  UfppExactResult out;
  if (searcher.timed_out) {
    // Typed timeout outcome: empty solution, never the partial incumbent.
    out.timed_out = true;
    out.nodes = searcher.nodes;
    return out;
  }
  out.solution.tasks = std::move(searcher.best);
  out.weight = searcher.best_weight;
  out.proven_optimal = !searcher.budget_exhausted;
  out.nodes = searcher.nodes;
  return out;
}

UfppExactResult ufpp_exact(const PathInstance& inst,
                           const UfppExactOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return ufpp_exact(inst, all, options);
}

}  // namespace sap
