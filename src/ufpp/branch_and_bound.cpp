#include "src/ufpp/branch_and_bound.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/lp/ufpp_lp.hpp"

namespace sap {
namespace {

struct Searcher {
  const PathInstance& inst;
  const UfppExactOptions& options;
  std::vector<TaskId> order;        // density-descending task ids
  std::vector<Weight> suffix;       // suffix weight sums over `order`
  std::vector<Value> residual;      // per-edge remaining capacity
  std::vector<TaskId> current;
  std::vector<TaskId> best;
  Weight current_weight = 0;
  Weight best_weight = 0;
  std::size_t nodes = 0;
  bool budget_exhausted = false;
  bool timed_out = false;
  DeadlineGate gate;

  Searcher(const PathInstance& instance, std::span<const TaskId> subset,
           const UfppExactOptions& opts)
      : inst(instance), options(opts), order(subset.begin(), subset.end()),
        gate(opts.deadline) {
    std::ranges::sort(order, [&](TaskId a, TaskId b) {
      const Task& ta = inst.task(a);
      const Task& tb = inst.task(b);
      const Int128 lhs = static_cast<Int128>(ta.weight) * tb.demand;
      const Int128 rhs = static_cast<Int128>(tb.weight) * ta.demand;
      if (lhs != rhs) return lhs > rhs;
      return a < b;
    });
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i = order.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + inst.task(order[i]).weight;
    }
    residual = inst.capacities();
  }

  [[nodiscard]] bool fits(const Task& t) const {
    for (EdgeId e = t.first; e <= t.last; ++e) {
      if (residual[static_cast<std::size_t>(e)] < t.demand) return false;
    }
    return true;
  }

  void occupy(const Task& t, Value sign) {
    for (EdgeId e = t.first; e <= t.last; ++e) {
      residual[static_cast<std::size_t>(e)] -= sign * t.demand;
    }
  }

  /// Upper bound on the weight attainable from order[i..) with the current
  /// residual capacities.
  [[nodiscard]] double remaining_bound(std::size_t i, std::size_t depth) {
    const auto loose = static_cast<double>(suffix[i]);
    if (!options.use_lp_bound || depth >= options.lp_bound_depth) {
      return loose;
    }
    std::vector<TaskId> rest;
    rest.reserve(order.size() - i);
    for (std::size_t k = i; k < order.size(); ++k) {
      if (fits(inst.task(order[k]))) rest.push_back(order[k]);
    }
    if (rest.empty()) return 0.0;
    // Residual capacities can hit 0 on saturated edges; clamp to 1 so the
    // instance stays constructible. This only loosens the LP value, which
    // keeps it a valid upper bound.
    std::vector<Value> caps = residual;
    for (Value& c : caps) c = std::max<Value>(1, c);
    PathInstance sub(std::move(caps), [&] {
      std::vector<Task> ts;
      ts.reserve(rest.size());
      for (TaskId j : rest) ts.push_back(inst.task(j));
      return ts;
    }());
    const LpSolution lp = solve_ufpp_relaxation(
        sub, [&] {
          std::vector<TaskId> all(rest.size());
          std::iota(all.begin(), all.end(), TaskId{0});
          return all;
        }());
    if (lp.status != LpStatus::kOptimal) return loose;
    return std::min(loose, lp.objective + 1e-6);
  }

  void dfs(std::size_t i, std::size_t depth) {
    if (budget_exhausted || timed_out) return;
    if (gate.expired()) {
      timed_out = true;
      return;
    }
    if (++nodes > options.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (current_weight > best_weight) {
      best_weight = current_weight;
      best = current;
    }
    if (i == order.size()) return;
    const double bound = remaining_bound(i, depth);
    if (static_cast<double>(current_weight) + bound <=
        static_cast<double>(best_weight)) {
      return;
    }
    const Task& t = inst.task(order[i]);
    if (fits(t)) {  // include-first: density order makes this promising
      occupy(t, 1);
      current.push_back(order[i]);
      current_weight += t.weight;
      dfs(i + 1, depth + 1);
      current_weight -= t.weight;
      current.pop_back();
      occupy(t, -1);
    }
    dfs(i + 1, depth + 1);
  }
};

}  // namespace

UfppExactResult ufpp_exact(const PathInstance& inst,
                           std::span<const TaskId> subset,
                           const UfppExactOptions& options) {
  Searcher searcher(inst, subset, options);
  searcher.dfs(0, 0);
  UfppExactResult out;
  if (searcher.timed_out) {
    // Typed timeout outcome: empty solution, never the partial incumbent.
    out.timed_out = true;
    out.nodes = searcher.nodes;
    return out;
  }
  out.solution.tasks = std::move(searcher.best);
  out.weight = searcher.best_weight;
  out.proven_optimal = !searcher.budget_exhausted;
  out.nodes = searcher.nodes;
  return out;
}

UfppExactResult ufpp_exact(const PathInstance& inst,
                           const UfppExactOptions& options) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return ufpp_exact(inst, all, options);
}

}  // namespace sap
