// Local-ratio approximation for UFPP with uniform capacities (Bar-Noy,
// Bar-Yehuda, Freund, Naor, Schieber [5]): 3-approximation obtained by
// combining an exact interval-graph MWIS for wide tasks (d > c/2) with a
// 2-approximate local-ratio pass for narrow tasks (d <= c/2).
//
// This is the baseline the paper's related work compares against for
// UFPP-U / SAP-U, and a building block of the ratio benches.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Exact maximum-weight independent set of tasks that pairwise conflict
/// whenever they overlap (interval MWIS, O(n log n)). Used for "wide" tasks
/// where any two overlapping tasks exceed capacity together.
[[nodiscard]] UfppSolution interval_mwis(const PathInstance& inst,
                                         std::span<const TaskId> subset);

/// 2-approximation for tasks with d_j <= cap/2 on a uniform-capacity path,
/// by the classic local-ratio weight decomposition.
[[nodiscard]] UfppSolution ufpp_uniform_narrow_local_ratio(
    const PathInstance& inst, std::span<const TaskId> subset, Value cap);

/// 3-approximation for UFPP with uniform capacity `cap` (every c_e == cap):
/// best of exact-wide and local-ratio-narrow.
[[nodiscard]] UfppSolution ufpp_uniform_local_ratio(const PathInstance& inst);

}  // namespace sap
