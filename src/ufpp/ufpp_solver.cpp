#include "src/ufpp/ufpp_solver.hpp"

#include <bit>
#include <map>
#include <numeric>

#include "src/core/classify.hpp"
#include "src/core/rectangles.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/ufpp/lp_rounding.hpp"
#include "src/ufpp/strip_local_ratio.hpp"
#include "src/util/rng.hpp"
#include "src/util/telemetry.hpp"

namespace sap {
namespace {

int floor_log2(Value v) {
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v))) - 1;
}

/// Small tasks: per-octave (B/2)-packable solutions, unioned (the geometric
/// series over octaves keeps every edge feasible).
UfppSolution solve_small_ufpp(const PathInstance& inst,
                              std::span<const TaskId> subset,
                              const SolverParams& params) {
  std::map<int, std::vector<TaskId>> octaves;
  for (TaskId j : subset) {
    octaves[floor_log2(inst.bottleneck(j))].push_back(j);
  }
  Rng rng(params.seed ^ 0xBADC0FFEULL);
  UfppSolution out;
  for (const auto& [t, group] : octaves) {
    const Value big_b = Value{1} << t;
    if (big_b / 2 < 1) continue;
    auto [sub, back] = inst.clamp_capacities(2 * big_b, group);
    std::vector<TaskId> all(sub.num_tasks());
    std::iota(all.begin(), all.end(), TaskId{0});
    UfppSolution octave_sol;
    if (params.small_backend == SmallTaskBackend::kLpRounding) {
      Rng octave_rng = rng.fork();
      octave_sol = ufpp_lp_rounding_half_b(
                       sub, all, big_b,
                       {params.lp_rounding_eps, params.lp_rounding_trials},
                       octave_rng)
                       .solution;
    } else {
      octave_sol = ufpp_strip_local_ratio(sub, all, big_b);
    }
    for (TaskId j : octave_sol.tasks) {
      out.tasks.push_back(back[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

/// Medium tasks: AlmostUniform bands with an exact per-band UFPP oracle
/// under reserve-reduced capacities; residue-spaced bands then stack.
UfppSolution solve_medium_ufpp(const PathInstance& inst,
                               std::span<const TaskId> subset,
                               const SolverParams& params) {
  const int ell = params.effective_ell();
  const int q = params.beta_q();
  std::map<int, std::vector<TaskId>> bands;
  for (TaskId j : subset) {
    const int top = floor_log2(inst.bottleneck(j));
    for (int k = top - ell + 1; k <= top; ++k) {
      if (k >= 0) bands[k].push_back(j);
    }
  }

  std::map<int, UfppSolution> band_solutions;
  for (const auto& [k, members] : bands) {
    // Reserve for the residue class's lower bands: their total load on any
    // edge is below 2^(k-q+1), i.e. at most 2^(k-q+1) - 1 integrally.
    const Value reserve =
        k - q + 1 >= 0 ? (Value{1} << (k - q + 1)) - 1 : 0;
    const Value band_cap = Value{1} << (k + ell);
    std::vector<Value> caps(inst.num_edges());
    for (std::size_t e = 0; e < caps.size(); ++e) {
      // Band tasks only use edges with c_e >= 2^k > reserve, so flooring
      // unusable edges at 1 never admits band load.
      caps[e] = std::max<Value>(
          1, std::min(inst.capacities()[e], band_cap) - reserve);
    }
    std::vector<Task> tasks;
    std::vector<TaskId> back;
    {
      // Keep only tasks that still fit under the reduced capacities.
      RangeMin rmq(caps);
      for (TaskId j : members) {
        const Task& t = inst.task(j);
        if (t.demand <= rmq.min(static_cast<std::size_t>(t.first),
                                static_cast<std::size_t>(t.last))) {
          tasks.push_back(t);
          back.push_back(j);
        }
      }
    }
    if (tasks.empty()) {
      band_solutions.emplace(k, UfppSolution{});
      continue;
    }
    PathInstance sub(std::move(caps), std::move(tasks));
    UfppExactOptions opts;
    opts.max_nodes = 200'000;  // best-found fallback keeps this polynomial
    const UfppExactResult result = ufpp_exact(sub, opts);
    UfppSolution mapped;
    for (TaskId j : result.solution.tasks) {
      mapped.tasks.push_back(back[static_cast<std::size_t>(j)]);
    }
    band_solutions.emplace(k, std::move(mapped));
  }

  const int period = ell + q;
  UfppSolution best;
  Weight best_weight = -1;
  for (int r = 0; r < period; ++r) {
    UfppSolution combined;
    for (const auto& [k, sol] : band_solutions) {
      if ((k % period + period) % period != r) continue;
      combined.tasks.insert(combined.tasks.end(), sol.tasks.begin(),
                            sol.tasks.end());
    }
    const Weight w = combined.weight(inst);
    if (w > best_weight) {
      best_weight = w;
      best = std::move(combined);
    }
  }
  return best;
}

}  // namespace

UfppSolution solve_ufpp_approx(const PathInstance& inst,
                               const SolverParams& params,
                               UfppSolveReport* report) {
  params.validate();
  ScopedTimer solve_timer("ufpp.solve");
  const TaskClasses classes = classify_tasks(inst, params);
  telemetry::count("ufpp.tasks.small",
                   static_cast<std::int64_t>(classes.small.size()));
  telemetry::count("ufpp.tasks.medium",
                   static_cast<std::int64_t>(classes.medium.size()));
  telemetry::count("ufpp.tasks.large",
                   static_cast<std::int64_t>(classes.large.size()));

  UfppSolution small;
  UfppSolution medium;
  UfppSolution large;
  {
    ScopedTimer timer("ufpp.stage.small");
    small = solve_small_ufpp(inst, classes.small, params);
  }
  {
    ScopedTimer timer("ufpp.stage.medium");
    medium = solve_medium_ufpp(inst, classes.medium, params);
  }
  {
    ScopedTimer timer("ufpp.stage.large");
    const std::vector<TaskRect> rects = task_rectangles(inst, classes.large);
    const RectMwisResult mwis =
        rectangle_mwis(rects, {params.large_max_nodes});
    for (std::size_t idx : mwis.chosen) {
      large.tasks.push_back(rects[idx].task);
    }
  }

  const Weight ws = small.weight(inst);
  const Weight wm = medium.weight(inst);
  const Weight wl = large.weight(inst);
  if (report != nullptr) {
    report->num_small = classes.small.size();
    report->num_medium = classes.medium.size();
    report->num_large = classes.large.size();
    report->small_weight = ws;
    report->medium_weight = wm;
    report->large_weight = wl;
  }
  if (ws >= wm && ws >= wl) return small;
  if (wm >= wl) return medium;
  return large;
}

}  // namespace sap
