// LP-rounding pipeline of Section 4.1: solve the UFPP LP relaxation, scale
// the optimum by 1/4 (which makes it feasible for uniform capacity B/2 by
// Observation 2's "capacities in [B,2B)" normalization), then round.
//
// Substitution note (DESIGN.md §4.1): the paper invokes the Chekuri-Mydlarz-
// Shepherd (1+eps) rounding [17] as a black box; we implement randomized
// rounding with deterministic alteration (overloaded edges shed their
// lowest-density tasks) plus greedy repair-reinsertion, repeated over
// independent trials. bench_lr_vs_lp measures the achieved fraction of the
// scaled LP value.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/util/rng.hpp"

namespace sap {

struct LpRoundingOptions {
  double eps = 0.2;       ///< rounding slack: include with prob x'/(1+eps)
  int trials = 8;         ///< independent rounding trials; best kept
};

struct LpRoundingResult {
  UfppSolution solution;    ///< (B/2)-packable on every edge
  double lp_value = 0.0;    ///< optimum of the (unscaled) LP relaxation
  double scaled_lp = 0.0;   ///< lp_value / 4: the rounding target
};

/// Rounds the quarter-scaled LP optimum of `subset` (tasks with b(j) in
/// [B, 2B)) into an integral UFPP solution with load <= B/2 everywhere.
[[nodiscard]] LpRoundingResult ufpp_lp_rounding_half_b(
    const PathInstance& inst, std::span<const TaskId> subset, Value big_b,
    const LpRoundingOptions& options, Rng& rng);

}  // namespace sap
