#include "src/ufpp/strip_local_ratio.hpp"

#include <algorithm>
#include <vector>

namespace sap {

UfppSolution ufpp_strip_local_ratio(const PathInstance& inst,
                                    std::span<const TaskId> subset,
                                    Value big_b) {
  constexpr double kEps = 1e-9;

  // Line 2 of Algorithm 3 always picks the remaining positive-weight task
  // with minimum right endpoint, so one pass in right-endpoint order
  // realizes the whole recursion; the stack records the pick order.
  std::vector<TaskId> ids(subset.begin(), subset.end());
  std::ranges::sort(ids, [&](TaskId a, TaskId b) {
    if (inst.task(a).last != inst.task(b).last) {
      return inst.task(a).last < inst.task(b).last;
    }
    return a < b;
  });
  std::vector<double> w(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    w[i] = static_cast<double>(inst.task(ids[i]).weight);
  }

  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (w[i] <= kEps) continue;
    const double star = w[i];
    const Task& tstar = inst.task(ids[i]);
    stack.push_back(i);
    w[i] = 0.0;  // w1(j*) = w(j*)
    for (std::size_t k = i + 1; k < ids.size(); ++k) {
      const Task& t = inst.task(ids[k]);
      if (t.overlaps(tstar)) {
        // w1(j) = w(j*) * 2 d_j / B for overlapping j != j*.
        w[k] -= star * 2.0 * static_cast<double>(t.demand) /
                static_cast<double>(big_b);
      }
    }
  }

  // Unwind (line 7): add j* back iff the load on its right-most edge stays
  // at most B/2 - d_{j*}. As in the paper, every already-added task that
  // touches I_{j*} also touches e*, so this single check bounds all edges.
  std::vector<Value> load(inst.num_edges(), 0);
  UfppSolution out;
  for (std::size_t s = stack.size(); s-- > 0;) {
    const TaskId j = ids[stack[s]];
    const Task& t = inst.task(j);
    const auto e_star = static_cast<std::size_t>(t.last);
    if (2 * (load[e_star] + t.demand) > big_b) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    out.tasks.push_back(j);
  }
  return out;
}

}  // namespace sap
