#include "src/ufpp/lp_rounding.hpp"

#include <algorithm>
#include <vector>

#include "src/lp/ufpp_lp.hpp"

namespace sap {
namespace {

/// Drops lowest-density tasks from overloaded edges until every edge's load
/// is at most `limit`; returns the surviving subset positions.
std::vector<std::size_t> alteration(const PathInstance& inst,
                                    std::span<const TaskId> subset,
                                    std::vector<std::size_t> picked,
                                    Value limit) {
  // Iterate until clean: each round finds the most overloaded edge and
  // removes the lowest weight-density task crossing it.
  for (;;) {
    std::vector<Value> load(inst.num_edges(), 0);
    for (std::size_t v : picked) {
      const Task& t = inst.task(subset[v]);
      for (EdgeId e = t.first; e <= t.last; ++e) {
        load[static_cast<std::size_t>(e)] += t.demand;
      }
    }
    std::size_t worst_edge = load.size();
    Value worst = limit;
    for (std::size_t e = 0; e < load.size(); ++e) {
      if (load[e] > worst) {
        worst = load[e];
        worst_edge = e;
      }
    }
    if (worst_edge == load.size()) return picked;

    std::size_t victim_pos = picked.size();
    for (std::size_t i = 0; i < picked.size(); ++i) {
      const Task& t = inst.task(subset[picked[i]]);
      if (!t.uses(static_cast<EdgeId>(worst_edge))) continue;
      if (victim_pos == picked.size()) {
        victim_pos = i;
        continue;
      }
      const Task& v = inst.task(subset[picked[victim_pos]]);
      // Lower weight per unit of demand*span goes first.
      const Int128 lhs = static_cast<Int128>(t.weight) * v.demand *
                           v.span();
      const Int128 rhs = static_cast<Int128>(v.weight) * t.demand *
                           t.span();
      if (lhs < rhs) victim_pos = i;
    }
    picked.erase(picked.begin() + static_cast<std::ptrdiff_t>(victim_pos));
  }
}

/// Greedily re-adds unpicked tasks (by density) while the load cap holds.
void repair_reinsert(const PathInstance& inst, std::span<const TaskId> subset,
                     std::vector<std::size_t>& picked, Value limit) {
  std::vector<bool> in(subset.size(), false);
  for (std::size_t v : picked) in[v] = true;
  std::vector<Value> load(inst.num_edges(), 0);
  for (std::size_t v : picked) {
    const Task& t = inst.task(subset[v]);
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
  }
  std::vector<std::size_t> rest;
  for (std::size_t v = 0; v < subset.size(); ++v) {
    if (!in[v]) rest.push_back(v);
  }
  std::ranges::sort(rest, [&](std::size_t a, std::size_t b) {
    const Task& ta = inst.task(subset[a]);
    const Task& tb = inst.task(subset[b]);
    const Int128 lhs = static_cast<Int128>(ta.weight) * tb.demand;
    const Int128 rhs = static_cast<Int128>(tb.weight) * ta.demand;
    if (lhs != rhs) return lhs > rhs;
    return a < b;  // tie-break: order must not depend on sort internals
  });
  for (std::size_t v : rest) {
    const Task& t = inst.task(subset[v]);
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last && fits; ++e) {
      fits = load[static_cast<std::size_t>(e)] + t.demand <= limit;
    }
    if (!fits) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    picked.push_back(v);
  }
}

}  // namespace

LpRoundingResult ufpp_lp_rounding_half_b(const PathInstance& inst,
                                         std::span<const TaskId> subset,
                                         Value big_b,
                                         const LpRoundingOptions& options,
                                         Rng& rng) {
  LpRoundingResult out;
  if (subset.empty()) return out;

  const LpSolution lp = solve_ufpp_relaxation(inst, subset);
  out.lp_value = lp.objective;
  out.scaled_lp = lp.objective / 4.0;
  if (lp.status != LpStatus::kOptimal) return out;

  const Value limit = big_b / 2;
  Weight best_weight = -1;
  std::vector<std::size_t> best;
  for (int trial = 0; trial < options.trials; ++trial) {
    std::vector<std::size_t> picked;
    for (std::size_t v = 0; v < subset.size(); ++v) {
      const double p = (lp.x[v] / 4.0) / (1.0 + options.eps);
      if (rng.bernoulli(p)) picked.push_back(v);
    }
    picked = alteration(inst, subset, std::move(picked), limit);
    repair_reinsert(inst, subset, picked, limit);
    Weight weight = 0;
    for (std::size_t v : picked) weight += inst.task(subset[v]).weight;
    if (weight > best_weight) {
      best_weight = weight;
      best = std::move(picked);
    }
  }
  for (std::size_t v : best) out.solution.tasks.push_back(subset[v]);
  return out;
}

}  // namespace sap
