// Algorithm "Strip" — the paper's Appendix, verbatim: a local-ratio
// algorithm that computes (B/2)-packable UFPP solutions for delta-small
// instances whose bottlenecks lie in [B, 2B). Combined with the strip
// transformation it yields the deterministic (5+eps) small-task pipeline.
#pragma once

#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

/// Runs Algorithm 3 (Strip) on `subset`, which must consist of tasks with
/// b(j) in [B, 2B). The result is (B/2)-packable: its load never exceeds B/2
/// on any edge. Approximation factor 5/(1-4*delta) against OPT_SAP(subset).
[[nodiscard]] UfppSolution ufpp_strip_local_ratio(const PathInstance& inst,
                                                  std::span<const TaskId> subset,
                                                  Value big_b);

}  // namespace sap
