// Exact UFPP via depth-first branch-and-bound with LP-relaxation bounding.
//
// Serves as the OPT_UFPP oracle of the benches: OPT_SAP <= OPT_UFPP, so the
// exact UFPP value upper-bounds SAP optima on instances too large for the
// SAP oracles, and it is the baseline in the UFPP-vs-SAP gap experiments
// (Figure 1).
#pragma once

#include <cstddef>
#include <span>

#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/util/deadline.hpp"

namespace sap {

struct UfppExactOptions {
  std::size_t max_nodes = 20'000'000;  ///< search-node budget
  bool use_lp_bound = true;            ///< LP bound at shallow nodes
  std::size_t lp_bound_depth = 8;      ///< depths [0, this) get LP bounds
  /// Cooperative cancellation: expiry stops the search and the result is a
  /// typed timeout (`timed_out`, empty solution) — never a partial answer.
  Deadline deadline{};
};

struct UfppExactResult {
  UfppSolution solution;
  Weight weight = 0;
  bool proven_optimal = false;  ///< false iff the node budget ran out
  bool timed_out = false;       ///< deadline expired: solution is empty
  std::size_t nodes = 0;
};

/// Maximum-weight feasible UFPP subset of `subset` by branch-and-bound.
[[nodiscard]] UfppExactResult ufpp_exact(const PathInstance& inst,
                                         std::span<const TaskId> subset,
                                         const UfppExactOptions& options = {});

/// Convenience overload over all tasks.
[[nodiscard]] UfppExactResult ufpp_exact(const PathInstance& inst,
                                         const UfppExactOptions& options = {});

}  // namespace sap
