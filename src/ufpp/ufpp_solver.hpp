// A Bonsma-Schulz-Wiese-style constant-factor UFPP pipeline, assembled
// from the same substrates as the SAP solver. The paper's algorithm is "a
// variation of the framework for approximating UFPP by Bonsma et al."
// (§1.2); having the UFPP original alongside lets the benches measure what
// SAP's contiguity requirement costs on identical workloads.
//
// Structure (mirrors solve_sap):
//   small  — per-octave (B/2)-packable UFPP solutions (local ratio or LP
//            rounding); the union over octaves is feasible because octave
//            t contributes load <= 2^(t-1) only to edges with c_e >= 2^t,
//            and the geometric series sum_{2^t <= c_e} 2^(t-1) < c_e.
//   medium — AlmostUniform bands with an exact per-band UFPP oracle run
//            under reserve-reduced capacities min(c_e, 2^(k+ell)) -
//            2^(k-q+1); bands spaced ell+q apart then stack within the
//            reserve (the UFPP analogue of beta-elevation).
//   large  — the rectangle MWIS (its output is in particular UFPP
//            feasible; Bonsma et al. analyse it at 2k vs our 2k-1).
// Returns the heaviest of the three (Lemma 3).
#pragma once

#include "src/core/params.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"

namespace sap {

struct UfppSolveReport {
  std::size_t num_small = 0;
  std::size_t num_medium = 0;
  std::size_t num_large = 0;
  Weight small_weight = 0;
  Weight medium_weight = 0;
  Weight large_weight = 0;
};

/// The full UFPP approximation pipeline. Always returns a feasible UFPP
/// solution (verified by tests against verify_ufpp).
[[nodiscard]] UfppSolution solve_ufpp_approx(const PathInstance& inst,
                                             const SolverParams& params = {},
                                             UfppSolveReport* report = nullptr);

}  // namespace sap
