# Empty dependencies file for bench_sapu.
# This may be replaced when dependencies are built.
