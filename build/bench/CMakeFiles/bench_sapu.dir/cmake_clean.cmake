file(REMOVE_RECURSE
  "CMakeFiles/bench_sapu.dir/bench_sapu.cpp.o"
  "CMakeFiles/bench_sapu.dir/bench_sapu.cpp.o.d"
  "bench_sapu"
  "bench_sapu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sapu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
