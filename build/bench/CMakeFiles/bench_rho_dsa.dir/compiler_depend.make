# Empty compiler generated dependencies file for bench_rho_dsa.
# This may be replaced when dependencies are built.
