file(REMOVE_RECURSE
  "CMakeFiles/bench_rho_dsa.dir/bench_rho_dsa.cpp.o"
  "CMakeFiles/bench_rho_dsa.dir/bench_rho_dsa.cpp.o.d"
  "bench_rho_dsa"
  "bench_rho_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rho_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
