# Empty compiler generated dependencies file for bench_price_of_contiguity.
# This may be replaced when dependencies are built.
