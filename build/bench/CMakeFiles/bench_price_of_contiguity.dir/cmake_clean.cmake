file(REMOVE_RECURSE
  "CMakeFiles/bench_price_of_contiguity.dir/bench_price_of_contiguity.cpp.o"
  "CMakeFiles/bench_price_of_contiguity.dir/bench_price_of_contiguity.cpp.o.d"
  "bench_price_of_contiguity"
  "bench_price_of_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_price_of_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
