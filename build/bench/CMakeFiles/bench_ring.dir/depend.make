# Empty dependencies file for bench_ring.
# This may be replaced when dependencies are built.
