file(REMOVE_RECURSE
  "CMakeFiles/bench_small_tasks.dir/bench_small_tasks.cpp.o"
  "CMakeFiles/bench_small_tasks.dir/bench_small_tasks.cpp.o.d"
  "bench_small_tasks"
  "bench_small_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
