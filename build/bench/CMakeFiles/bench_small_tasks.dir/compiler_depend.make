# Empty compiler generated dependencies file for bench_small_tasks.
# This may be replaced when dependencies are built.
