file(REMOVE_RECURSE
  "CMakeFiles/bench_large_tasks.dir/bench_large_tasks.cpp.o"
  "CMakeFiles/bench_large_tasks.dir/bench_large_tasks.cpp.o.d"
  "bench_large_tasks"
  "bench_large_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
