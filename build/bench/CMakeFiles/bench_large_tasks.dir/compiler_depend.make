# Empty compiler generated dependencies file for bench_large_tasks.
# This may be replaced when dependencies are built.
