file(REMOVE_RECURSE
  "CMakeFiles/bench_lr_vs_lp.dir/bench_lr_vs_lp.cpp.o"
  "CMakeFiles/bench_lr_vs_lp.dir/bench_lr_vs_lp.cpp.o.d"
  "bench_lr_vs_lp"
  "bench_lr_vs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lr_vs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
