# Empty dependencies file for bench_lr_vs_lp.
# This may be replaced when dependencies are built.
