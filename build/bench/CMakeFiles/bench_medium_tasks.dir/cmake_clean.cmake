file(REMOVE_RECURSE
  "CMakeFiles/bench_medium_tasks.dir/bench_medium_tasks.cpp.o"
  "CMakeFiles/bench_medium_tasks.dir/bench_medium_tasks.cpp.o.d"
  "bench_medium_tasks"
  "bench_medium_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_medium_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
