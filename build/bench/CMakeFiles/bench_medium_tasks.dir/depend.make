# Empty dependencies file for bench_medium_tasks.
# This may be replaced when dependencies are built.
