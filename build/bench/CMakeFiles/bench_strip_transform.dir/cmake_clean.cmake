file(REMOVE_RECURSE
  "CMakeFiles/bench_strip_transform.dir/bench_strip_transform.cpp.o"
  "CMakeFiles/bench_strip_transform.dir/bench_strip_transform.cpp.o.d"
  "bench_strip_transform"
  "bench_strip_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strip_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
