# Empty compiler generated dependencies file for bench_strip_transform.
# This may be replaced when dependencies are built.
