file(REMOVE_RECURSE
  "CMakeFiles/bench_full_solver.dir/bench_full_solver.cpp.o"
  "CMakeFiles/bench_full_solver.dir/bench_full_solver.cpp.o.d"
  "bench_full_solver"
  "bench_full_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
