# Empty dependencies file for bench_full_solver.
# This may be replaced when dependencies are built.
