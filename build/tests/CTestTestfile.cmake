# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/gravity_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/knapsack_test[1]_include.cmake")
include("/root/repo/build/tests/dsa_test[1]_include.cmake")
include("/root/repo/build/tests/ufpp_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/small_tasks_test[1]_include.cmake")
include("/root/repo/build/tests/medium_tasks_test[1]_include.cmake")
include("/root/repo/build/tests/large_tasks_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/paper_instances_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/hardness_test[1]_include.cmake")
include("/root/repo/build/tests/sapu_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/dsa_property_test[1]_include.cmake")
include("/root/repo/build/tests/ring_property_test[1]_include.cmake")
include("/root/repo/build/tests/rho_packing_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/ufpp_solver_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_substrate_test[1]_include.cmake")
