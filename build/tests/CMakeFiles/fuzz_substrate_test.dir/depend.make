# Empty dependencies file for fuzz_substrate_test.
# This may be replaced when dependencies are built.
