file(REMOVE_RECURSE
  "CMakeFiles/fuzz_substrate_test.dir/fuzz_substrate_test.cpp.o"
  "CMakeFiles/fuzz_substrate_test.dir/fuzz_substrate_test.cpp.o.d"
  "fuzz_substrate_test"
  "fuzz_substrate_test.pdb"
  "fuzz_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
