# Empty compiler generated dependencies file for rho_packing_test.
# This may be replaced when dependencies are built.
