file(REMOVE_RECURSE
  "CMakeFiles/rho_packing_test.dir/rho_packing_test.cpp.o"
  "CMakeFiles/rho_packing_test.dir/rho_packing_test.cpp.o.d"
  "rho_packing_test"
  "rho_packing_test.pdb"
  "rho_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
