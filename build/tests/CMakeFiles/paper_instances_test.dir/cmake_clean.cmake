file(REMOVE_RECURSE
  "CMakeFiles/paper_instances_test.dir/paper_instances_test.cpp.o"
  "CMakeFiles/paper_instances_test.dir/paper_instances_test.cpp.o.d"
  "paper_instances_test"
  "paper_instances_test.pdb"
  "paper_instances_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
