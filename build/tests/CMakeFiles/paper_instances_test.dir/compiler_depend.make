# Empty compiler generated dependencies file for paper_instances_test.
# This may be replaced when dependencies are built.
