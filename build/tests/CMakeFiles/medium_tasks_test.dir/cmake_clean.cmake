file(REMOVE_RECURSE
  "CMakeFiles/medium_tasks_test.dir/medium_tasks_test.cpp.o"
  "CMakeFiles/medium_tasks_test.dir/medium_tasks_test.cpp.o.d"
  "medium_tasks_test"
  "medium_tasks_test.pdb"
  "medium_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medium_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
