# Empty dependencies file for medium_tasks_test.
# This may be replaced when dependencies are built.
