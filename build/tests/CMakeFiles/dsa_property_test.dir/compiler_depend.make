# Empty compiler generated dependencies file for dsa_property_test.
# This may be replaced when dependencies are built.
