file(REMOVE_RECURSE
  "CMakeFiles/dsa_property_test.dir/dsa_property_test.cpp.o"
  "CMakeFiles/dsa_property_test.dir/dsa_property_test.cpp.o.d"
  "dsa_property_test"
  "dsa_property_test.pdb"
  "dsa_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
