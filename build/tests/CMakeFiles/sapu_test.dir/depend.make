# Empty dependencies file for sapu_test.
# This may be replaced when dependencies are built.
