file(REMOVE_RECURSE
  "CMakeFiles/sapu_test.dir/sapu_test.cpp.o"
  "CMakeFiles/sapu_test.dir/sapu_test.cpp.o.d"
  "sapu_test"
  "sapu_test.pdb"
  "sapu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
