# Empty compiler generated dependencies file for ring_property_test.
# This may be replaced when dependencies are built.
