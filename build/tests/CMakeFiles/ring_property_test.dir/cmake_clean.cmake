file(REMOVE_RECURSE
  "CMakeFiles/ring_property_test.dir/ring_property_test.cpp.o"
  "CMakeFiles/ring_property_test.dir/ring_property_test.cpp.o.d"
  "ring_property_test"
  "ring_property_test.pdb"
  "ring_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
