file(REMOVE_RECURSE
  "CMakeFiles/gravity_test.dir/gravity_test.cpp.o"
  "CMakeFiles/gravity_test.dir/gravity_test.cpp.o.d"
  "gravity_test"
  "gravity_test.pdb"
  "gravity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
