file(REMOVE_RECURSE
  "CMakeFiles/large_tasks_test.dir/large_tasks_test.cpp.o"
  "CMakeFiles/large_tasks_test.dir/large_tasks_test.cpp.o.d"
  "large_tasks_test"
  "large_tasks_test.pdb"
  "large_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
