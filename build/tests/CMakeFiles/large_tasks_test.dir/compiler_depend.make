# Empty compiler generated dependencies file for large_tasks_test.
# This may be replaced when dependencies are built.
