# Empty dependencies file for ufpp_test.
# This may be replaced when dependencies are built.
