file(REMOVE_RECURSE
  "CMakeFiles/ufpp_test.dir/ufpp_test.cpp.o"
  "CMakeFiles/ufpp_test.dir/ufpp_test.cpp.o.d"
  "ufpp_test"
  "ufpp_test.pdb"
  "ufpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
