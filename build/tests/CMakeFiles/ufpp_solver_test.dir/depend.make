# Empty dependencies file for ufpp_solver_test.
# This may be replaced when dependencies are built.
