file(REMOVE_RECURSE
  "CMakeFiles/ufpp_solver_test.dir/ufpp_solver_test.cpp.o"
  "CMakeFiles/ufpp_solver_test.dir/ufpp_solver_test.cpp.o.d"
  "ufpp_solver_test"
  "ufpp_solver_test.pdb"
  "ufpp_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufpp_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
