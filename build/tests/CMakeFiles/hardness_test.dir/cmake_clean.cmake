file(REMOVE_RECURSE
  "CMakeFiles/hardness_test.dir/hardness_test.cpp.o"
  "CMakeFiles/hardness_test.dir/hardness_test.cpp.o.d"
  "hardness_test"
  "hardness_test.pdb"
  "hardness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
