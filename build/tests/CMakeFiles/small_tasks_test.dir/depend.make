# Empty dependencies file for small_tasks_test.
# This may be replaced when dependencies are built.
