file(REMOVE_RECURSE
  "CMakeFiles/small_tasks_test.dir/small_tasks_test.cpp.o"
  "CMakeFiles/small_tasks_test.dir/small_tasks_test.cpp.o.d"
  "small_tasks_test"
  "small_tasks_test.pdb"
  "small_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
