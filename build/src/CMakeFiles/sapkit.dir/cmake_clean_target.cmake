file(REMOVE_RECURSE
  "libsapkit.a"
)
