
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/sapkit.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/large_tasks.cpp" "src/CMakeFiles/sapkit.dir/core/large_tasks.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/large_tasks.cpp.o.d"
  "/root/repo/src/core/medium_tasks.cpp" "src/CMakeFiles/sapkit.dir/core/medium_tasks.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/medium_tasks.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/sapkit.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/params.cpp.o.d"
  "/root/repo/src/core/rectangles.cpp" "src/CMakeFiles/sapkit.dir/core/rectangles.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/rectangles.cpp.o.d"
  "/root/repo/src/core/ring_solver.cpp" "src/CMakeFiles/sapkit.dir/core/ring_solver.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/ring_solver.cpp.o.d"
  "/root/repo/src/core/sap_solver.cpp" "src/CMakeFiles/sapkit.dir/core/sap_solver.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/sap_solver.cpp.o.d"
  "/root/repo/src/core/small_tasks.cpp" "src/CMakeFiles/sapkit.dir/core/small_tasks.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/core/small_tasks.cpp.o.d"
  "/root/repo/src/dsa/dsa.cpp" "src/CMakeFiles/sapkit.dir/dsa/dsa.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/dsa.cpp.o.d"
  "/root/repo/src/dsa/first_fit.cpp" "src/CMakeFiles/sapkit.dir/dsa/first_fit.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/first_fit.cpp.o.d"
  "/root/repo/src/dsa/rho_packing.cpp" "src/CMakeFiles/sapkit.dir/dsa/rho_packing.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/rho_packing.cpp.o.d"
  "/root/repo/src/dsa/rounded.cpp" "src/CMakeFiles/sapkit.dir/dsa/rounded.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/rounded.cpp.o.d"
  "/root/repo/src/dsa/skyline.cpp" "src/CMakeFiles/sapkit.dir/dsa/skyline.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/skyline.cpp.o.d"
  "/root/repo/src/dsa/strip_transform.cpp" "src/CMakeFiles/sapkit.dir/dsa/strip_transform.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/dsa/strip_transform.cpp.o.d"
  "/root/repo/src/exact/brute_force.cpp" "src/CMakeFiles/sapkit.dir/exact/brute_force.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/exact/brute_force.cpp.o.d"
  "/root/repo/src/exact/profile_dp.cpp" "src/CMakeFiles/sapkit.dir/exact/profile_dp.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/exact/profile_dp.cpp.o.d"
  "/root/repo/src/exact/ufpp_profile_dp.cpp" "src/CMakeFiles/sapkit.dir/exact/ufpp_profile_dp.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/exact/ufpp_profile_dp.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/CMakeFiles/sapkit.dir/gen/generators.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/gen/generators.cpp.o.d"
  "/root/repo/src/gen/hardness.cpp" "src/CMakeFiles/sapkit.dir/gen/hardness.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/gen/hardness.cpp.o.d"
  "/root/repo/src/gen/paper_instances.cpp" "src/CMakeFiles/sapkit.dir/gen/paper_instances.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/gen/paper_instances.cpp.o.d"
  "/root/repo/src/harness/ratio_harness.cpp" "src/CMakeFiles/sapkit.dir/harness/ratio_harness.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/harness/ratio_harness.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/CMakeFiles/sapkit.dir/harness/table.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/harness/table.cpp.o.d"
  "/root/repo/src/io/instance_io.cpp" "src/CMakeFiles/sapkit.dir/io/instance_io.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/io/instance_io.cpp.o.d"
  "/root/repo/src/knapsack/knapsack.cpp" "src/CMakeFiles/sapkit.dir/knapsack/knapsack.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/knapsack/knapsack.cpp.o.d"
  "/root/repo/src/lp/dense_matrix.cpp" "src/CMakeFiles/sapkit.dir/lp/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/lp/dense_matrix.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/sapkit.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/lp/ufpp_lp.cpp" "src/CMakeFiles/sapkit.dir/lp/ufpp_lp.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/lp/ufpp_lp.cpp.o.d"
  "/root/repo/src/model/gravity.cpp" "src/CMakeFiles/sapkit.dir/model/gravity.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/gravity.cpp.o.d"
  "/root/repo/src/model/path_instance.cpp" "src/CMakeFiles/sapkit.dir/model/path_instance.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/path_instance.cpp.o.d"
  "/root/repo/src/model/ring_instance.cpp" "src/CMakeFiles/sapkit.dir/model/ring_instance.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/ring_instance.cpp.o.d"
  "/root/repo/src/model/solution.cpp" "src/CMakeFiles/sapkit.dir/model/solution.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/solution.cpp.o.d"
  "/root/repo/src/model/task.cpp" "src/CMakeFiles/sapkit.dir/model/task.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/task.cpp.o.d"
  "/root/repo/src/model/verify.cpp" "src/CMakeFiles/sapkit.dir/model/verify.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/model/verify.cpp.o.d"
  "/root/repo/src/sapu/sapu_solver.cpp" "src/CMakeFiles/sapkit.dir/sapu/sapu_solver.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/sapu/sapu_solver.cpp.o.d"
  "/root/repo/src/ufpp/branch_and_bound.cpp" "src/CMakeFiles/sapkit.dir/ufpp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/ufpp/branch_and_bound.cpp.o.d"
  "/root/repo/src/ufpp/local_ratio.cpp" "src/CMakeFiles/sapkit.dir/ufpp/local_ratio.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/ufpp/local_ratio.cpp.o.d"
  "/root/repo/src/ufpp/lp_rounding.cpp" "src/CMakeFiles/sapkit.dir/ufpp/lp_rounding.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/ufpp/lp_rounding.cpp.o.d"
  "/root/repo/src/ufpp/strip_local_ratio.cpp" "src/CMakeFiles/sapkit.dir/ufpp/strip_local_ratio.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/ufpp/strip_local_ratio.cpp.o.d"
  "/root/repo/src/ufpp/ufpp_solver.cpp" "src/CMakeFiles/sapkit.dir/ufpp/ufpp_solver.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/ufpp/ufpp_solver.cpp.o.d"
  "/root/repo/src/util/rmq.cpp" "src/CMakeFiles/sapkit.dir/util/rmq.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/util/rmq.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/sapkit.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/sapkit.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/sapkit.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sapkit.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
