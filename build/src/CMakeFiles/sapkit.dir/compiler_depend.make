# Empty compiler generated dependencies file for sapkit.
# This may be replaced when dependencies are built.
