file(REMOVE_RECURSE
  "CMakeFiles/banner_ads.dir/banner_ads.cpp.o"
  "CMakeFiles/banner_ads.dir/banner_ads.cpp.o.d"
  "banner_ads"
  "banner_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banner_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
