# Empty compiler generated dependencies file for banner_ads.
# This may be replaced when dependencies are built.
