file(REMOVE_RECURSE
  "CMakeFiles/ring_network.dir/ring_network.cpp.o"
  "CMakeFiles/ring_network.dir/ring_network.cpp.o.d"
  "ring_network"
  "ring_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
