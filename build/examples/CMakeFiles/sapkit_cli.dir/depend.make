# Empty dependencies file for sapkit_cli.
# This may be replaced when dependencies are built.
