file(REMOVE_RECURSE
  "CMakeFiles/sapkit_cli.dir/sapkit_cli.cpp.o"
  "CMakeFiles/sapkit_cli.dir/sapkit_cli.cpp.o.d"
  "sapkit_cli"
  "sapkit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
