# Empty dependencies file for ufpp_vs_sap.
# This may be replaced when dependencies are built.
