file(REMOVE_RECURSE
  "CMakeFiles/ufpp_vs_sap.dir/ufpp_vs_sap.cpp.o"
  "CMakeFiles/ufpp_vs_sap.dir/ufpp_vs_sap.cpp.o.d"
  "ufpp_vs_sap"
  "ufpp_vs_sap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufpp_vs_sap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
