# Empty dependencies file for memory_allocator.
# This may be replaced when dependencies are built.
