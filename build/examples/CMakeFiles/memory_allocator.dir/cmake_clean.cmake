file(REMOVE_RECURSE
  "CMakeFiles/memory_allocator.dir/memory_allocator.cpp.o"
  "CMakeFiles/memory_allocator.dir/memory_allocator.cpp.o.d"
  "memory_allocator"
  "memory_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
