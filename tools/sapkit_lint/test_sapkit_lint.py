#!/usr/bin/env python3
"""Fixture tests for sapkit_lint.

Two layers:

  * One exact set-comparison of the whole fixture tree against
    fixtures/expected.txt (path:line:rule triples, both directions), so
    any rule that stops firing, fires on the wrong line, or fires where
    it should not, fails with a readable diff.
  * Targeted unit tests for behaviours the tree cannot express as
    findings: exit codes, scope resolution, --rules forcing, and the
    comment/string stripper.

Run from anywhere:  python3 -m unittest discover tools/sapkit_lint
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "sapkit_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
TREE = os.path.join(FIXTURES, "tree")

sys.path.insert(0, HERE)
import sapkit_lint  # noqa: E402


def run_linter(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, check=False)


def load_expected() -> set[tuple[str, int, str]]:
    expected = set()
    with open(os.path.join(FIXTURES, "expected.txt"), encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            path, lineno, rule = line.rsplit(":", 2)
            expected.add((path, int(lineno), rule))
    return expected


class FixtureTreeTest(unittest.TestCase):
    """The exact-findings contract over the fixture tree."""

    def test_findings_match_expected_exactly(self):
        proc = run_linter("--root", TREE, "--json",
                          os.path.join(TREE, "src"))
        self.assertEqual(proc.returncode, 1, proc.stderr)
        got = {(f["path"].replace(os.sep, "/"), f["line"], f["rule"])
               for f in json.loads(proc.stdout)}
        expected = load_expected()
        missing = sorted(expected - got)
        surprise = sorted(got - expected)
        self.assertFalse(
            missing or surprise,
            f"\nexpected but not reported: {missing}"
            f"\nreported but not expected: {surprise}")

    def test_clean_files_exit_zero(self):
        proc = run_linter(
            "--root", TREE,
            os.path.join(TREE, "src", "model", "good_arith.cpp"),
            os.path.join(TREE, "src", "model", "comments_strings.cpp"),
            os.path.join(TREE, "src", "service", "scope.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(proc.stdout.strip(), "")

    def test_out_of_scope_file_is_silent(self):
        # scope.cpp uses rand(), system_clock, doubles and raw quantity
        # arithmetic -- all legal in src/service.
        proc = run_linter(
            "--root", TREE, os.path.join(TREE, "src", "service", "scope.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_deadline_header_is_exempt_from_the_clock_ban(self):
        # src/util/deadline.hpp is MONOTONIC_CLOCK_HOME: its steady_clock
        # reads are clean without any allow-comment, even when the
        # determinism rule is forced on explicitly.
        path = os.path.join(TREE, "src", "util", "deadline.hpp")
        for args in ((), ("--rules", "determinism")):
            proc = run_linter("--root", TREE, *args, path)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            self.assertEqual(proc.stdout.strip(), "")

    def test_steady_clock_fires_outside_the_deadline_header(self):
        proc = run_linter(
            "--root", TREE, "--json",
            os.path.join(TREE, "src", "ufpp", "bad_random.cpp"))
        self.assertEqual(proc.returncode, 1)
        hits = [f for f in json.loads(proc.stdout)
                if "monotonic clock" in f["message"]]
        self.assertEqual([(f["line"], f["rule"]) for f in hits],
                         [(41, "determinism")])

    def test_rules_flag_overrides_scopes(self):
        # Forcing determinism onto the out-of-scope service file must fire.
        proc = run_linter(
            "--root", TREE, "--rules", "determinism", "--json",
            os.path.join(TREE, "src", "service", "scope.cpp"))
        self.assertEqual(proc.returncode, 1)
        rules = {f["rule"] for f in json.loads(proc.stdout)}
        self.assertEqual(rules, {"determinism"})

    def test_list_rules(self):
        proc = run_linter("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("exact-arith", "float-ban", "determinism",
                     "allow-syntax", "unused-allow"):
            self.assertIn(rule, proc.stdout)


class ScopeResolutionTest(unittest.TestCase):
    def test_exact_dirs(self):
        for path in ("src/model/task.hpp", "src/cert/ladder.cpp",
                     "src/core/params.cpp", "src/exact/brute_force.cpp"):
            self.assertIn("exact-arith", sapkit_lint.rules_for(path, None))
            self.assertIn("float-ban", sapkit_lint.rules_for(path, None))

    def test_lp_gets_determinism_only(self):
        rules = sapkit_lint.rules_for("src/lp/simplex.cpp", None)
        self.assertEqual(rules, ["determinism"])

    def test_service_out_of_scope(self):
        self.assertEqual(sapkit_lint.rules_for("src/service/server.cpp",
                                               None), [])

    def test_prefix_is_path_aware(self):
        # src/model_extra must not inherit src/model's rules.
        self.assertEqual(sapkit_lint.rules_for("src/model_extra/x.cpp",
                                               None), [])


class StripperTest(unittest.TestCase):
    def test_line_numbering_preserved(self):
        text = "a\n// demand + demand\nb /* x\ny */ c\nd\n"
        lines = sapkit_lint.strip_comments_and_strings(text)
        self.assertEqual(len(lines), text.count("\n") + 1)
        self.assertEqual(lines[0].strip(), "a")
        self.assertEqual(lines[1].strip(), "")
        self.assertEqual(lines[3].strip(), "c")

    def test_strings_blanked(self):
        lines = sapkit_lint.strip_comments_and_strings(
            'x = "demand + demand";\n')
        self.assertNotIn("demand", lines[0])

    def test_escaped_quote_stays_in_string(self):
        lines = sapkit_lint.strip_comments_and_strings(
            's = "a\\"b + demand"; y = weight + 1;\n')
        self.assertNotIn("demand", lines[0])
        self.assertIn("weight", lines[0])


class TempTreeTest(unittest.TestCase):
    """End-to-end over a throwaway tree, proving --root relativity."""

    def test_same_file_flagged_only_under_scoped_dir(self):
        with tempfile.TemporaryDirectory() as root:
            body = "long f(long demand_a) { return demand_a + 1; }\n"
            for rel in ("src/model/a.cpp", "src/service/a.cpp"):
                path = os.path.join(root, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(body)
            proc = run_linter("--root", root, "--json",
                              os.path.join(root, "src"))
            self.assertEqual(proc.returncode, 1)
            findings = json.loads(proc.stdout)
            self.assertEqual(
                [(f["path"], f["line"], f["rule"]) for f in findings],
                [("src/model/a.cpp", 1, "exact-arith")])


if __name__ == "__main__":
    unittest.main()
