// Fixture: src/lp is the declared floating-point home; float-ban and
// exact-arith do not apply here, but determinism still does.
#include <cstdlib>

namespace sap {

double pivot(double a, double b) { return a / b; }

double scaled_weight(double weight, double factor) { return weight * factor; }

int lp_noise() { return rand(); }  // line 11: determinism still enforced

}  // namespace sap
