// Fixture: floating point in an exactness-critical directory.

namespace sap {

double ratio(long num, long den) {  // line 5: double
  return static_cast<float>(num) / den;  // line 6: float
}

}  // namespace sap
