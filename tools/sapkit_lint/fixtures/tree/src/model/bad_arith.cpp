// Fixture: every raw-operator shape the exact-arith rule must catch.
#include <cstdint>

namespace sap {

long add_demands(long demand_a, long demand_b) {
  return demand_a + demand_b;  // line 7: raw +
}

long scale_weight(long weight, long factor) {
  return weight * factor;  // line 11: raw *
}

void accumulate(long* total_weight, long weight) {
  *total_weight += weight;  // line 15: raw +=
}

void inflate(long* capacity, long factor) {
  *capacity *= factor;  // line 19: raw *=
}

long member_access_rhs(long total, const long* weights, int j) {
  total += weights[j];  // line 23: quantity token far from the operator
  return total;
}

}  // namespace sap
