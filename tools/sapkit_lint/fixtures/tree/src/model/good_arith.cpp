// Fixture: arithmetic shapes the exact-arith rule must accept unprompted.
#include <cstdint>

using Int128 = __int128;

namespace sap {

bool checked_path(long demand_a, long demand_b, long* out) {
  return checked_add(demand_a, demand_b, out);  // blessed helper
}

bool builtin_path(long weight_a, long weight_b, long* out) {
  return !__builtin_add_overflow(weight_a, weight_b, out);  // raw intrinsic
}

Int128 widened(long weight_a, long weight_b) {
  return static_cast<Int128>(weight_a) + weight_b;  // 128-bit widening
}

long subtraction(long capacity, long demand) {
  return capacity - demand;  // non-negative int64 difference cannot overflow
}

long unrelated(long count, long index) {
  return count + index;  // no quantity-typed operand in sight
}

}  // namespace sap
