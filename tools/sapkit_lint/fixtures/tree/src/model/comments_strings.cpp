// Fixture: banned tokens inside comments and string literals are invisible.
#include <string>

namespace sap {

// A comment may say demand + demand or double or rand() freely.
/* Block comments too: weight * weight, std::random_device. */

std::string prose() {
  return "capacity + demand, double trouble, rand()";  // string literal
}

char quoted() { return '+'; }  // char literal

std::string tricky() {
  return "escaped \" still a string: weight + weight";
}

}  // namespace sap
