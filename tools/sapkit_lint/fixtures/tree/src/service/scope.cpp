// Fixture: src/service is outside every rule scope; nothing here may fire.
#include <chrono>
#include <cstdlib>

namespace sap {

double latency_seconds() {
  using clock = std::chrono::system_clock;
  return std::chrono::duration<double>(
             clock::now().time_since_epoch())
      .count();
}

long raw_sum(long demand_a, long demand_b) { return demand_a + demand_b; }

int jitter() { return rand(); }

}  // namespace sap
