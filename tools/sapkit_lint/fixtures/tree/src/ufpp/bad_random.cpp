// Fixture: every nondeterminism source the determinism rule must catch.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace sap {

int ambient() { return rand(); }            // line 10: rand()

void reseed() { srand(42); }                // line 12: srand()

unsigned hw_entropy() {
  std::random_device rd;                    // line 15: random_device
  return rd();
}

long wall_clock_now() {
  using clock = std::chrono::system_clock;  // line 20: system_clock
  return clock::now().time_since_epoch().count();
}

long hires_now() {
  return std::chrono::high_resolution_clock::now()  // line 25
      .time_since_epoch()
      .count();
}

long c_time() { return time(nullptr); }     // line 30: time()

int from_distribution(std::mt19937& gen) {  // line 32: mt19937
  std::uniform_int_distribution<int> d(0, 9);  // line 33: *_distribution
  return d(gen);
}

std::unordered_map<int, int> cache;         // line 37: unordered container

long monotonic() {
  // Monotonic clock outside src/util/deadline.hpp: also a finding.
  return std::chrono::steady_clock::now().time_since_epoch().count();  // 41
}

}  // namespace sap
