// Fixture: the one sanctioned monotonic-clock seam.  This path
// (src/util/deadline.hpp relative to --root) is MONOTONIC_CLOCK_HOME, so
// its steady_clock reads produce no determinism findings -- with no
// allow-comment needed.  Every other banned source still fires here.
#include <chrono>

namespace sap {

using MonotonicClock = std::chrono::steady_clock;

inline MonotonicClock::time_point deadline_now() {
  return std::chrono::steady_clock::now();
}

}  // namespace sap
