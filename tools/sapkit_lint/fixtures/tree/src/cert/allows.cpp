// Fixture: the allow grammar, good and bad.

namespace sap {

// sapkit-lint: allow(exact-arith) -- fixture: suppressed on the next line.
long suppressed(long demand_a, long demand_b) { return demand_a + demand_b; }

// sapkit-lint: allow(exact-arith) -- fixture: a justification may wrap
// across several comment-only lines and still cover the first code line.
long wrapped(long weight_a, long weight_b) { return weight_a + weight_b; }

// sapkit-lint: begin-allow(float-ban) -- fixture: a declared float region.
double region_a(double x) { return x; }
double region_b(double x) { return x; }
// sapkit-lint: end-allow(float-ban)

// sapkit-lint: allow(exact-arith)
long missing_justification(long demand_a) { return demand_a + 1; }

// sapkit-lint: allow(made-up-rule) -- fixture: no such rule.
long unknown_rule(long weight) { return weight; }

// sapkit-lint: allow(float-ban) -- fixture: suppresses nothing below.
long stale(long count) { return count; }

// sapkit-lint: end-allow(determinism)

// sapkit-lint: begin-allow(determinism) -- fixture: left open on purpose.

}  // namespace sap
