#!/usr/bin/env python3
"""sapkit-lint: project-invariant static analysis for the sapkit tree.

The paper's guarantees hold only because every feasibility check, DP and
certificate rung is exact 64-bit integer arithmetic, and because solver
output is a pure function of (instance, seed).  This linter turns those
prose invariants (DESIGN.md section 1, docs/STATIC_ANALYSIS.md) into a
mechanical gate.  It is a lexical analyser, not a compiler: it tokenizes
each source line with comments and string literals stripped, and flags
patterns that the project forbids.  False positives are expected to be
rare and are silenced with a justified allow-comment:

    // sapkit-lint: allow(<rule>) -- <justification>

which covers its own line and the following line, or a region:

    // sapkit-lint: begin-allow(<rule>) -- <justification>
    ...
    // sapkit-lint: end-allow(<rule>)

A justification (the text after `--`) is mandatory; an allow-comment that
suppresses nothing is itself an error, so stale escapes cannot linger.

Rules (stable IDs, each scoped to the directories where it is a project
invariant rather than a style preference):

  exact-arith    Raw `+`, `*`, `+=`, `*=` adjacent to a quantity-typed
                 operand (demand/weight/height/capacity/bottleneck) in the
                 exactness-critical dirs.  Arithmetic on these int64
                 quantities must go through the overflow-checked helpers in
                 src/util/checked.hpp (checked_add/checked_mul) or widen to
                 Int128 first.  Subtraction is exempt: all quantities are
                 validated non-negative, and int64 a-b with a,b >= 0 cannot
                 overflow.
  float-ban      `float`/`double` tokens in the exactness-critical dirs.
                 Floating point lives in src/lp/ (out of scope by
                 construction) and the declared LP-dual-repair region of
                 src/cert/ladder.cpp; everywhere else it threatens the
                 exactness claims.
  determinism    Nondeterminism sources in solver/harness paths: wall-clock
                 (system_clock/high_resolution_clock/time()/gettimeofday),
                 ambient randomness (rand/srand/random_device), libstdc++
                 <random> distributions (non-portable across standard
                 libraries; use sap::Rng), and unordered containers (their
                 iteration order may leak into output; a justified allow
                 must state that the container is never iterated, or that
                 iteration cannot reach output).  The monotonic clock
                 (steady_clock) is also banned: deadline checks must route
                 through sap::Deadline, whose home src/util/deadline.hpp is
                 the single exempt file.  Telemetry-only timing reads need
                 an allow-comment stating the reading never feeds solver
                 output.
  allow-syntax   Malformed allow-comments: unknown rule name, missing
                 `-- justification`, end-allow without begin-allow, or a
                 begin-allow left unclosed at end of file.
  unused-allow   An allow-comment (line or region) that suppressed no
                 finding.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import re
import sys
from typing import Iterable

# --------------------------------------------------------------------------
# Rule table and scopes
# --------------------------------------------------------------------------

# Directories (relative to the repo root, '/'-separated prefixes) where the
# exact-arithmetic discipline is a correctness requirement.
EXACT_DIRS = ("src/model", "src/exact", "src/cert", "src/core", "src/round")

# Solver / harness paths whose output must be a pure function of
# (instance, seed).  src/service is excluded: it is an I/O layer whose
# latency stats are inherently timing-dependent, and every solve result it
# returns is produced by the covered solver paths.
DETERMINISTIC_DIRS = (
    "src/model", "src/exact", "src/cert", "src/core", "src/ufpp",
    "src/dsa", "src/sapu", "src/knapsack", "src/gen", "src/harness",
    "src/lp", "src/io", "src/util", "src/round",
)

# The one file in the deterministic tree sanctioned to read the monotonic
# clock.  Everything else routes deadline/budget checks through the
# sap::Deadline/DeadlineGate types it defines; timing reads that only feed
# telemetry (declared nondeterministic) carry a justified allow-comment.
MONOTONIC_CLOCK_HOME = "src/util/deadline.hpp"

RULE_SCOPES = {
    "exact-arith": EXACT_DIRS,
    "float-ban": EXACT_DIRS,
    "determinism": DETERMINISTIC_DIRS,
}

# allow-syntax / unused-allow are meta-rules: they apply wherever an
# allow-comment appears.
META_RULES = ("allow-syntax", "unused-allow")
ALL_RULES = tuple(RULE_SCOPES) + META_RULES

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

# --------------------------------------------------------------------------
# Lexical machinery
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    [A-Za-z_][A-Za-z0-9_]*            # identifier / keyword
  | 0[xX][0-9a-fA-F']+ | [0-9][0-9a-fA-F'.eEpPxXuUlL+-]*   # numeric literal
  | ->\*? | \+\+ | -- | <<=? | >>=? | <=> | [-+*/%&|^!<>=]= | && | \|\| | ::
  | [-+*/%&|^!<>=~?:;,.(){}\[\]]
    """,
    re.VERBOSE,
)

# Quantity vocabulary: lower-case member/local names only, so type names
# (Weight, Value) and pointer declarations (`Weight* w`) never match.
_QUANTITY_RE = re.compile(
    r"(?:^|_)(?:demands?|weights?|heights?|capacity|capacities|"
    r"bottlenecks?)(?:_|$)"
)

# Tokens whose presence on a line sanctions raw arithmetic: the statement is
# already routed through the checked helpers or 128-bit widening.
_CHECKED_MARKERS = re.compile(
    r"\b(?:checked_\w+|__builtin_add_overflow|__builtin_sub_overflow|"
    r"__builtin_mul_overflow|Int128|Uint128)\b"
)

# If the previous token is one of these, a following +/-/* is unary (or a
# pointer/reference declarator), not binary arithmetic.
_UNARY_PREV = {
    None, "(", "[", "{", ",", ";", "=", "return", "case", "<", ">", "<=",
    ">=", "==", "!=", "&&", "||", "!", "?", ":", "+", "-", "*", "/", "%",
    "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&", "|", "^", "&&=", "::",
}

# Tokens that read as a type name directly before '*': the '*' is a pointer
# declarator, not multiplication (e.g. `Value* out`, `const Weight* w`).
_TYPE_PREV_RE = re.compile(
    r"^(?:long|int|short|signed|unsigned|char|bool|void|auto|const|constexpr"
    r"|Value|Weight|EdgeId|TaskId|Int128|Uint128|std|size_t|ptrdiff_t"
    r"|\w+_t|uint\d+|int\d+|double|float)$"
)

_ARITH_OPS = {"+", "*", "+=", "*="}

_FLOAT_RE = re.compile(r"\b(?:float|double)\b")

# Banned nondeterminism sources.  Word-boundary anchored so e.g.
# `wall_time(` never matches `time(`.
_STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")

_NONDET_RES = (
    (re.compile(r"\brand\s*\("), "rand() draws from ambient global state"),
    (re.compile(r"\bsrand\s*\("), "srand() mutates ambient global state"),
    (re.compile(r"\brandom_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle uses ambient randomness"),
    (re.compile(r"\bsystem_clock\b"), "wall clock (system_clock) in a solver path"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock may alias the wall clock"),
    (re.compile(r"\bgettimeofday\b"), "wall clock (gettimeofday) in a solver path"),
    (re.compile(r"\blocaltime\b"), "wall clock (localtime) in a solver path"),
    (re.compile(r"\btime\s*\("), "wall clock (time()) in a solver path"),
    (_STEADY_CLOCK_RE,
     "monotonic clock read outside src/util/deadline.hpp: route deadline "
     "checks through sap::Deadline, or justify a telemetry-only timing "
     "read with an allow"),
    (re.compile(r"\bmt19937(?:_64)?\b"),
     "std::mt19937 bypasses sap::Rng (seed discipline lives there)"),
    (re.compile(r"\b\w*_distribution\b"),
     "libstdc++ <random> distributions are not portable bit-exactly; "
     "use sap::Rng helpers"),
)

_UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")

_ALLOW_RE = re.compile(
    r"//\s*sapkit-lint:\s*(allow|begin-allow|end-allow)\s*"
    r"\(\s*([A-Za-z0-9_-]*)\s*\)\s*(?:--\s*(.*\S))?\s*$"
)
_ALLOW_ANY_RE = re.compile(r"//\s*sapkit-lint\b")


@dataclasses.dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Allow:
    rule: str
    line: int          # line of the allow comment itself
    end: int           # last covered line (inclusive); for region allows
    used: bool = False


def strip_comments_and_strings(text: str) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    Line numbering is preserved.  Handles // and block comments, escaped
    quotes, and keeps the comment text out of the token stream so allow
    comments and prose never trigger rules.
    """
    out: list[list[str]] = [[]]
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        if c == "\n":
            if state == "line_comment":
                state = "code"
            out.append([])
            i += 1
            continue
        if state == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out[-1].append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out[-1].append(" ")
                i += 1
                continue
            out[-1].append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            i += 1
            continue
        # line_comment: skip to newline
        i += 1
    return ["".join(chars) for chars in out]


def tokenize(code_line: str) -> list[str]:
    return _TOKEN_RE.findall(code_line)


# --------------------------------------------------------------------------
# Rule matchers — each yields (line_number, message).  All take the linted
# file's root-relative path: most ignore it, but determinism uses it for
# the MONOTONIC_CLOCK_HOME exemption.
# --------------------------------------------------------------------------

def match_exact_arith(code_lines: list[str],
                      rel_path: str = "") -> Iterable[tuple[int, str]]:
    for lineno, code in enumerate(code_lines, start=1):
        if "+" not in code and "*" not in code:
            continue
        if _CHECKED_MARKERS.search(code):
            continue
        tokens = tokenize(code)
        for idx, tok in enumerate(tokens):
            if tok not in _ARITH_OPS:
                continue
            prev = tokens[idx - 1] if idx > 0 else None
            if tok in ("+", "*") and prev in _UNARY_PREV:
                continue
            if tok == "*" and prev is not None and _TYPE_PREV_RE.match(prev):
                continue  # pointer declarator, not multiplication
            # The operand window: a few tokens to the left, and everything up
            # to the end of the statement on the right (quantity member
            # accesses like `inst.task(j).weight` put the interesting token
            # well past the operator).
            stmt_end = next((k for k in range(idx, len(tokens))
                             if tokens[k] == ";"), len(tokens))
            window = tokens[max(0, idx - 4):idx] + tokens[idx + 1:stmt_end]
            hit = next((t for t in window if _QUANTITY_RE.search(t)), None)
            if hit is None:
                continue
            yield (lineno,
                   f"raw '{tok}' on quantity operand '{hit}': route through "
                   "checked_add/checked_mul (src/util/checked.hpp) or widen "
                   "to Int128")
            break  # one finding per line is enough


def match_float_ban(code_lines: list[str],
                    rel_path: str = "") -> Iterable[tuple[int, str]]:
    for lineno, code in enumerate(code_lines, start=1):
        m = _FLOAT_RE.search(code)
        if m:
            yield (lineno,
                   f"'{m.group(0)}' in an exactness-critical directory "
                   "(floating point belongs in src/lp/ or the declared "
                   "region of src/cert/ladder.cpp)")


def match_determinism(code_lines: list[str],
                      rel_path: str = "") -> Iterable[tuple[int, str]]:
    clock_home = rel_path.replace(os.sep, "/") == MONOTONIC_CLOCK_HOME
    for lineno, code in enumerate(code_lines, start=1):
        for pattern, why in _NONDET_RES:
            if pattern is _STEADY_CLOCK_RE and clock_home:
                continue
            if pattern.search(code):
                yield (lineno, why)
                break
        else:
            m = _UNORDERED_RE.search(code)
            if m:
                yield (lineno,
                       f"'{m.group(0)}' in a deterministic path: iteration "
                       "order is unspecified; justify that it never feeds "
                       "output, or use an ordered container")


RULE_MATCHERS = {
    "exact-arith": match_exact_arith,
    "float-ban": match_float_ban,
    "determinism": match_determinism,
}


# --------------------------------------------------------------------------
# Allow-comment collection
# --------------------------------------------------------------------------

def collect_allows(raw_lines: list[str], path: str
                   ) -> tuple[list[Allow], list[Finding]]:
    allows: list[Allow] = []
    findings: list[Finding] = []
    open_regions: dict[str, Allow] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        if not _ALLOW_ANY_RE.search(line):
            continue
        m = _ALLOW_RE.search(line)
        if not m:
            findings.append(Finding(
                path, lineno, "allow-syntax",
                "malformed sapkit-lint comment (want "
                "'// sapkit-lint: allow(<rule>) -- <justification>')"))
            continue
        kind, rule, justification = m.group(1), m.group(2), m.group(3)
        if rule not in RULE_SCOPES:
            findings.append(Finding(
                path, lineno, "allow-syntax",
                f"unknown rule '{rule}' (known: {', '.join(RULE_SCOPES)})"))
            continue
        if kind == "end-allow":
            region = open_regions.pop(rule, None)
            if region is None:
                findings.append(Finding(
                    path, lineno, "allow-syntax",
                    f"end-allow({rule}) without a matching begin-allow"))
            else:
                region.end = lineno
                allows.append(region)
            continue
        if not justification:
            findings.append(Finding(
                path, lineno, "allow-syntax",
                f"{kind}({rule}) needs a justification: "
                f"'... {kind}({rule}) -- <why this is safe>'"))
            continue
        if kind == "allow":
            # A line-allow covers the next code line.  Justifications often
            # wrap across several comment lines, so skip over comment-only
            # continuation lines to find it.
            end = lineno + 1
            while end <= len(raw_lines) and \
                    raw_lines[end - 1].lstrip().startswith("//"):
                end += 1
            allows.append(Allow(rule, lineno, end))
        else:  # begin-allow
            if rule in open_regions:
                findings.append(Finding(
                    path, lineno, "allow-syntax",
                    f"begin-allow({rule}) nested inside an open "
                    f"begin-allow({rule}) region"))
            else:
                open_regions[rule] = Allow(rule, lineno, lineno)
    for rule, region in sorted(open_regions.items()):
        findings.append(Finding(
            path, region.line, "allow-syntax",
            f"begin-allow({rule}) is never closed (missing "
            f"'// sapkit-lint: end-allow({rule})')"))
    return allows, findings


# --------------------------------------------------------------------------
# Per-file driver
# --------------------------------------------------------------------------

def rules_for(rel_path: str, forced: tuple[str, ...] | None) -> list[str]:
    if forced is not None:
        return [r for r in forced if r in RULE_SCOPES]
    posix = rel_path.replace(os.sep, "/")
    return [rule for rule, dirs in RULE_SCOPES.items()
            if any(posix == d or posix.startswith(d + "/") for d in dirs)]


def lint_file(abs_path: str, rel_path: str,
              forced_rules: tuple[str, ...] | None) -> list[Finding]:
    try:
        with open(abs_path, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel_path, 0, "allow-syntax", f"unreadable file: {e}")]
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text)
    allows, findings = collect_allows(raw_lines, rel_path)

    active_rules = rules_for(rel_path, forced_rules)
    for rule in active_rules:
        for lineno, message in RULE_MATCHERS[rule](code_lines, rel_path):
            allow = next((a for a in allows
                          if a.rule == rule and a.line <= lineno <= a.end),
                         None)
            if allow is not None:
                allow.used = True
            else:
                findings.append(Finding(rel_path, lineno, rule, message))

    for allow in allows:
        if not allow.used:
            findings.append(Finding(
                rel_path, allow.line, "unused-allow",
                f"allow({allow.rule}) suppresses nothing; delete it "
                "(stale escapes hide future regressions)"))
    return findings


def iter_source_files(root: str, paths: list[str]) -> Iterable[tuple[str, str]]:
    """Yields (abs_path, rel_path) pairs under root for the given paths."""
    targets = paths or [os.path.join(root, "src")]
    for target in targets:
        abs_target = os.path.abspath(target)
        if os.path.isfile(abs_target):
            yield abs_target, os.path.relpath(abs_target, root)
            continue
        for dirpath, dirnames, filenames in os.walk(abs_target):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    abs_path = os.path.join(dirpath, name)
                    yield abs_path, os.path.relpath(abs_path, root)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sapkit_lint",
        description="Project-invariant static analysis for the sapkit tree.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: <root>/src)")
    parser.add_argument("--root", default=".",
                        help="repository root; rule scopes are evaluated on "
                             "paths relative to it (default: cwd)")
    parser.add_argument("--rules",
                        help="comma-separated rule list to force on every "
                             "linted file, ignoring directory scopes "
                             "(used by the fixture tests)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(RULE_SCOPES.get(rule, ("everywhere",)))
            print(f"{rule:14s} {scope}")
        return 0

    forced: tuple[str, ...] | None = None
    if args.rules is not None:
        forced = tuple(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = [r for r in forced if r not in RULE_SCOPES]
        if unknown:
            print(f"sapkit_lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    findings: list[Finding] = []
    seen = set()
    for abs_path, rel_path in iter_source_files(root, args.paths):
        if abs_path in seen:
            continue
        seen.add(abs_path)
        findings.extend(lint_file(abs_path, rel_path, forced))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps([dataclasses.asdict(f) for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"sapkit_lint: {len(findings)} finding(s) in "
                  f"{len(seen)} file(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
