// sapd chaos harness: fault-injection scenarios against an in-process
// server, driven through real loopback sockets so the kernel's buffering,
// half-open, and timeout behaviour is exercised for real, not mocked.
//
// Each scenario is a named function; `sapd_chaos <scenario>` runs one and
// exits 0 on pass (registered individually in ctest under the `chaos`
// label so failures are attributed precisely), `sapd_chaos all` runs every
// scenario. The invariant under test is always the same: whatever a hostile
// or unlucky peer does, the server keeps serving well-formed clients, never
// hangs, and stop() always drains and returns.
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <semaphore>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/gen/generators.hpp"
#include "src/io/instance_io.hpp"
#include "src/model/verify.hpp"
#include "src/service/client.hpp"
#include "src/service/frame.hpp"
#include "src/service/server.hpp"
#include "src/util/rng.hpp"

namespace sap::service {
namespace {

int g_failures = 0;

#define CHAOS_CHECK(cond, what)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ++g_failures;                                                   \
      std::cerr << "FAIL: " << (what) << " [" << __FILE__ << ":"      \
                << __LINE__ << "]\n";                                 \
    }                                                                 \
  } while (0)

std::string tiny_instance() {
  return "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
}

/// Dense same-capacity long-span tasks: the exponential exact oracle cannot
/// finish these inside a millisecond budget, forcing the degraded path.
std::string adversarial_instance() {
  PathGenOptions gen;
  gen.num_edges = 14;
  gen.num_tasks = 48;
  gen.min_capacity = 64;
  gen.max_capacity = 64;
  gen.mean_span_fraction = 0.8;
  Rng rng(97);
  return to_string(generate_path_instance(gen, rng));
}

int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The server must still answer a well-formed client — the postcondition of
/// every scenario. "Still answers" allows typed OVERLOADED rejections while
/// a scenario's admission backlog drains (under TSan the flooded solves are
/// an order of magnitude slower), so the probe uses the client's own
/// idempotent retry path with a fixed seed.
void expect_still_healthy(Server& server, const char* scenario) {
  ClientOptions copts;
  copts.retry.max_attempts = 60;
  copts.retry.initial_backoff_ms = 50;
  copts.retry.max_backoff_ms = 500;
  copts.retry.seed = 7;
  Client client(copts);
  client.connect("127.0.0.1", server.port());
  SolveRequest request;
  request.instance_text = tiny_instance();
  try {
    const Client::SolveOutcome outcome = client.solve_with_retry(request);
    CHAOS_CHECK(outcome.ok, std::string(scenario) +
                                ": server unhealthy after scenario: " +
                                outcome.error_message);
  } catch (const std::exception& error) {
    CHAOS_CHECK(false, std::string(scenario) + ": server unreachable after "
                           "scenario: " + error.what());
  }
}

/// Slow-loris framing: a valid request dribbled one byte at a time must
/// still be served; a loris that goes silent mid-header and disconnects
/// must not wedge the reader thread.
void scenario_slow_loris() {
  Server server(ServerOptions{});
  server.start();

  SolveRequest request;
  request.instance_text = tiny_instance();
  const std::string payload = encode_solve_request(request);
  std::string wire(kFrameHeaderBytes, '\0');
  encode_frame_header(reinterpret_cast<unsigned char*>(wire.data()),
                      FrameType::kSolveRequest,
                      static_cast<std::uint32_t>(payload.size()));
  wire += payload;

  const int fd = connect_raw(server.port());
  CHAOS_CHECK(fd >= 0, "slow_loris: connect failed");
  // Trickle the header byte by byte, then the payload in small chunks.
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    CHAOS_CHECK(::write(fd, wire.data() + i, 1) == 1, "slow_loris: write");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::size_t i = kFrameHeaderBytes; i < wire.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - i);
    CHAOS_CHECK(::write(fd, wire.data() + i, static_cast<std::size_t>(n)) ==
                    static_cast<ssize_t>(n),
                "slow_loris: write chunk");
  }
  Frame frame;
  CHAOS_CHECK(read_frame(fd, &frame) == ReadStatus::kOk,
              "slow_loris: no response to dribbled request");
  CHAOS_CHECK(frame.type == static_cast<std::uint32_t>(
                                FrameType::kSolveResponse),
              "slow_loris: wrong response type");
  ::close(fd);

  // Second loris: two header bytes, a pause, then silence and a hard close.
  const int fd2 = connect_raw(server.port());
  CHAOS_CHECK(fd2 >= 0, "slow_loris: second connect failed");
  CHAOS_CHECK(::write(fd2, wire.data(), 2) == 2, "slow_loris: partial write");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ::close(fd2);

  expect_still_healthy(server, "slow_loris");
  server.stop();
}

/// Disconnects at every interesting frame offset: mid-header, between
/// header and payload, and mid-payload.
void scenario_mid_frame_disconnect() {
  Server server(ServerOptions{});
  server.start();

  SolveRequest request;
  request.instance_text = tiny_instance();
  const std::string payload = encode_solve_request(request);
  std::string wire(kFrameHeaderBytes, '\0');
  encode_frame_header(reinterpret_cast<unsigned char*>(wire.data()),
                      FrameType::kSolveRequest,
                      static_cast<std::uint32_t>(payload.size()));
  wire += payload;

  const std::size_t cuts[] = {1, kFrameHeaderBytes / 2, kFrameHeaderBytes,
                              kFrameHeaderBytes + 1, wire.size() - 1};
  for (const std::size_t cut : cuts) {
    const int fd = connect_raw(server.port());
    CHAOS_CHECK(fd >= 0, "mid_frame_disconnect: connect failed");
    CHAOS_CHECK(::write(fd, wire.data(), cut) == static_cast<ssize_t>(cut),
                "mid_frame_disconnect: write");
    ::close(fd);  // RST or FIN mid-frame; server must just drop the conn
  }
  expect_still_healthy(server, "mid_frame_disconnect");
  server.stop();
}

/// A peer that floods the server with requests and never reads a byte back:
/// once the response stream backs up, the server's SO_SNDTIMEO fires, the
/// connection is poisoned (shut down, later writes fail fast instead of
/// re-paying the timeout per response), and stop() must not hang on it.
void scenario_half_open_peer() {
  ServerOptions options;
  options.send_timeout = std::chrono::milliseconds(200);
  Server server(options);
  server.start();

  SolveRequest request;
  request.instance_text = tiny_instance();
  const std::string payload = encode_solve_request(request);

  // Shrink the receive window (pre-connect, so it caps the advertised
  // window) to make the server's writes back up quickly.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CHAOS_CHECK(fd >= 0, "half_open_peer: socket failed");
  const int tiny = 4096;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  CHAOS_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
              "half_open_peer: connect failed");

  // Pipeline a few thousand requests. Responses (solves and OVERLOADED
  // rejections alike) pile up unread until a server write blocks past the
  // send timeout. Our own writes may start failing once the server poisons
  // the connection — that is the expected endgame, not an error.
  const auto flood_start = std::chrono::steady_clock::now();
  int sent = 0;
  for (int i = 0; i < 3'000; ++i) {
    if (!write_frame(fd, FrameType::kSolveRequest, payload)) break;
    ++sent;
  }
  CHAOS_CHECK(sent > 0, "half_open_peer: no request ever sent");

  // The server must shed the wedged peer and return to serving well-formed
  // clients in bounded time (one send timeout, not one per response).
  expect_still_healthy(server, "half_open_peer");
  const auto elapsed = std::chrono::steady_clock::now() - flood_start;
  CHAOS_CHECK(elapsed < std::chrono::seconds(60),
              "half_open_peer: recovery took implausibly long");
  server.stop();  // must drain without waiting on the wedged peer
  ::close(fd);
}

/// A burst of deadline-carrying requests against a single worker and a tiny
/// queue: every request must resolve as either a served (possibly degraded)
/// response or a typed OVERLOADED — never a hang, never a silent drop.
void scenario_queue_saturation_under_deadline() {
  ServerOptions options;
  options.solver_threads = 1;
  options.max_queue = 2;
  options.fault_injector = [](FaultPoint point) {
    if (point == FaultPoint::kPreSolve) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  Server server(options);
  server.start();

  const std::string instance = adversarial_instance();
  constexpr int kClients = 16;
  std::atomic<int> served{0};
  std::atomic<int> degraded{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      client.connect("127.0.0.1", server.port());
      SolveRequest request;
      request.algo = "exact";
      request.deadline_ms = 1;
      request.seed = static_cast<std::uint64_t>(c);
      request.instance_text = instance;
      const Client::SolveOutcome outcome = client.solve(request);
      if (outcome.ok) {
        ++served;
        if (outcome.response.degraded) ++degraded;
      } else if (outcome.error_code == ErrorCode::kOverloaded) {
        ++overloaded;
      } else {
        ++unexpected;
        std::cerr << "unexpected outcome: " << outcome.error_message << "\n";
      }
    });
  }
  for (std::thread& t : clients) t.join();

  CHAOS_CHECK(unexpected.load() == 0,
              "queue_saturation: non-OVERLOADED failures");
  CHAOS_CHECK(served.load() + overloaded.load() == kClients,
              "queue_saturation: requests unaccounted for");
  CHAOS_CHECK(served.load() >= 1, "queue_saturation: nothing served");
  CHAOS_CHECK(degraded.load() >= 1,
              "queue_saturation: deadline pressure never degraded a solve");
  expect_still_healthy(server, "queue_saturation");
  server.stop();
}

/// stop() racing a degraded solve: the fallback is in flight when shutdown
/// begins; the drain contract says its response is still flushed.
void scenario_stop_during_degraded_solve() {
  std::binary_semaphore in_fallback{0};
  ServerOptions options;
  options.fault_injector = [&in_fallback](FaultPoint point) {
    if (point == FaultPoint::kPreFallback) in_fallback.release();
  };
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  Client::SolveOutcome outcome;
  std::thread client_thread([&] {
    Client client;
    client.connect("127.0.0.1", port);
    SolveRequest request;
    request.algo = "exact";
    request.deadline_ms = 1;
    request.instance_text = adversarial_instance();
    outcome = client.solve(request);
  });

  in_fallback.acquire();  // the worker is committed to the degraded path
  server.stop();          // races the fallback solve; must drain, not abort
  client_thread.join();
  CHAOS_CHECK(outcome.ok,
              std::string("stop_during_degraded_solve: response lost: ") +
                  outcome.error_message);
  CHAOS_CHECK(outcome.response.degraded,
              "stop_during_degraded_solve: response not marked degraded");
}

std::atomic<bool> g_sigterm{false};

/// SIGTERM arriving exactly inside the degraded-solve window: the handler
/// only sets a flag (async-signal-safe); the main thread then runs the
/// graceful stop, and the in-flight degraded response must still land.
void scenario_sigterm_during_degraded_solve() {
  g_sigterm = false;
  struct sigaction action {};
  action.sa_handler = [](int) { g_sigterm = true; };
  struct sigaction previous {};
  ::sigaction(SIGTERM, &action, &previous);

  ServerOptions options;
  options.fault_injector = [](FaultPoint point) {
    if (point == FaultPoint::kPreFallback) {
      ::kill(::getpid(), SIGTERM);
    }
  };
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  Client::SolveOutcome outcome;
  std::thread client_thread([&] {
    Client client;
    client.connect("127.0.0.1", port);
    SolveRequest request;
    request.algo = "exact";
    request.deadline_ms = 1;
    request.instance_text = adversarial_instance();
    outcome = client.solve(request);
  });

  while (!g_sigterm.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();  // the sapd CLI's SIGTERM path: flag -> graceful stop
  client_thread.join();
  ::sigaction(SIGTERM, &previous, nullptr);
  CHAOS_CHECK(outcome.ok,
              std::string("sigterm_during_degraded_solve: response lost: ") +
                  outcome.error_message);
  CHAOS_CHECK(outcome.response.degraded,
              "sigterm_during_degraded_solve: response not marked degraded");
}

using Scenario = void (*)();

const std::map<std::string, Scenario>& scenarios() {
  static const std::map<std::string, Scenario> table = {
      {"slow_loris", scenario_slow_loris},
      {"mid_frame_disconnect", scenario_mid_frame_disconnect},
      {"half_open_peer", scenario_half_open_peer},
      {"queue_saturation_under_deadline",
       scenario_queue_saturation_under_deadline},
      {"stop_during_degraded_solve", scenario_stop_during_degraded_solve},
      {"sigterm_during_degraded_solve",
       scenario_sigterm_during_degraded_solve},
  };
  return table;
}

}  // namespace
}  // namespace sap::service

int main(int argc, char** argv) {
  using sap::service::g_failures;
  using sap::service::scenarios;
  std::signal(SIGPIPE, SIG_IGN);

  const std::string which = argc > 1 ? argv[1] : "all";
  if (which == "list") {
    for (const auto& [name, fn] : scenarios()) std::cout << name << "\n";
    return 0;
  }
  bool ran = false;
  for (const auto& [name, fn] : scenarios()) {
    if (which != "all" && which != name) continue;
    ran = true;
    const int before = g_failures;
    fn();
    std::cout << (g_failures == before ? "PASS" : "FAIL") << ": " << name
              << "\n";
  }
  if (!ran) {
    std::cerr << "unknown scenario '" << which
              << "' (try `sapd_chaos list`)\n";
    return 2;
  }
  return g_failures == 0 ? 0 : 1;
}
