// Experiment E5 (Theorem 3 / Section 6): measured ratio of the rectangle-
// MWIS algorithm on 1/k-large workloads for k = 2..5, against the exact SAP
// optimum; the paper's bound is (2k - 1). Also reports Lemma 17's
// degeneracy statistics and the Figure 8 tightness witness.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/core/large_tasks.hpp"
#include "src/core/rectangles.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/gen/paper_instances.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E5 / Theorem 3: rectangle MWIS on 1/k-large tasks ==\n\n");

  TablePrinter table({"k", "n", "trials", "mean ratio", "max ratio",
                      "bound 2k-1", "mean degeneracy", "max degeneracy",
                      "degen bound 2k-2"});
  ThreadPool pool;

  for (const std::int64_t k : {2, 3, 4, 5}) {
    for (const std::size_t n : {10u, 16u, 24u}) {
      const int trials = 20;
      std::vector<Summary> ratios(static_cast<std::size_t>(trials));
      std::vector<Summary> degen(static_cast<std::size_t>(trials));
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(9000 + 17 * trial + n + static_cast<std::size_t>(k));
            PathGenOptions opt;
            opt.num_edges = 10;
            opt.num_tasks = n;
            opt.min_capacity = 2 * k;
            opt.max_capacity = 8 * k;
            opt.demand = DemandClass::kLarge;
            opt.k_large = k;
            const PathInstance inst = generate_path_instance(opt, rng);
            SolverParams params;
            std::vector<TaskId> all(inst.num_tasks());
            std::iota(all.begin(), all.end(), TaskId{0});
            const SapSolution sol = solve_large_tasks(inst, all, params);
            if (!verify_sap(inst, sol)) return;
            OptBoundOptions bopt;
            bopt.exact_max_tasks = 30;
            bopt.exact_max_capacity = 8 * k;
            const RatioMeasurement m = measure_ratio(inst, sol, bopt);
            ratios[trial].add(m.ratio);
            // Lemma 17 on the exact optimum's rectangles.
            const SapExactResult opt_sol = sap_exact_profile_dp(inst);
            if (opt_sol.proven_optimal && !opt_sol.solution.empty()) {
              std::vector<TaskId> chosen;
              for (const Placement& p : opt_sol.solution.placements) {
                chosen.push_back(p.task);
              }
              const auto rects = task_rectangles(inst, chosen);
              degen[trial].add(static_cast<double>(
                  smallest_last_coloring(rects).degeneracy));
            }
          });
      Summary ratio;
      Summary degeneracy;
      for (int t = 0; t < trials; ++t) {
        ratio.merge(ratios[static_cast<std::size_t>(t)]);
        degeneracy.merge(degen[static_cast<std::size_t>(t)]);
      }
      table.add_row({std::to_string(k), std::to_string(n),
                     std::to_string(ratio.count()), fmt(ratio.mean()),
                     fmt(ratio.max()), std::to_string(2 * k - 1),
                     fmt(degeneracy.mean(), 2), fmt(degeneracy.max(), 0),
                     std::to_string(2 * k - 2)});
    }
  }
  table.print(std::cout);

  std::printf("\n-- Figure 8 tightness witness (k = 2) --\n");
  const OddCycleWitness& witness = fig8_instance();
  std::vector<TaskId> all(witness.instance.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  const auto rects = task_rectangles(witness.instance, all);
  const ColoringResult coloring = smallest_last_coloring(rects);
  std::printf(
      "5 half-large tasks, feasible as a whole; R(J) is a 5-cycle needing "
      "%d colors (2k-1 = 3), degeneracy %d (2k-2 = 2)\n",
      coloring.num_colors, coloring.degeneracy);
  std::printf("capacities:");
  for (Value c : witness.instance.capacities()) {
    std::printf(" %lld", static_cast<long long>(c));
  }
  std::printf("\n");
  return 0;
}
