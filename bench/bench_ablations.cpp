// Ablations of the design choices DESIGN.md calls out:
//   A1  strip transformation: engine portfolio / gravity / reinsertion
//   A2  Elevator: direct floored DP vs the paper's Lemma-14 split
//   A3  SAP-U specialized solver vs the general (9+eps) pipeline
//   A4  LP rounding: trial count and rounding slack
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/core/medium_tasks.hpp"
#include "src/core/sap_solver.hpp"
#include "src/dsa/strip_transform.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/sapu/sapu_solver.hpp"
#include "src/ufpp/lp_rounding.hpp"
#include "src/util/stats.hpp"

using namespace sap;

namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

UfppSolution greedy_packable(const PathInstance& inst, Value bound) {
  std::vector<Value> load(inst.num_edges(), 0);
  UfppSolution sol;
  for (TaskId j : all_ids(inst)) {
    const Task& t = inst.task(j);
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last && fits; ++e) {
      fits = load[static_cast<std::size_t>(e)] + t.demand <= bound;
    }
    if (!fits) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    sol.tasks.push_back(j);
  }
  return sol;
}

void ablate_strip_transform() {
  std::printf("-- A1: strip transformation components (retention) --\n");
  TablePrinter table({"variant", "mean retention", "min retention"});
  struct Variant {
    const char* name;
    StripTransformOptions options;
  };
  const Variant variants[] = {
      {"full (portfolio+gravity+reinsert)", {true, true, true}},
      {"no reinsertion", {true, true, false}},
      {"no gravity", {true, false, true}},
      {"single first-fit engine", {false, true, true}},
      {"window only", {false, false, false}},
  };
  for (const Variant& variant : variants) {
    Summary retention;
    Rng rng(991);
    for (int trial = 0; trial < 25; ++trial) {
      PathGenOptions opt;
      opt.num_edges = 20;
      opt.num_tasks = 120;
      opt.profile = CapacityProfile::kUniform;
      opt.min_capacity = 256;
      opt.max_capacity = 256;
      opt.demand = DemandClass::kSmall;
      opt.delta = {1, 8};
      const PathInstance inst = generate_path_instance(opt, rng);
      const UfppSolution packed = greedy_packable(inst, 128);
      const StripTransformResult r =
          strip_transform(inst, packed, 128, variant.options);
      if (!verify_sap_packable(inst, r.solution, 128)) continue;
      retention.add(r.retention());
    }
    table.add_row({variant.name, fmt(retention.mean()), fmt(retention.min())});
  }
  table.print(std::cout);
}

void ablate_elevator() {
  std::printf("\n-- A2: Elevator backend (medium-task weight) --\n");
  TablePrinter table({"n", "direct DP mean w", "Lemma-14 split mean w",
                      "split/direct"});
  for (const std::size_t n : {12u, 20u, 32u}) {
    Summary direct_w;
    Summary split_w;
    Rng rng(997);
    for (int trial = 0; trial < 15; ++trial) {
      PathGenOptions opt;
      opt.num_edges = 10;
      opt.num_tasks = n;
      opt.min_capacity = 8;
      opt.max_capacity = 32;
      opt.demand = DemandClass::kMedium;
      const PathInstance inst = generate_path_instance(opt, rng);
      SolverParams direct;
      SolverParams split;
      split.elevator_mode = 1;
      direct_w.add(static_cast<double>(
          solve_medium_tasks(inst, all_ids(inst), direct).weight(inst)));
      split_w.add(static_cast<double>(
          solve_medium_tasks(inst, all_ids(inst), split).weight(inst)));
    }
    table.add_row({std::to_string(n), fmt(direct_w.mean(), 1),
                   fmt(split_w.mean(), 1),
                   fmt(split_w.mean() / std::max(1.0, direct_w.mean()))});
  }
  table.print(std::cout);
}

void ablate_sapu() {
  std::printf("\n-- A3: SAP-U specialized vs general pipeline (uniform) --\n");
  TablePrinter table({"cap", "n", "specialized mean w", "general mean w",
                      "specialized/general"});
  for (const Value cap : {Value{16}, Value{32}}) {
    for (const std::size_t n : {24u, 48u}) {
      Summary spec_w;
      Summary gen_w;
      Rng rng(1009);
      for (int trial = 0; trial < 12; ++trial) {
        PathGenOptions opt;
        opt.num_edges = 12;
        opt.num_tasks = n;
        opt.profile = CapacityProfile::kUniform;
        opt.min_capacity = cap;
        opt.max_capacity = cap;
        const PathInstance inst = generate_path_instance(opt, rng);
        spec_w.add(
            static_cast<double>(solve_sap_uniform(inst).weight(inst)));
        gen_w.add(static_cast<double>(solve_sap(inst).weight(inst)));
      }
      table.add_row({std::to_string(cap), std::to_string(n),
                     fmt(spec_w.mean(), 1), fmt(gen_w.mean(), 1),
                     fmt(spec_w.mean() / std::max(1.0, gen_w.mean()))});
    }
  }
  table.print(std::cout);
}

void ablate_lp_rounding() {
  std::printf("\n-- A4: LP rounding trials x slack (weight / LP opt) --\n");
  TablePrinter table({"trials", "eps", "mean frac", "min frac"});
  for (const int trials : {1, 4, 16}) {
    for (const double eps : {0.1, 0.3}) {
      Summary frac;
      Rng rng(1013);
      for (int t = 0; t < 12; ++t) {
        PathGenOptions opt;
        opt.num_edges = 12;
        opt.num_tasks = 60;
        opt.min_capacity = 32;
        opt.max_capacity = 63;
        opt.demand = DemandClass::kSmall;
        opt.delta = {1, 8};
        const PathInstance inst = generate_path_instance(opt, rng);
        Rng rounding_rng = rng.fork();
        const LpRoundingResult r = ufpp_lp_rounding_half_b(
            inst, all_ids(inst), 32, {eps, trials}, rounding_rng);
        if (r.lp_value <= 0) continue;
        frac.add(static_cast<double>(r.solution.weight(inst)) / r.lp_value);
      }
      table.add_row({std::to_string(trials), fmt(eps, 1), fmt(frac.mean()),
                     fmt(frac.min())});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::printf("== ablations of DESIGN.md design choices ==\n\n");
  ablate_strip_transform();
  ablate_elevator();
  ablate_sapu();
  ablate_lp_rounding();
  return 0;
}
