// Section 8 open problem: extended DSA on non-uniform capacities — find the
// minimum rho such that all tasks pack within rho * c. This bench measures
// the heuristic upper bound against the LOAD lower bound across capacity
// profiles and demand scales; the gap is what a future approximation
// algorithm for the open problem must close.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/dsa/rho_packing.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== Section 8 open problem: min-rho packing under rho*c ==\n\n");
  TablePrinter table({"profile", "delta", "n", "trials", "mean rho/LB",
                      "max rho/LB", "mean rho"});
  ThreadPool pool;

  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  const std::pair<Ratio, const char*> deltas[] = {
      {{1, 4}, "1/4"}, {{1, 16}, "1/16"}};

  for (const auto& [profile, profile_name] : profiles) {
    for (const auto& [delta, delta_name] : deltas) {
      for (const std::size_t n : {40u, 120u}) {
        const int trials = 15;
        std::vector<Summary> gap(static_cast<std::size_t>(trials));
        std::vector<Summary> rho(static_cast<std::size_t>(trials));
        pool.parallel_for(
            static_cast<std::size_t>(trials), [&](std::size_t trial) {
              Rng rng(7100 + 37 * trial + n +
                      static_cast<std::size_t>(delta.den));
              PathGenOptions opt;
              opt.num_edges = 16;
              opt.num_tasks = n;
              opt.profile = profile;
              opt.min_capacity = 32;
              opt.max_capacity = 128;
              opt.demand = DemandClass::kSmall;
              opt.delta = delta;
              const PathInstance inst = generate_path_instance(opt, rng);
              std::vector<TaskId> all(inst.num_tasks());
              std::iota(all.begin(), all.end(), TaskId{0});
              const RhoPackResult r = rho_pack_all(inst, all);
              if (!r.found || r.lower_bound <= 0) return;
              gap[trial].add(r.rho / r.lower_bound);
              rho[trial].add(r.rho);
            });
        Summary g;
        Summary rr;
        for (int t = 0; t < trials; ++t) {
          g.merge(gap[static_cast<std::size_t>(t)]);
          rr.merge(rho[static_cast<std::size_t>(t)]);
        }
        table.add_row({profile_name, delta_name, std::to_string(n),
                       std::to_string(g.count()), fmt(g.mean()),
                       fmt(g.max()), fmt(rr.mean())});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: rho/LB shrinks toward 1 as delta shrinks (small "
      "tasks fragment less), mirroring the uniform-capacity DSA results "
      "([12]) the paper hopes to extend.\n");
  return 0;
}
