// Experiment E9 (Section 4.1 vs Appendix): per-strip comparison of the two
// UFPP-in-a-strip backends — LP rounding ((4+eps) end-to-end) vs the local
// ratio Strip algorithm ((5+eps) end-to-end) — on identical instances with
// bottlenecks in [B, 2B).
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/lp_rounding.hpp"
#include "src/ufpp/strip_local_ratio.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E9: LP rounding vs local ratio in a strip ==\n");
  std::printf("B = 32, capacities/bottlenecks in [B, 2B)\n\n");

  TablePrinter table({"delta", "n", "trials", "LR/LPopt mean", "RND/LPopt mean",
                      "RND wins", "LR wins", "ties"});
  ThreadPool pool;
  constexpr Value kB = 32;

  const std::pair<Ratio, const char*> deltas[] = {{{1, 8}, "1/8"},
                                                  {{1, 16}, "1/16"}};

  for (const auto& [delta, delta_name] : deltas) {
    for (const std::size_t n : {30u, 60u, 120u}) {
      const int trials = 20;
      std::vector<Summary> lr_frac(static_cast<std::size_t>(trials));
      std::vector<Summary> rnd_frac(static_cast<std::size_t>(trials));
      std::vector<int> outcome(static_cast<std::size_t>(trials), 2);
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(6000 + 41 * trial + n +
                    static_cast<std::size_t>(delta.den));
            PathGenOptions opt;
            opt.num_edges = 14;
            opt.num_tasks = n;
            opt.min_capacity = kB;
            opt.max_capacity = 2 * kB - 1;
            opt.demand = DemandClass::kSmall;
            opt.delta = delta;
            const PathInstance inst = generate_path_instance(opt, rng);
            std::vector<TaskId> all(inst.num_tasks());
            std::iota(all.begin(), all.end(), TaskId{0});

            const UfppSolution lr = ufpp_strip_local_ratio(inst, all, kB);
            Rng rnd_rng = rng.fork();
            const LpRoundingResult rnd = ufpp_lp_rounding_half_b(
                inst, all, kB, {0.2, 8}, rnd_rng);
            if (!verify_ufpp_packable(inst, lr, kB / 2) ||
                !verify_ufpp_packable(inst, rnd.solution, kB / 2)) {
              return;
            }
            const double lp_opt = std::max(1.0, rnd.lp_value);
            const Weight lr_w = lr.weight(inst);
            const Weight rnd_w = rnd.solution.weight(inst);
            lr_frac[trial].add(static_cast<double>(lr_w) / lp_opt);
            rnd_frac[trial].add(static_cast<double>(rnd_w) / lp_opt);
            outcome[trial] = rnd_w > lr_w ? 0 : (lr_w > rnd_w ? 1 : 2);
          });
      Summary lr;
      Summary rnd;
      int wins[3] = {0, 0, 0};
      for (int t = 0; t < trials; ++t) {
        lr.merge(lr_frac[static_cast<std::size_t>(t)]);
        rnd.merge(rnd_frac[static_cast<std::size_t>(t)]);
        ++wins[outcome[static_cast<std::size_t>(t)]];
      }
      table.add_row({delta_name, std::to_string(n),
                     std::to_string(lr.count()), fmt(lr.mean()),
                     fmt(rnd.mean()), std::to_string(wins[0]),
                     std::to_string(wins[1]), std::to_string(wins[2])});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nvalues are fractions of the *fractional* LP optimum (not of the "
      "quarter-scaled target), so 0.25+ already certifies the paper's "
      "regime; the LP-rounding backend should trend higher, matching its "
      "better (4+eps vs 5+eps) constant.\n");
  return 0;
}
