// Experiment E7 (Theorem 5 / Section 7): the ring pipeline. Measured ratio
// against an LP upper bound that routes fractionally over both directions
// (a relaxation of ring UFPP, hence of ring SAP). Bound: 10 + eps.
#include <cstdio>
#include <iostream>

#include "src/core/ring_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/lp/simplex.hpp"
#include "src/model/ring_instance.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

namespace {

/// LP bound for ring UFPP: per task, fractional weights on both routes.
double ring_lp_upper_bound(const RingInstance& inst) {
  const std::size_t n = inst.num_tasks();
  LpProblem lp;
  lp.objective.resize(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    lp.objective[2 * j] = static_cast<double>(inst.task(
        static_cast<TaskId>(j)).weight);
    lp.objective[2 * j + 1] = lp.objective[2 * j];
  }
  // Edge capacity rows.
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    LpConstraint row;
    row.coeffs.assign(2 * n, 0.0);
    row.rhs = static_cast<double>(inst.capacity(static_cast<EdgeId>(e)));
    lp.constraints.push_back(std::move(row));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto id = static_cast<TaskId>(j);
    for (int dir = 0; dir < 2; ++dir) {
      for (EdgeId e : inst.route_edges(id, dir == 0)) {
        lp.constraints[static_cast<std::size_t>(e)]
            .coeffs[2 * j + static_cast<std::size_t>(dir)] =
            static_cast<double>(inst.task(id).demand);
      }
    }
    // x_cw + x_ccw <= 1.
    LpConstraint box;
    box.coeffs.assign(2 * n, 0.0);
    box.coeffs[2 * j] = 1.0;
    box.coeffs[2 * j + 1] = 1.0;
    box.rhs = 1.0;
    lp.constraints.push_back(std::move(box));
  }
  const LpSolution sol = solve_lp(lp);
  return sol.objective;
}

}  // namespace

int main() {
  std::printf("== E7 / Theorem 5: SAP on rings ==\nbound: 10 + eps\n\n");

  TablePrinter table({"n", "m", "trials", "mean ratio", "max ratio",
                      "path wins", "cut wins"});
  ThreadPool pool;

  for (const std::size_t n : {12u, 24u, 48u}) {
    for (const std::size_t m : {8u, 16u}) {
      const int trials = 20;
      std::vector<Summary> ratios(static_cast<std::size_t>(trials));
      std::vector<int> path_wins(static_cast<std::size_t>(trials), 0);
      std::vector<int> cut_wins(static_cast<std::size_t>(trials), 0);
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(3000 + 11 * trial + n + m);
            RingGenOptions opt;
            opt.num_edges = m;
            opt.num_tasks = n;
            opt.min_capacity = 8;
            opt.max_capacity = 32;
            const RingInstance ring = generate_ring_instance(opt, rng);
            RingSolveReport report;
            const RingSapSolution sol = solve_ring_sap(ring, {}, &report);
            if (!verify_ring_sap(ring, sol)) return;
            const Weight w = ring.solution_weight(sol);
            if (w == 0) return;
            const double bound = ring_lp_upper_bound(ring);
            ratios[trial].add(bound / static_cast<double>(w));
            (report.winner == RingBranch::kPath ? path_wins
                                                : cut_wins)[trial] = 1;
          });
      Summary ratio;
      int pw = 0;
      int cw = 0;
      for (int t = 0; t < trials; ++t) {
        ratio.merge(ratios[static_cast<std::size_t>(t)]);
        pw += path_wins[static_cast<std::size_t>(t)];
        cw += cut_wins[static_cast<std::size_t>(t)];
      }
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(ratio.count()), fmt(ratio.mean()),
                     fmt(ratio.max()), std::to_string(pw),
                     std::to_string(cw)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nnote: the bound is the fractional two-route LP, so measured ratios "
      "include the LP integrality gap on top of the algorithm's loss.\n");
  return 0;
}
