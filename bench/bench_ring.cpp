// Experiment E7 (Theorem 5 / Section 7): the ring pipeline. Each parameter
// point is one batch_runner sweep; measured ratio against the ring ladder's
// certified dual of the two-route LP relaxation (a relaxation of ring UFPP,
// hence of ring SAP). Bound: 10 + eps. Branch wins come from the solver
// telemetry.
#include <cstdio>
#include <iostream>

#include "src/harness/batch_runner.hpp"
#include "src/harness/table.hpp"

using namespace sap;

int main() {
  std::printf("== E7 / Theorem 5: SAP on rings ==\nbound: 10 + eps\n\n");

  TablePrinter table({"n", "m", "trials", "mean ratio", "p95 ratio",
                      "max ratio", "path wins", "cut wins", "solve ms"});
  ThreadPool pool;

  for (const std::size_t n : {12u, 24u, 48u}) {
    for (const std::size_t m : {8u, 16u}) {
      RingBatchConfig config;
      config.gen.num_edges = m;
      config.gen.num_tasks = n;
      config.gen.min_capacity = 8;
      config.gen.max_capacity = 32;

      BatchOptions options;
      options.num_instances = 20;
      options.base_seed = 3000 + 31 * n + m;
      options.keep_cases = false;

      const BatchReport report =
          run_batch(options, make_ring_batch_case(config), pool);

      const TelemetryReport& t = report.telemetry;
      const double solve_ms =
          1e3 * t.timer("batch.solve").seconds /
          static_cast<double>(std::max<std::size_t>(1, report.solved));
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(report.ratio.count()),
                     fmt(report.ratio.mean()), fmt(report.ratio_p95),
                     fmt(report.ratio.max()),
                     std::to_string(t.count("ring.winner.path")),
                     std::to_string(t.count("ring.winner.cut")),
                     fmt(solve_ms, 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nnote: the bound is the fractional two-route LP, so measured ratios "
      "include the LP integrality gap on top of the algorithm's loss.\n");
  return 0;
}
