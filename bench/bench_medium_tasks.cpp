// Experiment E4 (Theorem 2 / Section 5): measured approximation ratio of
// AlmostUniform + Elevator on medium-band workloads, swept over eps (which
// drives the window width ell) and n. Bound: (2 + eps).
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/core/medium_tasks.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E4 / Theorem 2: AlmostUniform+Elevator on medium tasks ==\n");
  std::printf("guarantee: (1 + q/ell) * 2 with q = ceil(log2(1/beta))\n\n");

  TablePrinter table({"eps", "ell", "n", "trials", "mean ratio", "max ratio",
                      "bound", "exact-opt%"});
  ThreadPool pool;

  for (const double eps : {2.0, 1.0, 0.5}) {
    for (const std::size_t n : {10u, 16u, 24u}) {
      const int trials = 20;
      std::vector<Summary> ratios(static_cast<std::size_t>(trials));
      std::vector<int> exact(static_cast<std::size_t>(trials), 0);
      SolverParams probe;
      probe.eps = eps;
      const int ell = probe.effective_ell();
      const double bound =
          (1.0 + static_cast<double>(probe.beta_q()) / ell) * 2.0;
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(7000 + 31 * trial + n);
            PathGenOptions opt;
            opt.num_edges = 10;
            opt.num_tasks = n;
            opt.min_capacity = 8;
            opt.max_capacity = 32;
            opt.demand = DemandClass::kMedium;
            opt.delta = {1, 8};
            opt.k_large = 2;
            const PathInstance inst = generate_path_instance(opt, rng);
            SolverParams params;
            params.eps = eps;
            std::vector<TaskId> all(inst.num_tasks());
            std::iota(all.begin(), all.end(), TaskId{0});
            const SapSolution sol = solve_medium_tasks(inst, all, params);
            if (!verify_sap(inst, sol)) return;
            OptBoundOptions bopt;
            bopt.exact_max_tasks = 30;
            const RatioMeasurement m = measure_ratio(inst, sol, bopt);
            ratios[trial].add(m.ratio);
            exact[trial] = m.bound_exact ? 1 : 0;
          });
      Summary ratio;
      int exact_count = 0;
      for (int t = 0; t < trials; ++t) {
        ratio.merge(ratios[static_cast<std::size_t>(t)]);
        exact_count += exact[static_cast<std::size_t>(t)];
      }
      table.add_row({fmt(eps, 1), std::to_string(ell), std::to_string(n),
                     std::to_string(ratio.count()), fmt(ratio.mean()),
                     fmt(ratio.max()), fmt(bound, 2),
                     fmt(100.0 * exact_count / trials, 0)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: larger ell (smaller eps) tightens the mean ratio "
      "toward 2; every max ratio stays below its bound column.\n");
  return 0;
}
