// Experiment E3 (Theorem 1 / Section 4): measured approximation ratio of
// Strip-Pack on delta-small workloads, swept over delta, n, and capacity
// profile, for both per-strip backends. The theorem guarantees (4+eps) for
// the LP backend and (5+eps) for the local-ratio backend; the measured
// ratios should sit well below those bounds.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/core/small_tasks.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E3 / Theorem 1: Strip-Pack on delta-small instances ==\n");
  std::printf("bound: 4+eps (LP backend) / 5+eps (local-ratio backend)\n\n");

  TablePrinter table({"profile", "delta", "n", "backend", "trials",
                      "mean ratio", "max ratio", "bound", "exact-opt%"});
  ThreadPool pool;

  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  const std::pair<Ratio, const char*> deltas[] = {
      {{1, 4}, "1/4"}, {{1, 8}, "1/8"}, {{1, 16}, "1/16"}};
  const std::pair<SmallTaskBackend, const char*> backends[] = {
      {SmallTaskBackend::kLocalRatio, "local-ratio"},
      {SmallTaskBackend::kLpRounding, "lp-round"}};

  for (const auto& [profile, profile_name] : profiles) {
    for (const auto& [delta, delta_name] : deltas) {
      for (const std::size_t n : {24u, 48u, 96u}) {
        for (const auto& [backend, backend_name] : backends) {
          const int trials = 20;
          std::vector<Summary> ratios(static_cast<std::size_t>(trials));
          std::vector<int> exact(static_cast<std::size_t>(trials), 0);
          pool.parallel_for(
              static_cast<std::size_t>(trials), [&](std::size_t trial) {
                Rng rng(1000 * trial + n + static_cast<std::size_t>(
                                               delta.den));
                PathGenOptions opt;
                opt.num_edges = 16;
                opt.num_tasks = n;
                opt.profile = profile;
                opt.min_capacity = 32;
                opt.max_capacity = 128;
                opt.demand = DemandClass::kSmall;
                opt.delta = delta;
                const PathInstance inst = generate_path_instance(opt, rng);
                SolverParams params;
                params.delta = delta;
                params.small_backend = backend;
                params.seed = trial;
                std::vector<TaskId> all(inst.num_tasks());
                std::iota(all.begin(), all.end(), TaskId{0});
                const SapSolution sol =
                    solve_small_tasks(inst, all, params);
                if (!verify_sap(inst, sol)) return;  // counted as missing
                OptBoundOptions bound;
                bound.exact_max_tasks = 28;
                const RatioMeasurement m = measure_ratio(inst, sol, bound);
                ratios[trial].add(m.ratio);
                exact[trial] = m.bound_exact ? 1 : 0;
              });
          Summary ratio;
          int exact_count = 0;
          for (int t = 0; t < trials; ++t) {
            ratio.merge(ratios[static_cast<std::size_t>(t)]);
            exact_count += exact[static_cast<std::size_t>(t)];
          }
          const double bound =
              backend == SmallTaskBackend::kLpRounding ? 4.0 : 5.0;
          table.add_row(
              {profile_name, delta_name, std::to_string(n), backend_name,
               std::to_string(ratio.count()), fmt(ratio.mean()),
               fmt(ratio.max()), fmt(bound, 1) + "+eps",
               fmt(100.0 * exact_count / trials, 0)});
        }
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nnote: ratios are against the exact SAP optimum when the oracle "
      "fits, else against the UFPP LP bound (which inflates the ratio).\n");
  return 0;
}
