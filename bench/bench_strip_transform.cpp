// Experiment E8 (Lemma 4 substitute): weight retention of the strip
// transformation on delta-small B-packable UFPP solutions, swept over
// delta. The paper's reduction guarantees retention >= 1 - 4*delta; our
// DSA-portfolio + best-window + reinsertion substitute must clear the same
// floor (see DESIGN.md §4.2). Also reports DSA makespan vs LOAD.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/dsa/strip_transform.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

namespace {

/// Greedy B-packable UFPP solution of delta-small tasks (the shape the
/// Strip-Pack pipeline feeds the transformation).
UfppSolution greedy_packable(const PathInstance& inst, Value bound) {
  std::vector<Value> load(inst.num_edges(), 0);
  UfppSolution sol;
  for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
    const Task& t = inst.task(static_cast<TaskId>(j));
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last && fits; ++e) {
      fits = load[static_cast<std::size_t>(e)] + t.demand <= bound;
    }
    if (!fits) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    sol.tasks.push_back(static_cast<TaskId>(j));
  }
  return sol;
}

}  // namespace

int main() {
  std::printf("== E8 / Lemma 4: strip transformation retention ==\n");
  std::printf("paper floor: retention >= 1 - 4*delta\n\n");

  TablePrinter table({"delta", "n", "trials", "mean retention",
                      "min retention", "floor 1-4d", "mean mk/LOAD",
                      "max mk/LOAD", "mean reinserted"});
  ThreadPool pool;

  const std::pair<Ratio, const char*> deltas[] = {
      {{1, 4}, "1/4"}, {{1, 8}, "1/8"}, {{1, 16}, "1/16"}, {{1, 32}, "1/32"}};

  for (const auto& [delta, delta_name] : deltas) {
    for (const std::size_t n : {40u, 80u, 160u}) {
      const int trials = 25;
      std::vector<Summary> retention(static_cast<std::size_t>(trials));
      std::vector<Summary> mk_ratio(static_cast<std::size_t>(trials));
      std::vector<Summary> reinserted(static_cast<std::size_t>(trials));
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(4000 + 29 * trial + n +
                    static_cast<std::size_t>(delta.den));
            PathGenOptions opt;
            opt.num_edges = 20;
            opt.num_tasks = n;
            opt.profile = CapacityProfile::kUniform;
            opt.min_capacity = 256;
            opt.max_capacity = 256;
            opt.demand = DemandClass::kSmall;
            opt.delta = delta;
            const PathInstance inst = generate_path_instance(opt, rng);
            const Value strip_height = 128;
            const UfppSolution packed = greedy_packable(inst, strip_height);
            if (packed.empty()) return;
            const StripTransformResult r =
                strip_transform(inst, packed, strip_height);
            if (!verify_sap_packable(inst, r.solution, strip_height)) return;
            retention[trial].add(r.retention());
            mk_ratio[trial].add(
                static_cast<double>(r.dsa_makespan) /
                static_cast<double>(
                    std::max<Value>(1, max_load(inst, packed.tasks))));
            reinserted[trial].add(static_cast<double>(r.reinserted));
          });
      Summary ret;
      Summary mk;
      Summary rei;
      for (int t = 0; t < trials; ++t) {
        ret.merge(retention[static_cast<std::size_t>(t)]);
        mk.merge(mk_ratio[static_cast<std::size_t>(t)]);
        rei.merge(reinserted[static_cast<std::size_t>(t)]);
      }
      const double floor = 1.0 - 4.0 * delta.as_double();
      table.add_row({delta_name, std::to_string(n),
                     std::to_string(ret.count()), fmt(ret.mean()),
                     fmt(ret.min()), fmt(floor, 3), fmt(mk.mean()),
                     fmt(mk.max()), fmt(rei.mean(), 1)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: retention approaches 1 as delta shrinks and never "
      "dips below the 1-4*delta floor; DSA makespan stays within a few "
      "percent of LOAD on delta-small workloads.\n");
  return 0;
}
