// Experiment E11: runtime scaling of every component (google-benchmark).
#include <benchmark/benchmark.h>

#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/dsa/strip_transform.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/ufpp/strip_local_ratio.hpp"
#include "src/util/telemetry.hpp"

namespace {

using namespace sap;

PathInstance make_instance(std::size_t n, DemandClass demand,
                           Value cap_lo = 16, Value cap_hi = 64) {
  Rng rng(42 + n);
  PathGenOptions opt;
  opt.num_edges = std::max<std::size_t>(8, n / 2);
  opt.num_tasks = n;
  opt.demand = demand;
  opt.min_capacity = cap_lo;
  opt.max_capacity = cap_hi;
  return generate_path_instance(opt, rng);
}

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

void BM_FullSolver(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kMixed);
  SolverParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_sap(inst, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullSolver)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Allocation accounting for the arena substrate: besides time, report the
// arena's heap chunk acquisitions and spare-list reuses per solve. The
// first solve warms the thread arena; warm solves must then run entirely
// out of the recycled footprint, so chunks_per_solve reports 0.0 (the CI
// perf-smoke job asserts this).
void BM_FullSolverAllocs(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kMixed);
  SolverParams params;
  benchmark::DoNotOptimize(solve_sap(inst, params));  // warm the arena
  TelemetryReport report;
  double solves = 0.0;
  for (auto _ : state) {
    TelemetrySession session(&report);
    benchmark::DoNotOptimize(solve_sap(inst, params));
    solves += 1.0;
  }
  state.counters["chunks_per_solve"] =
      static_cast<double>(report.count("alloc.arena.chunks")) / solves;
  state.counters["chunk_bytes_per_solve"] =
      static_cast<double>(report.count("alloc.arena.chunk_bytes")) / solves;
  state.counters["reuse_per_solve"] =
      static_cast<double>(report.count("alloc.arena.reuse")) / solves;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullSolverAllocs)->Arg(64);

void BM_ProfileDp(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kMixed, 4, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sap_exact_profile_dp(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProfileDp)->DenseRange(6, 18, 4)->Complexity();

void BM_UfppLp(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kMixed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ufpp_lp_upper_bound(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UfppLp)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_StripLocalRatio(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kSmall, 32, 63);
  const auto ids = all_ids(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ufpp_strip_local_ratio(inst, ids, 32));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StripLocalRatio)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void BM_StripTransform(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kSmall, 64, 64);
  UfppSolution sol;
  std::vector<Value> load(inst.num_edges(), 0);
  for (TaskId j : all_ids(inst)) {
    const Task& t = inst.task(j);
    bool fits = true;
    for (EdgeId e = t.first; e <= t.last && fits; ++e) {
      fits = load[static_cast<std::size_t>(e)] + t.demand <= 32;
    }
    if (!fits) continue;
    for (EdgeId e = t.first; e <= t.last; ++e) {
      load[static_cast<std::size_t>(e)] += t.demand;
    }
    sol.tasks.push_back(j);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(strip_transform(inst, sol, 32));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StripTransform)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void BM_DsaPortfolio(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  DemandClass::kSmall, 64, 64);
  const auto ids = all_ids(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsa_pack_portfolio(inst, ids));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DsaPortfolio)->RangeMultiplier(2)->Range(32, 512)->Complexity();

}  // namespace
