// The cost of SAP's contiguity requirement, measured pipeline-vs-pipeline:
// the Bonsma-style UFPP solver (no heights) against the paper's SAP solver
// on identical workloads. Complements E1, which compares exact optima on
// tiny instances; this compares the two *algorithms* at scale.
#include <cstdio>
#include <iostream>

#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/ufpp_solver.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== price of contiguity: UFPP pipeline vs SAP pipeline ==\n\n");
  TablePrinter table({"profile", "demand", "n", "trials", "UFPP mean w",
                      "SAP mean w", "SAP/UFPP"});
  ThreadPool pool;

  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  const std::pair<DemandClass, const char*> demands[] = {
      {DemandClass::kSmall, "small"},
      {DemandClass::kMedium, "medium"},
      {DemandClass::kLarge, "large"},
      {DemandClass::kMixed, "mixed"},
  };

  for (const auto& [profile, profile_name] : profiles) {
    for (const auto& [demand, demand_name] : demands) {
      const std::size_t n = 32;
      const int trials = 15;
      std::vector<Summary> ufpp_w(static_cast<std::size_t>(trials));
      std::vector<Summary> sap_w(static_cast<std::size_t>(trials));
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(6400 + 43 * trial +
                    static_cast<std::size_t>(profile) * 7 +
                    static_cast<std::size_t>(demand));
            PathGenOptions opt;
            opt.num_edges = 12;
            opt.num_tasks = n;
            opt.profile = profile;
            opt.demand = demand;
            opt.min_capacity = 8;
            opt.max_capacity = 48;
            opt.delta = {1, 8};
            const PathInstance inst = generate_path_instance(opt, rng);
            SolverParams params;
            params.seed = trial;
            const UfppSolution flows = solve_ufpp_approx(inst, params);
            const SapSolution storage = solve_sap(inst, params);
            if (!verify_ufpp(inst, flows) || !verify_sap(inst, storage)) {
              return;
            }
            ufpp_w[trial].add(static_cast<double>(flows.weight(inst)));
            sap_w[trial].add(static_cast<double>(storage.weight(inst)));
          });
      Summary u;
      Summary s;
      for (int t = 0; t < trials; ++t) {
        u.merge(ufpp_w[static_cast<std::size_t>(t)]);
        s.merge(sap_w[static_cast<std::size_t>(t)]);
      }
      table.add_row({profile_name, demand_name, std::to_string(n),
                     std::to_string(u.count()), fmt(u.mean(), 1),
                     fmt(s.mean(), 1),
                     fmt(s.mean() / std::max(1.0, u.mean()))});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: SAP/UFPP stays close to 1 (contiguity is cheap on "
      "average, cf. Figure 1's message that the gap needs adversarial "
      "instances); the large-task rows coincide exactly because the "
      "rectangle algorithm serves both pipelines.\n");
  return 0;
}
