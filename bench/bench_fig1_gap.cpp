// Experiment E1 (Figure 1): UFPP-feasible task sets need not be SAP-
// feasible. Certifies the two hand instances and then quantifies the
// phenomenon: the distribution of OPT_UFPP / OPT_SAP on random uniform-
// capacity workloads.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/gen/paper_instances.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/util/stats.hpp"

using namespace sap;

namespace {

void report_instance(const char* name, const PathInstance& inst) {
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  const bool ufpp_all = static_cast<bool>(
      verify_ufpp(inst, UfppSolution{all}));
  const SapExactResult sap_opt = sap_exact_profile_dp(inst);
  std::printf(
      "%s: m=%zu n=%zu | full set UFPP-feasible: %s | total weight %lld | "
      "OPT_SAP %lld -> SAP must drop weight %lld\n",
      name, inst.num_edges(), inst.num_tasks(), ufpp_all ? "yes" : "NO",
      static_cast<long long>(inst.total_weight()),
      static_cast<long long>(sap_opt.weight),
      static_cast<long long>(inst.total_weight() - sap_opt.weight));
}

}  // namespace

int main() {
  std::printf("== E1 / Figure 1: UFPP vs SAP feasibility gap ==\n\n");
  report_instance("Fig 1(a)", fig1a_instance());
  report_instance("Fig 1(b) [Chen et al.]", fig1b_instance());

  std::printf(
      "\nrandom uniform-capacity workloads: OPT_UFPP / OPT_SAP "
      "(paper: ratio > 1 exists; it stays a small constant)\n\n");
  TablePrinter table({"n", "cap", "trials", "mean gap", "max gap",
                      "gap>1 freq"});
  Rng rng(404);
  for (const std::size_t n : {6u, 10u, 14u}) {
    for (const Value cap : {Value{4}, Value{8}}) {
      Summary gap;
      int strict = 0;
      const int trials = 40;
      for (int trial = 0; trial < trials; ++trial) {
        PathGenOptions opt;
        opt.num_edges = 6;
        opt.num_tasks = n;
        opt.profile = CapacityProfile::kUniform;
        opt.min_capacity = cap;
        opt.max_capacity = cap;
        const PathInstance inst = generate_path_instance(opt, rng);
        const SapExactResult sap_opt = sap_exact_profile_dp(inst);
        const UfppExactResult ufpp_opt = ufpp_exact(inst);
        if (!sap_opt.proven_optimal || !ufpp_opt.proven_optimal ||
            sap_opt.weight == 0) {
          continue;
        }
        const double g = static_cast<double>(ufpp_opt.weight) /
                         static_cast<double>(sap_opt.weight);
        gap.add(g);
        if (ufpp_opt.weight > sap_opt.weight) ++strict;
      }
      table.add_row({std::to_string(n), std::to_string(cap),
                     std::to_string(gap.count()), fmt(gap.mean()),
                     fmt(gap.max()),
                     fmt(static_cast<double>(strict) /
                         static_cast<double>(gap.count()))});
    }
  }
  table.print(std::cout);

  // The gadgets are delicate, so uniform random draws almost never hit a
  // gap. Saturated workloads (tasks greedily added until no further task
  // fits) are where interlocking happens; sweep those too.
  std::printf(
      "\nsaturated uniform workloads (greedy-maximal task sets, thick=cap/2 "
      "thin=cap/4):\n\n");
  TablePrinter saturated({"m", "cap", "trials", "mean gap", "max gap",
                          "gap>1 freq"});
  for (const std::size_t m : {4u, 5u, 6u}) {
    const Value cap = 4;
    Summary gap;
    int strict = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
      Rng srng(9090 + static_cast<std::uint64_t>(trial) * 131 + m);
      // Greedily add random thick/thin tasks while loads permit.
      std::vector<Value> load(m, 0);
      std::vector<Task> tasks;
      int misses = 0;
      while (misses < 40) {
        const auto first = static_cast<EdgeId>(
            srng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
        const auto last = static_cast<EdgeId>(srng.uniform_int(
            first, static_cast<std::int64_t>(m) - 1));
        const Value d = srng.bernoulli(0.5) ? 2 : 1;
        bool fits = true;
        for (EdgeId e = first; e <= last && fits; ++e) {
          fits = load[static_cast<std::size_t>(e)] + d <= cap;
        }
        if (!fits) {
          ++misses;
          continue;
        }
        for (EdgeId e = first; e <= last; ++e) {
          load[static_cast<std::size_t>(e)] += d;
        }
        tasks.push_back({first, last, d, 1});
      }
      if (tasks.empty()) continue;
      PathInstance inst(std::vector<Value>(m, cap), std::move(tasks));
      const SapExactResult sap_opt = sap_exact_profile_dp(inst);
      const UfppExactResult ufpp_opt = ufpp_exact(inst);
      if (!sap_opt.proven_optimal || !ufpp_opt.proven_optimal ||
          sap_opt.weight == 0) {
        continue;
      }
      const double g = static_cast<double>(ufpp_opt.weight) /
                       static_cast<double>(sap_opt.weight);
      gap.add(g);
      if (ufpp_opt.weight > sap_opt.weight) ++strict;
    }
    saturated.add_row({std::to_string(m), std::to_string(cap),
                       std::to_string(gap.count()), fmt(gap.mean()),
                       fmt(gap.max()),
                       fmt(static_cast<double>(strict) /
                           static_cast<double>(std::max<std::size_t>(
                               1, gap.count())))});
  }
  saturated.print(std::cout);
  std::printf(
      "\nexpected shape: the gap exists (gadgets above force it) but stays "
      "a small constant even on saturated workloads -- consistent with the "
      "paper's message that SAP admits constant-factor approximations.\n");
  return 0;
}
