// SAP-U (uniform capacities): measured ratio of the specialized solver of
// src/sapu against the exact oracle, swept over capacity, delta and n —
// the related-work baseline lineage ([5]: 7-approx, [6]: 2.582-approx).
#include <cstdio>
#include <iostream>

#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/sapu/sapu_solver.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== SAP-U: specialized uniform-capacity solver ==\n");
  std::printf("lineage bound: 2.582 + eps ([6], deterministic)\n\n");

  TablePrinter table({"cap", "delta", "n", "trials", "mean ratio",
                      "max ratio", "mean retention"});
  ThreadPool pool;

  const std::pair<Ratio, const char*> deltas[] = {{{1, 4}, "1/4"},
                                                  {{1, 8}, "1/8"}};
  for (const Value cap : {Value{12}, Value{24}, Value{40}}) {
    for (const auto& [delta, delta_name] : deltas) {
      for (const std::size_t n : {16u, 32u}) {
        const int trials = 16;
        std::vector<Summary> ratios(static_cast<std::size_t>(trials));
        std::vector<Summary> retention(static_cast<std::size_t>(trials));
        pool.parallel_for(
            static_cast<std::size_t>(trials), [&](std::size_t trial) {
              Rng rng(8800 + 23 * trial + n +
                      static_cast<std::size_t>(cap + delta.den));
              PathGenOptions opt;
              opt.num_edges = 10;
              opt.num_tasks = n;
              opt.profile = CapacityProfile::kUniform;
              opt.min_capacity = cap;
              opt.max_capacity = cap;
              const PathInstance inst = generate_path_instance(opt, rng);
              SapUniformOptions options;
              options.delta = delta;
              SapUniformReport report;
              const SapSolution sol =
                  solve_sap_uniform(inst, options, &report);
              if (!verify_sap(inst, sol)) return;
              OptBoundOptions bopt;
              bopt.exact_max_tasks = 20;
              bopt.exact_max_capacity = 40;
              const RatioMeasurement m = measure_ratio(inst, sol, bopt);
              ratios[trial].add(m.ratio);
              retention[trial].add(report.strip_retention);
            });
        Summary ratio;
        Summary ret;
        for (int t = 0; t < trials; ++t) {
          ratio.merge(ratios[static_cast<std::size_t>(t)]);
          ret.merge(retention[static_cast<std::size_t>(t)]);
        }
        table.add_row({std::to_string(cap), delta_name, std::to_string(n),
                       std::to_string(ratio.count()), fmt(ratio.mean()),
                       fmt(ratio.max()), fmt(ret.mean())});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
