// Experiment E10 (Observations 1-2, Lemma 17): structural invariants
// measured on random optimal solutions — per-edge load vs 2*max bottleneck,
// makespan vs max bottleneck, and rectangle degeneracy of 1/k-large
// solutions vs 2k-2.
#include <cstdio>
#include <iostream>
#include <numeric>

#include "src/core/rectangles.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E10: structural invariants ==\n\n");
  ThreadPool pool;

  // Observation 1 & 2.
  {
    TablePrinter table({"demand class", "trials", "UFPP load/2maxb (max)",
                        "SAP mk/maxb (max)", "violations"});
    const std::pair<DemandClass, const char*> classes[] = {
        {DemandClass::kSmall, "small"},
        {DemandClass::kMedium, "medium"},
        {DemandClass::kLarge, "large"},
        {DemandClass::kMixed, "mixed"}};
    for (const auto& [demand, name] : classes) {
      const int trials = 30;
      std::vector<Summary> obs1(static_cast<std::size_t>(trials));
      std::vector<Summary> obs2(static_cast<std::size_t>(trials));
      std::vector<int> bad(static_cast<std::size_t>(trials), 0);
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(2000 + 7 * trial);
            PathGenOptions opt;
            opt.num_edges = 10;
            opt.num_tasks = 12;
            opt.min_capacity = 4;
            opt.max_capacity = 24;
            opt.demand = demand;
            const PathInstance inst = generate_path_instance(opt, rng);
            const UfppExactResult ufpp = ufpp_exact(inst);
            if (!ufpp.solution.empty()) {
              Value max_b = 0;
              for (TaskId j : ufpp.solution.tasks) {
                max_b = std::max(max_b, inst.bottleneck(j));
              }
              const double r =
                  static_cast<double>(max_load(inst, ufpp.solution.tasks)) /
                  static_cast<double>(2 * max_b);
              obs1[trial].add(r);
              if (r > 1.0) bad[trial] = 1;
            }
            const SapExactResult sap = sap_exact_profile_dp(inst);
            if (sap.proven_optimal && !sap.solution.empty()) {
              Value max_b = 0;
              for (const Placement& p : sap.solution.placements) {
                max_b = std::max(max_b, inst.bottleneck(p.task));
              }
              const double r =
                  static_cast<double>(max_makespan(inst, sap.solution)) /
                  static_cast<double>(max_b);
              obs2[trial].add(r);
              if (r > 1.0) bad[trial] = 1;
            }
          });
      Summary o1;
      Summary o2;
      int violations = 0;
      for (int t = 0; t < trials; ++t) {
        o1.merge(obs1[static_cast<std::size_t>(t)]);
        o2.merge(obs2[static_cast<std::size_t>(t)]);
        violations += bad[static_cast<std::size_t>(t)];
      }
      table.add_row({name, std::to_string(trials), fmt(o1.max()),
                     fmt(o2.max()), std::to_string(violations)});
    }
    std::printf("Observations 1-2 (ratios must stay <= 1):\n");
    table.print(std::cout);
  }

  // Lemma 17 degeneracy statistics.
  {
    std::printf("\nLemma 17: rectangle degeneracy of optimal 1/k-large "
                "solutions (bound 2k-2):\n");
    TablePrinter table({"k", "trials", "mean degeneracy", "max degeneracy",
                        "bound", "violations"});
    for (const std::int64_t k : {2, 3, 4}) {
      const int trials = 30;
      std::vector<Summary> degen(static_cast<std::size_t>(trials));
      std::vector<int> bad(static_cast<std::size_t>(trials), 0);
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(2500 + 19 * trial + static_cast<std::size_t>(k));
            PathGenOptions opt;
            opt.num_edges = 10;
            opt.num_tasks = 14;
            opt.min_capacity = 2 * k;
            opt.max_capacity = 10 * k;
            opt.demand = DemandClass::kLarge;
            opt.k_large = k;
            const PathInstance inst = generate_path_instance(opt, rng);
            const SapExactResult sap = sap_exact_profile_dp(inst);
            if (!sap.proven_optimal || sap.solution.empty()) return;
            std::vector<TaskId> chosen;
            for (const Placement& p : sap.solution.placements) {
              chosen.push_back(p.task);
            }
            const auto rects = task_rectangles(inst, chosen);
            const int d = smallest_last_coloring(rects).degeneracy;
            degen[trial].add(static_cast<double>(d));
            if (d > 2 * k - 2) bad[trial] = 1;
          });
      Summary d;
      int violations = 0;
      for (int t = 0; t < trials; ++t) {
        d.merge(degen[static_cast<std::size_t>(t)]);
        violations += bad[static_cast<std::size_t>(t)];
      }
      table.add_row({std::to_string(k), std::to_string(d.count()),
                     fmt(d.mean(), 2), fmt(d.max(), 0),
                     std::to_string(2 * k - 2), std::to_string(violations)});
    }
    table.print(std::cout);
  }
  return 0;
}
