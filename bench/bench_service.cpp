// Service-level load benchmark: an in-process sapd server driven closed-loop
// by N concurrent clients over loopback TCP, reporting achieved QPS and
// client-observed latency percentiles.
//
// The instance pool uses the same generator configuration as
// bench_full_solver's E6 sweep (12 edges, capacities 8..48, mixed demand,
// all five capacity profiles, n in {12, 24, 48}), so service-level numbers
// are directly comparable with the in-process batch harness: the delta is
// the cost of framing + admission + scheduling, not different workloads.
//
// With --certify the same closed loop runs a second time with every request
// asking for a certificate ("certify 1"), so the report isolates the
// end-to-end latency cost of per-solve certification on identical traffic.
//
// With --deadline-ms B1,B2,... an additional pass runs per budget with every
// request carrying "deadline_ms B": the report shows the degraded-response
// rate and the tail-latency compression each budget buys (the server falls
// back to the budget-capped approximation instead of rejecting, so
// requests_ok should stay total while p95/p99/max collapse toward B).
//
// With --mixed an additional closed-loop pass interleaves the three request
// kinds round-robin by request index (path solve, round-ufp, round-sap) on
// the same pool, measuring the service under a heterogeneous workload where
// single-round and minimum-round solves share the queue and the cache key
// space (the kind is a digest lane, so same-instance requests of different
// kinds never collide).
//
// The remaining sections exercise the scale-out serving core (event loop +
// shards + solve cache) against a second, cache-enabled server:
//
//   --open-loop        paced load at --target-qps for --duration-s: every
//                      connection fires on a fixed absolute schedule
//                      regardless of when the previous response arrived, and
//                      latency is measured from the *scheduled* send time,
//                      so server-side queueing is charged to the tail
//                      (no coordinated omission). Small (n=12) instances,
//                      cache warmed first.
//   --sweep-clients    closed-loop pass per client count (e.g. 8,...,256)
//                      over the warmed cache: tail latency should stay flat
//                      as concurrency grows because hits never queue behind
//                      a solver.
//   --cache-sweep      open-loop passes at fixed rate with 100/50/0 percent
//                      of requests carrying a never-repeating seed (distinct
//                      cache key, forced miss): throughput and tail vs
//                      cache-hit rate.
//
// Usage: bench_service [--clients C] [--requests N] [--threads T]
//                      [--certify] [--deadline-ms B1,B2,...] [--mixed]
//                      [--open-loop] [--target-qps Q] [--duration-s S]
//                      [--open-clients C] [--sweep-clients C1,C2,...]
//                      [--cache-sweep] [--shards S] [--cache-entries E]
//                      [--out FILE.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/gen/generators.hpp"
#include "src/harness/batch_runner.hpp"
#include "src/harness/table.hpp"
#include "src/io/instance_io.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/util/stats.hpp"

using namespace sap;

namespace {

struct PooledInstance {
  std::string name;
  std::string text;
  std::uint64_t seed;
};

/// The E6 generator grid of bench_full_solver, 2 instances per cell.
std::vector<PooledInstance> build_instance_pool() {
  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kMountain, "mountain"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  std::vector<PooledInstance> pool;
  for (const auto& [profile, profile_name] : profiles) {
    for (const std::size_t n : {12u, 24u, 48u}) {
      for (std::size_t i = 0; i < 2; ++i) {
        const std::uint64_t seed = batch_case_seed(5000 + n, i);
        Rng rng(seed);
        PathGenOptions gen;
        gen.num_edges = 12;
        gen.num_tasks = n;
        gen.profile = profile;
        gen.min_capacity = 8;
        gen.max_capacity = 48;
        gen.demand = DemandClass::kMixed;
        PooledInstance entry;
        entry.name = std::string(profile_name) + "/n" + std::to_string(n);
        entry.text = to_string(generate_path_instance(gen, rng));
        entry.seed = seed;
        pool.push_back(std::move(entry));
      }
    }
  }
  return pool;
}

/// One closed-loop pass over the pool: every client issues its requests
/// back-to-back; client-observed latencies are collected per client and
/// merged afterwards.
struct PassResult {
  std::vector<double> all_ms;
  Summary latency;
  std::size_t errors = 0;
  std::size_t certificates = 0;  ///< responses carrying a certificate
  std::size_t degraded = 0;      ///< responses marked "degraded 1"
  std::size_t round_responses = 0;  ///< responses carrying a "rounds" line
  double wall_seconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double qps = 0.0;
};

PassResult run_pass(service::Server& server,
                    const std::vector<PooledInstance>& pool,
                    std::size_t clients, std::size_t requests_per_client,
                    bool certify, std::int64_t deadline_ms = 0,
                    bool mixed = false) {
  std::vector<std::vector<double>> per_client_ms(clients);
  std::vector<std::size_t> per_client_errors(clients, 0);
  std::vector<std::size_t> per_client_certs(clients, 0);
  std::vector<std::size_t> per_client_degraded(clients, 0);
  std::vector<std::size_t> per_client_rounds(clients, 0);
  const auto bench_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        service::Client client;
        client.connect("127.0.0.1", server.port());
        per_client_ms[c].reserve(requests_per_client);
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          const PooledInstance& inst =
              pool[(c * requests_per_client + r) % pool.size()];
          service::SolveRequest request;
          if (mixed) {
            // Round-robin by global request index: path, round-ufp,
            // round-sap. Certificates are a single-round concept, so the
            // mixed pass never requests them.
            const std::size_t slot = (c * requests_per_client + r) % 3;
            request.kind = slot == 0
                               ? service::SolveRequest::Kind::kPath
                               : slot == 1
                                     ? service::SolveRequest::Kind::kRoundUfp
                                     : service::SolveRequest::Kind::kRoundSap;
          }
          request.eps = 0.5;
          request.seed = inst.seed;
          request.want_certificate = certify;
          request.deadline_ms = deadline_ms;
          request.instance_text = inst.text;
          const auto t0 = std::chrono::steady_clock::now();
          const service::Client::SolveOutcome outcome =
              client.solve(request);
          const auto t1 = std::chrono::steady_clock::now();
          if (outcome.ok) {
            per_client_ms[c].push_back(
                1e3 * std::chrono::duration<double>(t1 - t0).count());
            if (!outcome.response.certificate_text.empty()) {
              ++per_client_certs[c];
            }
            if (outcome.response.degraded) ++per_client_degraded[c];
            if (outcome.response.is_round) ++per_client_rounds[c];
          } else {
            ++per_client_errors[c];
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  PassResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  for (std::size_t c = 0; c < clients; ++c) {
    for (const double ms : per_client_ms[c]) {
      out.all_ms.push_back(ms);
      out.latency.add(ms);
    }
    out.errors += per_client_errors[c];
    out.certificates += per_client_certs[c];
    out.degraded += per_client_degraded[c];
    out.round_responses += per_client_rounds[c];
  }
  const std::size_t total = clients * requests_per_client;
  out.qps = static_cast<double>(total - out.errors) /
            std::max(out.wall_seconds, 1e-9);
  out.p50 = percentile(out.all_ms, 50.0);
  out.p95 = percentile(out.all_ms, 95.0);
  out.p99 = percentile(out.all_ms, 99.0);
  return out;
}

/// The n=12 slice of the pool: the "small cached instance" workload the
/// scale-out sections use (solves are cheap, so cached vs uncached is the
/// dominant effect being measured).
std::vector<PooledInstance> small_pool(
    const std::vector<PooledInstance>& pool) {
  std::vector<PooledInstance> out;
  for (const PooledInstance& entry : pool) {
    if (entry.name.size() >= 4 &&
        entry.name.compare(entry.name.size() - 4, 4, "/n12") == 0) {
      out.push_back(entry);
    }
  }
  return out;
}

/// Populate the solve cache: one client solves every pooled instance once.
void warm_cache(service::Server& server,
                const std::vector<PooledInstance>& pool) {
  service::Client client;
  client.connect("127.0.0.1", server.port());
  for (const PooledInstance& inst : pool) {
    service::SolveRequest request;
    request.eps = 0.5;
    request.seed = inst.seed;
    request.instance_text = inst.text;
    (void)client.solve(request);
  }
}

struct OpenLoopResult {
  std::size_t sent = 0;
  std::size_t errors = 0;
  std::size_t degraded = 0;     ///< ok responses marked "degraded 1"
  double degraded_rate = 0.0;   ///< degraded / completed-ok
  double wall_seconds = 0.0;
  double qps = 0.0;       ///< completed-ok per second of scheduled window
  double target_qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, max_ms = 0.0;
  std::uint64_t cache_hits = 0;       ///< delta over the pass
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  double hit_rate = 0.0;  ///< hits / (hits + misses), coalesced not counted
  double unique_fraction = 0.0;
};

/// Open-loop pass: `clients` connections share one absolute schedule firing
/// at `target_qps` aggregate (thread c owns ticks c, c+clients, ...). A
/// request whose connection is still busy when its tick arrives is sent
/// late, and its latency still counts from the tick — saturation shows up
/// as tail growth instead of silently throttling the load.
///
/// `unique_fraction` of requests carry a never-repeating seed, which is part
/// of the cache key, so those are guaranteed misses; the rest draw from the
/// (pre-warmed) pool and should hit.
OpenLoopResult run_open_loop(service::Server& server,
                             const std::vector<PooledInstance>& pool,
                             std::size_t clients, double target_qps,
                             double duration_s, double unique_fraction = 0.0) {
  const service::ServerStats before = server.stats_snapshot();
  const std::size_t total =
      static_cast<std::size_t>(target_qps * duration_s);
  const std::size_t per_client = total / std::max<std::size_t>(clients, 1);
  std::vector<std::vector<double>> per_client_ms(clients);
  std::vector<std::size_t> per_client_errors(clients, 0);
  std::vector<std::size_t> per_client_degraded(clients, 0);
  std::atomic<std::uint64_t> unique_seed{1ull << 40};
  // Every request whose global tick index t has (t % 1000) below this
  // threshold gets a unique seed: deterministic, evenly interleaved.
  const std::uint64_t unique_per_mille =
      static_cast<std::uint64_t>(unique_fraction * 1000.0);
  // Start slightly in the future so every thread connects before tick 0.
  const auto t0 = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(100);
  const double tick_ns = 1e9 / target_qps;
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        service::Client client;
        client.connect("127.0.0.1", server.port());
        per_client_ms[c].reserve(per_client);
        for (std::size_t k = 0; k < per_client; ++k) {
          const std::uint64_t tick = k * clients + c;
          const auto scheduled =
              t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(
                       static_cast<double>(tick) * tick_ns));
          std::this_thread::sleep_until(scheduled);
          const PooledInstance& inst = pool[tick % pool.size()];
          service::SolveRequest request;
          request.eps = 0.5;
          request.seed = (tick % 1000) < unique_per_mille
                             ? unique_seed.fetch_add(1)
                             : inst.seed;
          request.instance_text = inst.text;
          const service::Client::SolveOutcome outcome =
              client.solve(request);
          const auto done = std::chrono::steady_clock::now();
          if (outcome.ok) {
            per_client_ms[c].push_back(
                1e3 *
                std::chrono::duration<double>(done - scheduled).count());
            if (outcome.response.degraded) ++per_client_degraded[c];
          } else {
            ++per_client_errors[c];
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  OpenLoopResult out;
  out.target_qps = target_qps;
  out.unique_fraction = unique_fraction;
  out.sent = per_client * clients;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<double> all_ms;
  for (std::size_t c = 0; c < clients; ++c) {
    all_ms.insert(all_ms.end(), per_client_ms[c].begin(),
                  per_client_ms[c].end());
    out.errors += per_client_errors[c];
    out.degraded += per_client_degraded[c];
  }
  const std::size_t completed = out.sent - out.errors;
  out.degraded_rate = completed > 0 ? static_cast<double>(out.degraded) /
                                          static_cast<double>(completed)
                                    : 0.0;
  out.qps = static_cast<double>(completed) /
            std::max(out.wall_seconds, 1e-9);
  out.p50 = percentile(all_ms, 50.0);
  out.p95 = percentile(all_ms, 95.0);
  out.p99 = percentile(all_ms, 99.0);
  out.max_ms = all_ms.empty() ? 0.0 : *std::max_element(all_ms.begin(),
                                                        all_ms.end());
  const service::ServerStats after = server.stats_snapshot();
  out.cache_hits = after.cache_hits - before.cache_hits;
  out.cache_misses = after.cache_misses - before.cache_misses;
  out.cache_coalesced = after.cache_coalesced - before.cache_coalesced;
  const std::uint64_t keyed = out.cache_hits + out.cache_misses;
  out.hit_rate = keyed > 0 ? static_cast<double>(out.cache_hits) /
                                 static_cast<double>(keyed)
                           : 0.0;
  return out;
}

void write_open_loop_json(std::ostream& out, const OpenLoopResult& pass) {
  out << "{\n";
  out << "      \"target_qps\": " << pass.target_qps << ",\n";
  out << "      \"unique_fraction\": " << pass.unique_fraction << ",\n";
  out << "      \"requests_sent\": " << pass.sent << ",\n";
  out << "      \"requests_failed\": " << pass.errors << ",\n";
  out << "      \"degraded_returned\": " << pass.degraded << ",\n";
  out << "      \"degraded_rate\": " << pass.degraded_rate << ",\n";
  out << "      \"wall_seconds\": " << pass.wall_seconds << ",\n";
  out << "      \"achieved_qps\": " << pass.qps << ",\n";
  out << "      \"cache\": {\"hits\": " << pass.cache_hits
      << ", \"misses\": " << pass.cache_misses
      << ", \"coalesced\": " << pass.cache_coalesced
      << ", \"hit_rate\": " << pass.hit_rate << "},\n";
  out << "      \"latency_ms\": {\"p50\": " << pass.p50
      << ", \"p95\": " << pass.p95 << ", \"p99\": " << pass.p99
      << ", \"max\": " << pass.max_ms << "}\n";
  out << "    }";
}

void write_pass_json(std::ostream& out, const PassResult& pass,
                     std::size_t total) {
  out << "{\n";
  out << "      \"requests_ok\": " << (total - pass.errors) << ",\n";
  out << "      \"requests_failed\": " << pass.errors << ",\n";
  out << "      \"certificates_returned\": " << pass.certificates << ",\n";
  out << "      \"degraded_returned\": " << pass.degraded << ",\n";
  out << "      \"round_responses\": " << pass.round_responses << ",\n";
  out << "      \"wall_seconds\": " << pass.wall_seconds << ",\n";
  out << "      \"qps\": " << pass.qps << ",\n";
  out << "      \"latency_ms\": {\"p50\": " << pass.p50
      << ", \"p95\": " << pass.p95 << ", \"p99\": " << pass.p99
      << ", \"max\": " << pass.latency.max() << "}\n";
  out << "    }";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 8;
  std::size_t requests_per_client = 40;
  std::size_t threads = 0;
  bool certify = false;
  bool mixed = false;
  std::vector<std::int64_t> deadline_budgets;
  bool open_loop = false;
  double target_qps = 1500.0;
  double duration_s = 4.0;
  std::size_t open_clients = 64;
  std::vector<std::size_t> sweep_clients;
  bool cache_sweep = false;
  std::size_t shards = 4;
  std::size_t cache_entries = 1024;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      clients = std::stoull(next());
    } else if (arg == "--requests") {
      requests_per_client = std::stoull(next());
    } else if (arg == "--threads") {
      threads = std::stoull(next());
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--mixed") {
      mixed = true;
    } else if (arg == "--deadline-ms") {
      std::stringstream budgets(next());
      for (std::string item; std::getline(budgets, item, ',');) {
        const std::int64_t budget = std::stoll(item);
        if (budget <= 0) {
          std::fprintf(stderr, "--deadline-ms budgets must be positive\n");
          return 2;
        }
        deadline_budgets.push_back(budget);
      }
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (arg == "--target-qps") {
      target_qps = std::stod(next());
      if (target_qps <= 0) {
        std::fprintf(stderr, "--target-qps must be positive\n");
        return 2;
      }
    } else if (arg == "--duration-s") {
      duration_s = std::stod(next());
    } else if (arg == "--open-clients") {
      open_clients = std::stoull(next());
    } else if (arg == "--sweep-clients") {
      std::stringstream counts(next());
      for (std::string item; std::getline(counts, item, ',');) {
        sweep_clients.push_back(std::stoull(item));
      }
    } else if (arg == "--cache-sweep") {
      cache_sweep = true;
    } else if (arg == "--shards") {
      shards = std::stoull(next());
    } else if (arg == "--cache-entries") {
      cache_entries = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--clients C] [--requests N] "
                   "[--threads T] [--certify] [--deadline-ms B1,B2,...] "
                   "[--mixed] "
                   "[--open-loop] [--target-qps Q] [--duration-s S] "
                   "[--open-clients C] [--sweep-clients C1,C2,...] "
                   "[--cache-sweep] [--shards S] [--cache-entries E] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  std::printf("== sapd service load benchmark (closed loop) ==\n");
  const std::vector<PooledInstance> pool = build_instance_pool();
  std::printf("instance pool: %zu instances (E6 grid), %zu clients x %zu "
              "requests%s\n\n",
              pool.size(), clients, requests_per_client,
              certify ? ", plain + certified passes" : "");

  service::ServerOptions options;
  options.solver_threads = threads;
  options.max_queue = 256;
  service::Server server(std::move(options));
  server.start();

  const std::size_t total = clients * requests_per_client;
  const PassResult plain =
      run_pass(server, pool, clients, requests_per_client, /*certify=*/false);
  PassResult certified;
  if (certify) {
    certified =
        run_pass(server, pool, clients, requests_per_client, /*certify=*/true);
  }
  // Deadline sweep: same traffic, every request budget-capped. Largest
  // budget first so the sweep's own wall time shrinks as it tightens.
  std::vector<std::pair<std::int64_t, PassResult>> deadline_passes;
  std::sort(deadline_budgets.rbegin(), deadline_budgets.rend());
  for (const std::int64_t budget : deadline_budgets) {
    deadline_passes.emplace_back(
        budget, run_pass(server, pool, clients, requests_per_client,
                         /*certify=*/false, budget));
  }
  // Mixed-workload pass: path / round-ufp / round-sap interleaved 1:1:1.
  PassResult mixed_pass;
  if (mixed) {
    mixed_pass = run_pass(server, pool, clients, requests_per_client,
                          /*certify=*/false, /*deadline_ms=*/0,
                          /*mixed=*/true);
  }

  TablePrinter table(certify ? std::vector<std::string>{"metric", "plain",
                                                        "certified"}
                             : std::vector<std::string>{"metric", "value"});
  auto add_row = [&](const std::string& name, const std::string& a,
                     const std::string& b) {
    if (certify) {
      table.add_row({name, a, b});
    } else {
      table.add_row({name, a});
    }
  };
  add_row("requests ok", std::to_string(total - plain.errors),
          std::to_string(total - certified.errors));
  add_row("requests failed", std::to_string(plain.errors),
          std::to_string(certified.errors));
  add_row("certificates", std::to_string(plain.certificates),
          std::to_string(certified.certificates));
  add_row("wall seconds", fmt(plain.wall_seconds, 2),
          fmt(certified.wall_seconds, 2));
  add_row("achieved QPS", fmt(plain.qps, 1), fmt(certified.qps, 1));
  add_row("latency p50 ms", fmt(plain.p50, 2), fmt(certified.p50, 2));
  add_row("latency p95 ms", fmt(plain.p95, 2), fmt(certified.p95, 2));
  add_row("latency p99 ms", fmt(plain.p99, 2), fmt(certified.p99, 2));
  add_row("latency max ms", fmt(plain.latency.max(), 2),
          fmt(certified.latency.max(), 2));
  table.print(std::cout);
  if (certify) {
    std::printf("\ncertification overhead: p50 %+.2f ms (%+.1f%%), "
                "QPS %+.1f%%\n",
                certified.p50 - plain.p50,
                plain.p50 > 0 ? 1e2 * (certified.p50 - plain.p50) / plain.p50
                              : 0.0,
                plain.qps > 0 ? 1e2 * (certified.qps - plain.qps) / plain.qps
                              : 0.0);
  }

  if (mixed) {
    std::printf("\n== mixed workload (path : round-ufp : round-sap, "
                "1:1:1) ==\n");
    const std::size_t ok = total - mixed_pass.errors;
    std::printf("requests ok %zu (failed %zu), %zu round responses\n"
                "achieved %.1f qps, latency ms: p50 %.2f p95 %.2f p99 %.2f "
                "max %.2f\n",
                ok, mixed_pass.errors, mixed_pass.round_responses,
                mixed_pass.qps, mixed_pass.p50, mixed_pass.p95,
                mixed_pass.p99, mixed_pass.latency.max());
  }

  if (!deadline_passes.empty()) {
    std::printf("\n== deadline sweep (plain requests, budget-capped) ==\n");
    TablePrinter sweep({"budget ms", "ok", "degraded", "degraded %", "p50 ms",
                        "p95 ms", "p99 ms", "max ms"});
    for (const auto& [budget, pass] : deadline_passes) {
      const std::size_t ok = total - pass.errors;
      sweep.add_row({std::to_string(budget), std::to_string(ok),
                     std::to_string(pass.degraded),
                     fmt(ok > 0 ? 1e2 * static_cast<double>(pass.degraded) /
                                      static_cast<double>(ok)
                                : 0.0,
                         1),
                     fmt(pass.p50, 2), fmt(pass.p95, 2), fmt(pass.p99, 2),
                     fmt(pass.latency.max(), 2)});
    }
    sweep.print(std::cout);
  }

  const service::ServerStats stats = server.stats_snapshot();
  std::printf("\nserver side: ok=%llu bad=%llu overloaded=%llu "
              "degraded=%llu deadline_exceeded=%llu connections=%llu\n",
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.requests_bad),
              static_cast<unsigned long long>(stats.requests_overloaded),
              static_cast<unsigned long long>(stats.requests_degraded),
              static_cast<unsigned long long>(
                  stats.requests_deadline_exceeded),
              static_cast<unsigned long long>(stats.connections_accepted));
  server.stop();

  // Scale-out sections run against a second, cache-enabled sharded server;
  // the closed-loop sections above keep the cache off so their numbers stay
  // comparable with sapkit-bench-service-v2 runs.
  const bool scale_out = open_loop || cache_sweep || !sweep_clients.empty();
  std::vector<PooledInstance> cached_pool;
  OpenLoopResult open_pass;
  std::vector<std::pair<std::size_t, PassResult>> client_sweep;
  std::vector<OpenLoopResult> cache_passes;
  if (scale_out) {
    service::ServerOptions cached_options;
    cached_options.solver_threads = threads;
    cached_options.max_queue = 1024;
    cached_options.shards = shards;
    cached_options.cache_entries = cache_entries;
    service::Server cached_server(std::move(cached_options));
    cached_server.start();
    cached_pool = small_pool(pool);
    warm_cache(cached_server, cached_pool);

    if (open_loop) {
      std::printf("\n== open loop (%zu shards, %zu cache entries, "
                  "%zu connections, target %.0f qps, %.1fs) ==\n",
                  shards, cache_entries, open_clients, target_qps,
                  duration_s);
      open_pass = run_open_loop(cached_server, cached_pool, open_clients,
                                target_qps, duration_s);
      std::printf("achieved %.1f qps (%zu sent, %zu failed), hit rate "
                  "%.3f (%llu hits / %llu misses / %llu coalesced)\n"
                  "scheduled-send latency ms: p50 %.2f p95 %.2f p99 %.2f "
                  "max %.2f; degraded %zu (rate %.4f)\n",
                  open_pass.qps, open_pass.sent, open_pass.errors,
                  open_pass.hit_rate,
                  static_cast<unsigned long long>(open_pass.cache_hits),
                  static_cast<unsigned long long>(open_pass.cache_misses),
                  static_cast<unsigned long long>(open_pass.cache_coalesced),
                  open_pass.p50, open_pass.p95, open_pass.p99,
                  open_pass.max_ms, open_pass.degraded,
                  open_pass.degraded_rate);
    }

    if (!sweep_clients.empty()) {
      std::printf("\n== client sweep (closed loop over warm cache) ==\n");
      TablePrinter sweep({"clients", "qps", "p50 ms", "p95 ms", "p99 ms",
                          "max ms"});
      for (const std::size_t count : sweep_clients) {
        const PassResult pass = run_pass(cached_server, cached_pool, count,
                                         requests_per_client,
                                         /*certify=*/false);
        sweep.add_row({std::to_string(count), fmt(pass.qps, 1),
                       fmt(pass.p50, 2), fmt(pass.p95, 2), fmt(pass.p99, 2),
                       fmt(pass.latency.max(), 2)});
        client_sweep.emplace_back(count, pass);
      }
      sweep.print(std::cout);
    }

    if (cache_sweep) {
      std::printf("\n== cache-hit-rate sweep (open loop, fixed rate) ==\n");
      TablePrinter sweep({"unique %", "hit rate", "qps", "p50 ms", "p95 ms",
                          "p99 ms"});
      // Modest fixed rate so the all-miss pass is not itself saturated:
      // the variable under test is the hit rate, not the target rate.
      const double sweep_qps = std::min(target_qps, 400.0);
      for (const double unique_fraction : {1.0, 0.5, 0.0}) {
        const OpenLoopResult pass =
            run_open_loop(cached_server, cached_pool, open_clients,
                          sweep_qps, duration_s, unique_fraction);
        sweep.add_row({fmt(1e2 * unique_fraction, 0), fmt(pass.hit_rate, 3),
                       fmt(pass.qps, 1), fmt(pass.p50, 2), fmt(pass.p95, 2),
                       fmt(pass.p99, 2)});
        cache_passes.push_back(pass);
      }
      sweep.print(std::cout);
    }

    const service::ServerStats cached_stats = cached_server.stats_snapshot();
    std::printf("\ncached server: ok=%llu hits=%llu misses=%llu "
                "coalesced=%llu evictions=%llu\n",
                static_cast<unsigned long long>(cached_stats.requests_ok),
                static_cast<unsigned long long>(cached_stats.cache_hits),
                static_cast<unsigned long long>(cached_stats.cache_misses),
                static_cast<unsigned long long>(cached_stats.cache_coalesced),
                static_cast<unsigned long long>(
                    cached_stats.cache_evictions));
    cached_server.stop();
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"sapkit-bench-service-v4\",\n";
    out << "  \"config\": {\n";
    out << "    \"clients\": " << clients << ",\n";
    out << "    \"requests_per_client\": " << requests_per_client << ",\n";
    out << "    \"instance_pool\": " << pool.size() << ",\n";
    out << "    \"certify\": " << (certify ? "true" : "false") << ",\n";
    out << "    \"mixed\": " << (mixed ? "true" : "false") << ",\n";
    out << "    \"deadline_budgets_ms\": [";
    for (std::size_t i = 0; i < deadline_passes.size(); ++i) {
      out << (i ? ", " : "") << deadline_passes[i].first;
    }
    out << "],\n";
    if (scale_out) {
      out << "    \"scale_out\": {\"shards\": " << shards
          << ", \"cache_entries\": " << cache_entries
          << ", \"open_clients\": " << open_clients
          << ", \"target_qps\": " << target_qps
          << ", \"duration_s\": " << duration_s
          << ", \"cached_pool\": " << cached_pool.size() << "},\n";
    }
    out << "    \"generator\": \"bench_full_solver E6 grid (12 edges, caps "
           "8..48, mixed demand, 5 profiles, n in {12,24,48})\"\n";
    out << "  },\n";
    out << "  \"results\": {\n";
    out << "    \"plain\": ";
    write_pass_json(out, plain, total);
    if (certify) {
      out << ",\n    \"certified\": ";
      write_pass_json(out, certified, total);
      out << ",\n    \"certify_overhead\": {\"p50_ms\": "
          << (certified.p50 - plain.p50) << ", \"p95_ms\": "
          << (certified.p95 - plain.p95) << ", \"qps_ratio\": "
          << (plain.qps > 0 ? certified.qps / plain.qps : 0.0) << "}";
    }
    if (mixed) {
      out << ",\n    \"mixed\": ";
      write_pass_json(out, mixed_pass, total);
    }
    if (!deadline_passes.empty()) {
      out << ",\n    \"deadline_sweep\": [";
      for (std::size_t i = 0; i < deadline_passes.size(); ++i) {
        const auto& [budget, pass] = deadline_passes[i];
        out << (i ? ",\n      " : "\n      ");
        out << "{\"budget_ms\": " << budget << ", \"pass\": ";
        write_pass_json(out, pass, total);
        out << "}";
      }
      out << "\n    ]";
    }
    if (open_loop) {
      out << ",\n    \"open_loop\": ";
      write_open_loop_json(out, open_pass);
    }
    if (!client_sweep.empty()) {
      out << ",\n    \"client_sweep\": [";
      for (std::size_t i = 0; i < client_sweep.size(); ++i) {
        const auto& [count, pass] = client_sweep[i];
        out << (i ? ",\n      " : "\n      ");
        out << "{\"clients\": " << count << ", \"qps\": " << pass.qps
            << ", \"latency_ms\": {\"p50\": " << pass.p50
            << ", \"p95\": " << pass.p95 << ", \"p99\": " << pass.p99
            << ", \"max\": " << pass.latency.max() << "}}";
      }
      out << "\n    ]";
    }
    if (!cache_passes.empty()) {
      out << ",\n    \"cache_sweep\": [";
      for (std::size_t i = 0; i < cache_passes.size(); ++i) {
        out << (i ? ",\n      " : "\n      ");
        write_open_loop_json(out, cache_passes[i]);
      }
      out << "\n    ]";
    }
    out << "\n  }\n";
    out << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::size_t sweep_errors = 0;
  sweep_errors += mixed_pass.errors;
  for (const auto& [budget, pass] : deadline_passes) {
    sweep_errors += pass.errors;
  }
  sweep_errors += open_pass.errors;
  for (const auto& [count, pass] : client_sweep) sweep_errors += pass.errors;
  for (const OpenLoopResult& pass : cache_passes) {
    sweep_errors += pass.errors;
  }
  return plain.errors + certified.errors + sweep_errors == 0 ? 0 : 1;
}
