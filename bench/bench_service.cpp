// Service-level load benchmark: an in-process sapd server driven closed-loop
// by N concurrent clients over loopback TCP, reporting achieved QPS and
// client-observed latency percentiles.
//
// The instance pool uses the same generator configuration as
// bench_full_solver's E6 sweep (12 edges, capacities 8..48, mixed demand,
// all five capacity profiles, n in {12, 24, 48}), so service-level numbers
// are directly comparable with the in-process batch harness: the delta is
// the cost of framing + admission + scheduling, not different workloads.
//
// With --certify the same closed loop runs a second time with every request
// asking for a certificate ("certify 1"), so the report isolates the
// end-to-end latency cost of per-solve certification on identical traffic.
//
// With --deadline-ms B1,B2,... an additional pass runs per budget with every
// request carrying "deadline_ms B": the report shows the degraded-response
// rate and the tail-latency compression each budget buys (the server falls
// back to the budget-capped approximation instead of rejecting, so
// requests_ok should stay total while p95/p99/max collapse toward B).
//
// Usage: bench_service [--clients C] [--requests N] [--threads T]
//                      [--certify] [--deadline-ms B1,B2,...]
//                      [--out FILE.json]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/gen/generators.hpp"
#include "src/harness/batch_runner.hpp"
#include "src/harness/table.hpp"
#include "src/io/instance_io.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/util/stats.hpp"

using namespace sap;

namespace {

struct PooledInstance {
  std::string name;
  std::string text;
  std::uint64_t seed;
};

/// The E6 generator grid of bench_full_solver, 2 instances per cell.
std::vector<PooledInstance> build_instance_pool() {
  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kMountain, "mountain"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  std::vector<PooledInstance> pool;
  for (const auto& [profile, profile_name] : profiles) {
    for (const std::size_t n : {12u, 24u, 48u}) {
      for (std::size_t i = 0; i < 2; ++i) {
        const std::uint64_t seed = batch_case_seed(5000 + n, i);
        Rng rng(seed);
        PathGenOptions gen;
        gen.num_edges = 12;
        gen.num_tasks = n;
        gen.profile = profile;
        gen.min_capacity = 8;
        gen.max_capacity = 48;
        gen.demand = DemandClass::kMixed;
        PooledInstance entry;
        entry.name = std::string(profile_name) + "/n" + std::to_string(n);
        entry.text = to_string(generate_path_instance(gen, rng));
        entry.seed = seed;
        pool.push_back(std::move(entry));
      }
    }
  }
  return pool;
}

/// One closed-loop pass over the pool: every client issues its requests
/// back-to-back; client-observed latencies are collected per client and
/// merged afterwards.
struct PassResult {
  std::vector<double> all_ms;
  Summary latency;
  std::size_t errors = 0;
  std::size_t certificates = 0;  ///< responses carrying a certificate
  std::size_t degraded = 0;      ///< responses marked "degraded 1"
  double wall_seconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double qps = 0.0;
};

PassResult run_pass(service::Server& server,
                    const std::vector<PooledInstance>& pool,
                    std::size_t clients, std::size_t requests_per_client,
                    bool certify, std::int64_t deadline_ms = 0) {
  std::vector<std::vector<double>> per_client_ms(clients);
  std::vector<std::size_t> per_client_errors(clients, 0);
  std::vector<std::size_t> per_client_certs(clients, 0);
  std::vector<std::size_t> per_client_degraded(clients, 0);
  const auto bench_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        service::Client client;
        client.connect("127.0.0.1", server.port());
        per_client_ms[c].reserve(requests_per_client);
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          const PooledInstance& inst =
              pool[(c * requests_per_client + r) % pool.size()];
          service::SolveRequest request;
          request.eps = 0.5;
          request.seed = inst.seed;
          request.want_certificate = certify;
          request.deadline_ms = deadline_ms;
          request.instance_text = inst.text;
          const auto t0 = std::chrono::steady_clock::now();
          const service::Client::SolveOutcome outcome =
              client.solve(request);
          const auto t1 = std::chrono::steady_clock::now();
          if (outcome.ok) {
            per_client_ms[c].push_back(
                1e3 * std::chrono::duration<double>(t1 - t0).count());
            if (!outcome.response.certificate_text.empty()) {
              ++per_client_certs[c];
            }
            if (outcome.response.degraded) ++per_client_degraded[c];
          } else {
            ++per_client_errors[c];
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  PassResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  for (std::size_t c = 0; c < clients; ++c) {
    for (const double ms : per_client_ms[c]) {
      out.all_ms.push_back(ms);
      out.latency.add(ms);
    }
    out.errors += per_client_errors[c];
    out.certificates += per_client_certs[c];
    out.degraded += per_client_degraded[c];
  }
  const std::size_t total = clients * requests_per_client;
  out.qps = static_cast<double>(total - out.errors) /
            std::max(out.wall_seconds, 1e-9);
  out.p50 = percentile(out.all_ms, 50.0);
  out.p95 = percentile(out.all_ms, 95.0);
  out.p99 = percentile(out.all_ms, 99.0);
  return out;
}

void write_pass_json(std::ostream& out, const PassResult& pass,
                     std::size_t total) {
  out << "{\n";
  out << "      \"requests_ok\": " << (total - pass.errors) << ",\n";
  out << "      \"requests_failed\": " << pass.errors << ",\n";
  out << "      \"certificates_returned\": " << pass.certificates << ",\n";
  out << "      \"degraded_returned\": " << pass.degraded << ",\n";
  out << "      \"wall_seconds\": " << pass.wall_seconds << ",\n";
  out << "      \"qps\": " << pass.qps << ",\n";
  out << "      \"latency_ms\": {\"p50\": " << pass.p50
      << ", \"p95\": " << pass.p95 << ", \"p99\": " << pass.p99
      << ", \"max\": " << pass.latency.max() << "}\n";
  out << "    }";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 8;
  std::size_t requests_per_client = 40;
  std::size_t threads = 0;
  bool certify = false;
  std::vector<std::int64_t> deadline_budgets;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      clients = std::stoull(next());
    } else if (arg == "--requests") {
      requests_per_client = std::stoull(next());
    } else if (arg == "--threads") {
      threads = std::stoull(next());
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--deadline-ms") {
      std::stringstream budgets(next());
      for (std::string item; std::getline(budgets, item, ',');) {
        const std::int64_t budget = std::stoll(item);
        if (budget <= 0) {
          std::fprintf(stderr, "--deadline-ms budgets must be positive\n");
          return 2;
        }
        deadline_budgets.push_back(budget);
      }
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--clients C] [--requests N] "
                   "[--threads T] [--certify] [--deadline-ms B1,B2,...] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  std::printf("== sapd service load benchmark (closed loop) ==\n");
  const std::vector<PooledInstance> pool = build_instance_pool();
  std::printf("instance pool: %zu instances (E6 grid), %zu clients x %zu "
              "requests%s\n\n",
              pool.size(), clients, requests_per_client,
              certify ? ", plain + certified passes" : "");

  service::ServerOptions options;
  options.solver_threads = threads;
  options.max_queue = 256;
  service::Server server(std::move(options));
  server.start();

  const std::size_t total = clients * requests_per_client;
  const PassResult plain =
      run_pass(server, pool, clients, requests_per_client, /*certify=*/false);
  PassResult certified;
  if (certify) {
    certified =
        run_pass(server, pool, clients, requests_per_client, /*certify=*/true);
  }
  // Deadline sweep: same traffic, every request budget-capped. Largest
  // budget first so the sweep's own wall time shrinks as it tightens.
  std::vector<std::pair<std::int64_t, PassResult>> deadline_passes;
  std::sort(deadline_budgets.rbegin(), deadline_budgets.rend());
  for (const std::int64_t budget : deadline_budgets) {
    deadline_passes.emplace_back(
        budget, run_pass(server, pool, clients, requests_per_client,
                         /*certify=*/false, budget));
  }

  TablePrinter table(certify ? std::vector<std::string>{"metric", "plain",
                                                        "certified"}
                             : std::vector<std::string>{"metric", "value"});
  auto add_row = [&](const std::string& name, const std::string& a,
                     const std::string& b) {
    if (certify) {
      table.add_row({name, a, b});
    } else {
      table.add_row({name, a});
    }
  };
  add_row("requests ok", std::to_string(total - plain.errors),
          std::to_string(total - certified.errors));
  add_row("requests failed", std::to_string(plain.errors),
          std::to_string(certified.errors));
  add_row("certificates", std::to_string(plain.certificates),
          std::to_string(certified.certificates));
  add_row("wall seconds", fmt(plain.wall_seconds, 2),
          fmt(certified.wall_seconds, 2));
  add_row("achieved QPS", fmt(plain.qps, 1), fmt(certified.qps, 1));
  add_row("latency p50 ms", fmt(plain.p50, 2), fmt(certified.p50, 2));
  add_row("latency p95 ms", fmt(plain.p95, 2), fmt(certified.p95, 2));
  add_row("latency p99 ms", fmt(plain.p99, 2), fmt(certified.p99, 2));
  add_row("latency max ms", fmt(plain.latency.max(), 2),
          fmt(certified.latency.max(), 2));
  table.print(std::cout);
  if (certify) {
    std::printf("\ncertification overhead: p50 %+.2f ms (%+.1f%%), "
                "QPS %+.1f%%\n",
                certified.p50 - plain.p50,
                plain.p50 > 0 ? 1e2 * (certified.p50 - plain.p50) / plain.p50
                              : 0.0,
                plain.qps > 0 ? 1e2 * (certified.qps - plain.qps) / plain.qps
                              : 0.0);
  }

  if (!deadline_passes.empty()) {
    std::printf("\n== deadline sweep (plain requests, budget-capped) ==\n");
    TablePrinter sweep({"budget ms", "ok", "degraded", "degraded %", "p50 ms",
                        "p95 ms", "p99 ms", "max ms"});
    for (const auto& [budget, pass] : deadline_passes) {
      const std::size_t ok = total - pass.errors;
      sweep.add_row({std::to_string(budget), std::to_string(ok),
                     std::to_string(pass.degraded),
                     fmt(ok > 0 ? 1e2 * static_cast<double>(pass.degraded) /
                                      static_cast<double>(ok)
                                : 0.0,
                         1),
                     fmt(pass.p50, 2), fmt(pass.p95, 2), fmt(pass.p99, 2),
                     fmt(pass.latency.max(), 2)});
    }
    sweep.print(std::cout);
  }

  const service::ServerStats stats = server.stats_snapshot();
  std::printf("\nserver side: ok=%llu bad=%llu overloaded=%llu "
              "degraded=%llu deadline_exceeded=%llu connections=%llu\n",
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.requests_bad),
              static_cast<unsigned long long>(stats.requests_overloaded),
              static_cast<unsigned long long>(stats.requests_degraded),
              static_cast<unsigned long long>(
                  stats.requests_deadline_exceeded),
              static_cast<unsigned long long>(stats.connections_accepted));
  server.stop();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"sapkit-bench-service-v2\",\n";
    out << "  \"config\": {\n";
    out << "    \"clients\": " << clients << ",\n";
    out << "    \"requests_per_client\": " << requests_per_client << ",\n";
    out << "    \"instance_pool\": " << pool.size() << ",\n";
    out << "    \"certify\": " << (certify ? "true" : "false") << ",\n";
    out << "    \"deadline_budgets_ms\": [";
    for (std::size_t i = 0; i < deadline_passes.size(); ++i) {
      out << (i ? ", " : "") << deadline_passes[i].first;
    }
    out << "],\n";
    out << "    \"generator\": \"bench_full_solver E6 grid (12 edges, caps "
           "8..48, mixed demand, 5 profiles, n in {12,24,48})\"\n";
    out << "  },\n";
    out << "  \"results\": {\n";
    out << "    \"plain\": ";
    write_pass_json(out, plain, total);
    if (certify) {
      out << ",\n    \"certified\": ";
      write_pass_json(out, certified, total);
      out << ",\n    \"certify_overhead\": {\"p50_ms\": "
          << (certified.p50 - plain.p50) << ", \"p95_ms\": "
          << (certified.p95 - plain.p95) << ", \"qps_ratio\": "
          << (plain.qps > 0 ? certified.qps / plain.qps : 0.0) << "}";
    }
    if (!deadline_passes.empty()) {
      out << ",\n    \"deadline_sweep\": [";
      for (std::size_t i = 0; i < deadline_passes.size(); ++i) {
        const auto& [budget, pass] = deadline_passes[i];
        out << (i ? ",\n      " : "\n      ");
        out << "{\"budget_ms\": " << budget << ", \"pass\": ";
        write_pass_json(out, pass, total);
        out << "}";
      }
      out << "\n    ]";
    }
    out << "\n  }\n";
    out << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::size_t sweep_errors = 0;
  for (const auto& [budget, pass] : deadline_passes) {
    sweep_errors += pass.errors;
  }
  return plain.errors + certified.errors + sweep_errors == 0 ? 0 : 1;
}
