// Experiment E6 (Theorem 4): the full (9+eps) pipeline on mixed workloads.
// Each parameter point is one batch_runner sweep; the table reports measured
// ratio against the oracle or LP bound, which branch (small/medium/large)
// wins how often (from the merged solver telemetry), and per-stage wall time.
#include <cstdio>
#include <iostream>

#include "src/harness/batch_runner.hpp"
#include "src/harness/table.hpp"

using namespace sap;

int main() {
  std::printf("== E6 / Theorem 4: full SAP pipeline on mixed workloads ==\n");
  std::printf("bound: 9 + eps\n\n");

  TablePrinter table({"profile", "n", "trials", "mean ratio", "p95 ratio",
                      "max ratio", "win S/M/L", "exact-opt%", "solve ms"});
  ThreadPool pool;

  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kMountain, "mountain"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };

  TelemetryReport stage_times;
  for (const auto& [profile, profile_name] : profiles) {
    for (const std::size_t n : {12u, 24u, 48u}) {
      PathBatchConfig config;
      config.gen.num_edges = 12;
      config.gen.num_tasks = n;
      config.gen.profile = profile;
      config.gen.min_capacity = 8;
      config.gen.max_capacity = 48;
      config.gen.demand = DemandClass::kMixed;
      config.bound.exact_max_tasks = 26;
      config.bound.exact_max_capacity = 48;

      BatchOptions options;
      options.num_instances = 20;
      options.base_seed = 5000 + n;
      options.keep_cases = false;

      const BatchReport report =
          run_batch(options, make_path_batch_case(config), pool);
      stage_times.merge(report.telemetry);

      const TelemetryReport& t = report.telemetry;
      const double solve_ms =
          1e3 * t.timer("batch.solve").seconds /
          static_cast<double>(std::max<std::size_t>(1, report.solved));
      table.add_row(
          {profile_name, std::to_string(n), std::to_string(report.solved),
           fmt(report.ratio.mean()), fmt(report.ratio_p95),
           fmt(report.ratio.max()),
           std::to_string(t.count("sap.winner.small")) + "/" +
               std::to_string(t.count("sap.winner.medium")) + "/" +
               std::to_string(t.count("sap.winner.large")),
           fmt(100.0 * static_cast<double>(report.bound_exact) /
                   static_cast<double>(report.num_instances),
               0),
           fmt(solve_ms, 2)});
    }
  }
  table.print(std::cout);

  std::printf("\nper-stage wall time over the whole experiment:\n");
  for (const char* name :
       {"sap.classify", "sap.stage.small", "sap.stage.medium",
        "sap.stage.large", "batch.bound"}) {
    const TimerStat stat = stage_times.timer(name);
    std::printf("  %-18s %8.1f ms over %lld entries\n", name,
                1e3 * stat.seconds, static_cast<long long>(stat.count));
  }
  std::printf(
      "\nexpected shape: every max ratio sits far below 9+eps; the class "
      "that dominates the instance mix wins the best-of-three.\n");
  return 0;
}
