// Experiment E6 (Theorem 4): the full (9+eps) pipeline on mixed workloads.
// Sweeps n and capacity profile; reports measured ratio against the oracle
// or LP bound, plus which branch (small/medium/large) wins how often.
#include <cstdio>
#include <iostream>

#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/harness/table.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

using namespace sap;

int main() {
  std::printf("== E6 / Theorem 4: full SAP pipeline on mixed workloads ==\n");
  std::printf("bound: 9 + eps\n\n");

  TablePrinter table({"profile", "n", "trials", "mean ratio", "max ratio",
                      "win S/M/L", "exact-opt%"});
  ThreadPool pool;

  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kMountain, "mountain"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };

  for (const auto& [profile, profile_name] : profiles) {
    for (const std::size_t n : {12u, 24u, 48u}) {
      const int trials = 20;
      std::vector<Summary> ratios(static_cast<std::size_t>(trials));
      std::vector<int> exact(static_cast<std::size_t>(trials), 0);
      std::vector<int> wins(static_cast<std::size_t>(trials), -1);
      pool.parallel_for(
          static_cast<std::size_t>(trials), [&](std::size_t trial) {
            Rng rng(5000 + 13 * trial + n);
            PathGenOptions opt;
            opt.num_edges = 12;
            opt.num_tasks = n;
            opt.profile = profile;
            opt.min_capacity = 8;
            opt.max_capacity = 48;
            opt.demand = DemandClass::kMixed;
            const PathInstance inst = generate_path_instance(opt, rng);
            SolverParams params;
            params.seed = trial;
            SolveReport report;
            const SapSolution sol = solve_sap(inst, params, &report);
            if (!verify_sap(inst, sol)) return;
            OptBoundOptions bopt;
            bopt.exact_max_tasks = 26;
            bopt.exact_max_capacity = 48;
            const RatioMeasurement m = measure_ratio(inst, sol, bopt);
            ratios[trial].add(m.ratio);
            exact[trial] = m.bound_exact ? 1 : 0;
            wins[trial] = static_cast<int>(report.winner);
          });
      Summary ratio;
      int exact_count = 0;
      int win_count[3] = {0, 0, 0};
      for (int t = 0; t < trials; ++t) {
        ratio.merge(ratios[static_cast<std::size_t>(t)]);
        exact_count += exact[static_cast<std::size_t>(t)];
        if (wins[static_cast<std::size_t>(t)] >= 0) {
          ++win_count[wins[static_cast<std::size_t>(t)]];
        }
      }
      table.add_row(
          {profile_name, std::to_string(n), std::to_string(ratio.count()),
           fmt(ratio.mean()), fmt(ratio.max()),
           std::to_string(win_count[0]) + "/" + std::to_string(win_count[1]) +
               "/" + std::to_string(win_count[2]),
           fmt(100.0 * exact_count / trials, 0)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: every max ratio sits far below 9+eps; the class "
      "that dominates the instance mix wins the best-of-three.\n");
  return 0;
}
