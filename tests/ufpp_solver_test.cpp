// Tests for the Bonsma-style UFPP pipeline assembled in
// src/ufpp/ufpp_solver.*: feasibility everywhere, competitiveness against
// the exact UFPP oracle, and dominance over the SAP pipeline (dropping the
// contiguity requirement can only help).
#include <gtest/gtest.h>

#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/ufpp/ufpp_solver.hpp"

namespace sap {
namespace {

TEST(UfppSolverTest, FeasibleAcrossProfilesAndMixes) {
  Rng rng(421);
  for (int trial = 0; trial < 12; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 12;
    opt.num_tasks = 30;
    opt.profile = static_cast<CapacityProfile>(trial % 5);
    opt.min_capacity = 8;
    opt.max_capacity = 64;
    const PathInstance inst = generate_path_instance(opt, rng);
    UfppSolveReport report;
    const UfppSolution sol = solve_ufpp_approx(inst, {}, &report);
    ASSERT_TRUE(verify_ufpp(inst, sol)) << "trial " << trial << ": "
                                        << verify_ufpp(inst, sol).reason;
    EXPECT_EQ(report.num_small + report.num_medium + report.num_large,
              inst.num_tasks());
    EXPECT_EQ(sol.weight(inst),
              std::max({report.small_weight, report.medium_weight,
                        report.large_weight}));
  }
}

TEST(UfppSolverTest, CompetitiveAgainstExactOptimum) {
  Rng rng(431);
  int checked = 0;
  for (int trial = 0; trial < 16 && checked < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    opt.min_capacity = 4;
    opt.max_capacity = 16;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppExactResult exact = ufpp_exact(inst);
    ASSERT_TRUE(exact.proven_optimal);
    if (exact.weight == 0) continue;
    ++checked;
    const UfppSolution sol = solve_ufpp_approx(inst);
    // Loose envelope of the Bonsma-style constants (7+eps in the paper's
    // citation; our assembled version is measured, not proven).
    EXPECT_GE(8 * sol.weight(inst), exact.weight) << "trial " << trial;
  }
  EXPECT_GT(checked, 0);
}

TEST(UfppSolverTest, MediumBandReserveKeepsUnionFeasible) {
  // Stress the reserve logic: medium-only workloads with several octaves.
  Rng rng(433);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 30;
    opt.min_capacity = 8;
    opt.max_capacity = 128;  // several bands per residue class
    opt.demand = DemandClass::kMedium;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppSolution sol = solve_ufpp_approx(inst);
    ASSERT_TRUE(verify_ufpp(inst, sol)) << verify_ufpp(inst, sol).reason;
  }
}

TEST(UfppSolverTest, SmallOctaveUnionFeasible) {
  Rng rng(439);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 14;
    opt.num_tasks = 60;
    opt.min_capacity = 8;
    opt.max_capacity = 256;  // many octaves
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 8};
    const PathInstance inst = generate_path_instance(opt, rng);
    for (SmallTaskBackend backend :
         {SmallTaskBackend::kLocalRatio, SmallTaskBackend::kLpRounding}) {
      SolverParams params;
      params.small_backend = backend;
      const UfppSolution sol = solve_ufpp_approx(inst, params);
      ASSERT_TRUE(verify_ufpp(inst, sol)) << verify_ufpp(inst, sol).reason;
    }
  }
}

TEST(UfppSolverTest, SapPipelineNeverBeatsUfppMeaningfully) {
  // SAP solutions are UFPP solutions, so the UFPP pipeline with the same
  // budget should (statistically) collect at least comparable weight.
  Rng rng(443);
  Weight ufpp_total = 0;
  Weight sap_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 24;
    opt.min_capacity = 8;
    opt.max_capacity = 32;
    const PathInstance inst = generate_path_instance(opt, rng);
    ufpp_total += solve_ufpp_approx(inst).weight(inst);
    sap_total += solve_sap(inst).weight(inst);
  }
  // Aggregate comparison avoids per-instance heuristic noise.
  EXPECT_GE(4 * ufpp_total, 3 * sap_total);
}

}  // namespace
}  // namespace sap
