// End-to-end tests of the full (9+eps) SAP pipeline (Theorem 4).
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/classify.hpp"
#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

TEST(ClassifyTest, PartitionIsExhaustiveAndDisjoint) {
  Rng rng(199);
  PathGenOptions opt;
  opt.num_edges = 12;
  opt.num_tasks = 40;
  const PathInstance inst = generate_path_instance(opt, rng);
  SolverParams params;
  const TaskClasses classes = classify_tasks(inst, params);
  std::vector<int> count(inst.num_tasks(), 0);
  for (TaskId j : classes.small) ++count[static_cast<std::size_t>(j)];
  for (TaskId j : classes.medium) ++count[static_cast<std::size_t>(j)];
  for (TaskId j : classes.large) ++count[static_cast<std::size_t>(j)];
  for (int c : count) EXPECT_EQ(c, 1);
  // Class membership matches the thresholds.
  for (TaskId j : classes.small) {
    EXPECT_TRUE(inst.is_small(j, params.delta));
  }
  for (TaskId j : classes.large) {
    EXPECT_TRUE(inst.is_large(j, Ratio{1, params.k_large}));
  }
  for (TaskId j : classes.medium) {
    EXPECT_FALSE(inst.is_small(j, params.delta));
    EXPECT_FALSE(inst.is_large(j, Ratio{1, params.k_large}));
  }
}

TEST(SolverParamsTest, DerivedQuantities) {
  SolverParams params;
  EXPECT_EQ(params.beta_q(), 2);  // beta = 1/4
  params.eps = 0.5;
  EXPECT_EQ(params.effective_ell(), 4);  // ceil(2 / 0.5)
  params.eps = 1.0;
  EXPECT_EQ(params.effective_ell(), 2);
  params.ell = 7;
  EXPECT_EQ(params.effective_ell(), 7);
  params.beta = {1, 8};
  EXPECT_EQ(params.beta_q(), 3);
}

TEST(SolverTest, FeasibleAcrossProfilesAndMixes) {
  Rng rng(211);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 14;
    opt.num_tasks = 30;
    opt.profile = static_cast<CapacityProfile>(trial % 5);
    opt.min_capacity = 8;
    opt.max_capacity = 64;
    const PathInstance inst = generate_path_instance(opt, rng);
    SolveReport report;
    const SapSolution sol = solve_sap(inst, {}, &report);
    ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
    EXPECT_EQ(report.num_small + report.num_medium + report.num_large,
              inst.num_tasks());
    // Winner weight matches the returned solution.
    const Weight w = sol.weight(inst);
    EXPECT_EQ(w, std::max({report.small_weight, report.medium_weight,
                           report.large_weight}));
  }
}

TEST(SolverTest, WithinNineEpsAgainstExactOptimum) {
  Rng rng(223);
  int checked = 0;
  for (int trial = 0; trial < 20 && checked < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    opt.min_capacity = 4;
    opt.max_capacity = 16;
    const PathInstance inst = generate_path_instance(opt, rng);
    const SapExactResult opt_sol = sap_exact_profile_dp(inst);
    ASSERT_TRUE(opt_sol.proven_optimal);
    if (opt_sol.weight == 0) continue;
    ++checked;
    SolverParams params;
    params.eps = 1.0;
    const SapSolution sol = solve_sap(inst, params);
    // Guarantee with eps = 1: 4+eps' small, (1+1)*2 medium, 3 large ->
    // sum bounded by 10ish; assert the paper's headline factor loosely.
    EXPECT_GE(10 * sol.weight(inst), opt_sol.weight) << "trial " << trial;
  }
  EXPECT_GT(checked, 0);
}

TEST(SolverParamsTest, ValidateRejectsBadConfigurations) {
  SolverParams ok;
  EXPECT_NO_THROW(ok.validate());

  SolverParams bad_eps;
  bad_eps.eps = 0.0;
  EXPECT_THROW(bad_eps.validate(), std::invalid_argument);

  SolverParams bad_beta;
  bad_beta.beta = {1, 2};  // beta must be strictly below 1/2
  EXPECT_THROW(bad_beta.validate(), std::invalid_argument);

  SolverParams bad_delta;
  bad_delta.delta = {1, 2};  // must be < 1 - 2*beta = 1/2
  EXPECT_THROW(bad_delta.validate(), std::invalid_argument);

  SolverParams bad_k;
  bad_k.k_large = 1;
  EXPECT_THROW(bad_k.validate(), std::invalid_argument);

  SolverParams bad_mode;
  bad_mode.elevator_mode = 7;
  EXPECT_THROW(bad_mode.validate(), std::invalid_argument);

  // solve_sap enforces validation up front.
  const PathInstance inst({4}, {Task{0, 0, 2, 1}});
  EXPECT_THROW((void)solve_sap(inst, bad_eps), std::invalid_argument);
}

TEST(SolverTest, EmptyInstance) {
  const PathInstance inst({4, 4}, {});
  const SapSolution sol = solve_sap(inst);
  EXPECT_TRUE(sol.empty());
}

TEST(SolverTest, MeasuredRatioReportedAgainstBound) {
  Rng rng(227);
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 20;
  const PathInstance inst = generate_path_instance(opt, rng);
  const SapSolution sol = solve_sap(inst);
  const RatioMeasurement m = measure_ratio(inst, sol);
  EXPECT_GE(m.ratio, 1.0 - 1e-9);
  EXPECT_GE(m.bound, static_cast<double>(m.algo_weight) - 1e-6);
}

}  // namespace
}  // namespace sap
