// Tests for the large-task pipeline (Theorem 3): rectangle reduction, MWIS,
// and the degeneracy/coloring structure of Lemmas 16-17.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/large_tasks.hpp"
#include "src/core/rectangles.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

PathInstance large_instance(Rng& rng, std::int64_t k,
                            std::size_t num_tasks = 14) {
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = num_tasks;
  opt.min_capacity = 6;
  opt.max_capacity = 24;
  opt.demand = DemandClass::kLarge;
  opt.k_large = k;
  return generate_path_instance(opt, rng);
}

/// Exhaustive MWIS reference.
Weight naive_mwis(const std::vector<TaskRect>& rects) {
  Weight best = 0;
  const std::size_t n = rects.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Weight w = 0;
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      if (!(mask >> i & 1)) continue;
      for (std::size_t j = i + 1; j < n && ok; ++j) {
        if ((mask >> j & 1) && rects[i].intersects(rects[j])) ok = false;
      }
      w += rects[i].weight;
    }
    if (ok) best = std::max(best, w);
  }
  return best;
}

TEST(RectanglesTest, AnchoredAtBottleneck) {
  const PathInstance inst({8, 4, 8}, {Task{0, 2, 3, 5}});
  const auto rects = task_rectangles(inst, all_ids(inst));
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0].top, 4);
  EXPECT_EQ(rects[0].bottom, 1);
}

TEST(RectanglesTest, IntersectionNeedsBothAxes) {
  const TaskRect a{0, 0, 2, 0, 4, 1};
  const TaskRect b{1, 1, 3, 4, 8, 1};  // x overlaps, y touches at 4
  const TaskRect c{2, 5, 6, 0, 4, 1};  // y overlaps, x disjoint
  const TaskRect d{3, 2, 4, 3, 5, 1};  // both overlap with a
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.intersects(d));
  EXPECT_TRUE(d.intersects(a));
}

TEST(RectangleMwisTest, MatchesNaiveOnRandomInstances) {
  Rng rng(167);
  for (int trial = 0; trial < 40; ++trial) {
    const PathInstance inst = large_instance(rng, 2, 12);
    const auto rects = task_rectangles(inst, all_ids(inst));
    const RectMwisResult r = rectangle_mwis(rects);
    ASSERT_TRUE(r.proven_optimal);
    // Chosen rectangles are pairwise disjoint.
    for (std::size_t a = 0; a < r.chosen.size(); ++a) {
      for (std::size_t b = a + 1; b < r.chosen.size(); ++b) {
        EXPECT_FALSE(rects[r.chosen[a]].intersects(rects[r.chosen[b]]));
      }
    }
    EXPECT_EQ(r.weight, naive_mwis(rects)) << "trial " << trial;
  }
}

TEST(LargeTasksTest, SolutionFeasibleAtResidualHeights) {
  Rng rng(173);
  for (int trial = 0; trial < 15; ++trial) {
    const PathInstance inst = large_instance(rng, 3);
    SolverParams params;
    const SapSolution sol = solve_large_tasks(inst, all_ids(inst), params);
    ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  }
}

TEST(LargeTasksTest, WithinTwoKMinusOneOfExact) {
  Rng rng(179);
  // k = 1 is vacuous (no task can exceed its own bottleneck), so start at 2.
  for (std::int64_t k : {2, 3, 4}) {
    int checked = 0;
    for (int trial = 0; trial < 10 && checked < 6; ++trial) {
      const PathInstance inst = large_instance(rng, k, 10);
      if (inst.num_tasks() < 3) continue;
      SolverParams params;
      const SapSolution sol = solve_large_tasks(inst, all_ids(inst), params);
      const SapExactResult opt = sap_exact_profile_dp(inst);
      ASSERT_TRUE(opt.proven_optimal);
      if (opt.weight == 0) continue;
      ++checked;
      EXPECT_GE((2 * k - 1) * sol.weight(inst), opt.weight)
          << "k=" << k << " trial " << trial;
    }
    EXPECT_GT(checked, 0) << "k=" << k;
  }
}

TEST(ColoringTest, SolutionRectanglesOfHalfLargeAreTwoDegenerate) {
  // Lemma 17 with k = 2: the rectangles of any feasible 1/2-large SAP
  // solution have degeneracy <= 2k - 2 = 2, hence <= 3 colors.
  Rng rng(181);
  for (int trial = 0; trial < 20; ++trial) {
    const PathInstance inst = large_instance(rng, 2, 10);
    const SapExactResult opt = sap_exact_profile_dp(inst);
    ASSERT_TRUE(opt.proven_optimal);
    // Residual-anchored rectangles of the selected tasks.
    std::vector<TaskId> chosen;
    for (const Placement& p : opt.solution.placements) {
      chosen.push_back(p.task);
    }
    const auto rects = task_rectangles(inst, chosen);
    const ColoringResult coloring = smallest_last_coloring(rects);
    EXPECT_LE(coloring.degeneracy, 2) << "trial " << trial;
    EXPECT_LE(coloring.num_colors, 3) << "trial " << trial;
  }
}

TEST(ColoringTest, NoTrianglesAmongFeasibleHalfLargeRectangles) {
  // Consequence of Lemma 16: three 1/2-large tasks of one feasible solution
  // can never have pairwise-intersecting anchored rectangles.
  Rng rng(191);
  for (int trial = 0; trial < 20; ++trial) {
    const PathInstance inst = large_instance(rng, 2, 10);
    const SapExactResult opt = sap_exact_profile_dp(inst);
    ASSERT_TRUE(opt.proven_optimal);
    std::vector<TaskId> chosen;
    for (const Placement& p : opt.solution.placements) {
      chosen.push_back(p.task);
    }
    const auto rects = task_rectangles(inst, chosen);
    for (std::size_t a = 0; a < rects.size(); ++a) {
      for (std::size_t b = a + 1; b < rects.size(); ++b) {
        for (std::size_t c = b + 1; c < rects.size(); ++c) {
          EXPECT_FALSE(rects[a].intersects(rects[b]) &&
                       rects[b].intersects(rects[c]) &&
                       rects[a].intersects(rects[c]));
        }
      }
    }
  }
}

TEST(ColoringTest, ValidColoring) {
  Rng rng(193);
  const PathInstance inst = large_instance(rng, 3, 16);
  const auto rects = task_rectangles(inst, all_ids(inst));
  const ColoringResult coloring = smallest_last_coloring(rects);
  for (std::size_t a = 0; a < rects.size(); ++a) {
    for (std::size_t b = a + 1; b < rects.size(); ++b) {
      if (rects[a].intersects(rects[b])) {
        EXPECT_NE(coloring.color[a], coloring.color[b]);
      }
    }
  }
  EXPECT_LE(coloring.num_colors, coloring.degeneracy + 1);
}

TEST(RectangleMwisTest, NodeBudgetFallsBackToIncumbent) {
  Rng rng(197);
  const PathInstance inst = large_instance(rng, 3, 18);
  const auto rects = task_rectangles(inst, all_ids(inst));
  const RectMwisResult full = rectangle_mwis(rects);
  const RectMwisResult capped = rectangle_mwis(rects, {8});
  EXPECT_FALSE(capped.proven_optimal);
  EXPECT_LE(capped.weight, full.weight);
}

}  // namespace
}  // namespace sap
