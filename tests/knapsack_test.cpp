// Unit tests for the knapsack substrate (exact DPs, FPTAS, greedy).
#include <gtest/gtest.h>

#include <numeric>

#include "src/knapsack/knapsack.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

Weight chosen_profit(std::span<const KnapsackItem> items,
                     const KnapsackResult& r) {
  Weight p = 0;
  for (std::size_t i : r.chosen) p += items[i].profit;
  return p;
}

Value chosen_size(std::span<const KnapsackItem> items,
                  const KnapsackResult& r) {
  Value s = 0;
  for (std::size_t i : r.chosen) s += items[i].size;
  return s;
}

TEST(KnapsackTest, ExactByCapacityKnownInstance) {
  const std::vector<KnapsackItem> items{{3, 4}, {4, 5}, {2, 3}};
  const KnapsackResult r = knapsack_exact_by_capacity(items, 6);
  EXPECT_EQ(r.profit, 8);  // {4,5}? 3+4=7 <= ... sizes 3+2=5 profits 4+3=7; 4+2=6 profits 5+3=8
  EXPECT_EQ(chosen_profit(items, r), r.profit);
  EXPECT_LE(chosen_size(items, r), 6);
}

TEST(KnapsackTest, ExactMethodsAgreeOnRandomInstances) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<KnapsackItem> items(n);
    for (auto& item : items) {
      item.size = rng.uniform_int(1, 15);
      item.profit = rng.uniform_int(0, 20);
    }
    const Value cap = rng.uniform_int(0, 40);
    const KnapsackResult by_cap = knapsack_exact_by_capacity(items, cap);
    const KnapsackResult by_weight = knapsack_exact_by_weight(items, cap);
    EXPECT_EQ(by_cap.profit, by_weight.profit) << "trial " << trial;
    EXPECT_LE(chosen_size(items, by_cap), cap);
    EXPECT_LE(chosen_size(items, by_weight), cap);
    EXPECT_EQ(chosen_profit(items, by_cap), by_cap.profit);
    EXPECT_EQ(chosen_profit(items, by_weight), by_weight.profit);
  }
}

TEST(KnapsackTest, FptasWithinEpsilonOfExact) {
  Rng rng(43);
  for (double eps : {0.5, 0.2, 0.05}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 14));
      std::vector<KnapsackItem> items(n);
      for (auto& item : items) {
        item.size = rng.uniform_int(1, 30);
        item.profit = rng.uniform_int(1, 1000);
      }
      const Value cap = rng.uniform_int(5, 80);
      const KnapsackResult exact = knapsack_exact_by_capacity(items, cap);
      const KnapsackResult approx = knapsack_fptas(items, cap, eps);
      EXPECT_LE(chosen_size(items, approx), cap);
      EXPECT_GE(static_cast<double>(approx.profit) + 1e-9,
                (1.0 - eps) * static_cast<double>(exact.profit))
          << "eps " << eps << " trial " << trial;
    }
  }
}

TEST(KnapsackTest, GreedyIsHalfApproximate) {
  Rng rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<KnapsackItem> items(n);
    for (auto& item : items) {
      item.size = rng.uniform_int(1, 20);
      item.profit = rng.uniform_int(1, 50);
    }
    const Value cap = rng.uniform_int(1, 60);
    const KnapsackResult exact = knapsack_exact_by_capacity(items, cap);
    const KnapsackResult greedy = knapsack_greedy(items, cap);
    EXPECT_LE(chosen_size(items, greedy), cap);
    EXPECT_GE(2 * greedy.profit, exact.profit);
  }
}

TEST(KnapsackTest, EmptyAndDegenerateInputs) {
  const std::vector<KnapsackItem> none;
  EXPECT_EQ(knapsack_exact_by_capacity(none, 10).profit, 0);
  EXPECT_EQ(knapsack_exact_by_weight(none, 10).profit, 0);
  EXPECT_EQ(knapsack_greedy(none, 10).profit, 0);

  const std::vector<KnapsackItem> big{{100, 7}};
  EXPECT_EQ(knapsack_exact_by_capacity(big, 10).profit, 0);
  EXPECT_TRUE(knapsack_exact_by_capacity(big, 10).chosen.empty());
}

TEST(KnapsackTest, RejectsInvalidInput) {
  const std::vector<KnapsackItem> bad{{0, 5}};
  EXPECT_THROW(knapsack_exact_by_capacity(bad, 10), std::invalid_argument);
  EXPECT_THROW(knapsack_exact_by_capacity(bad, -1), std::invalid_argument);
  const std::vector<KnapsackItem> ok{{1, 1}};
  EXPECT_THROW(knapsack_fptas(ok, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(knapsack_fptas(ok, 10, 1.0), std::invalid_argument);
}

TEST(KnapsackTest, ZeroProfitItemsAreNeverNeeded) {
  const std::vector<KnapsackItem> items{{2, 0}, {3, 9}};
  const KnapsackResult r = knapsack_exact_by_weight(items, 5);
  EXPECT_EQ(r.profit, 9);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 1u);
}

}  // namespace
}  // namespace sap
