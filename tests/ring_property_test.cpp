// Parameterized property sweep for the ring pipeline: feasibility across
// ring sizes, capacity spreads and seeds, plus structural checks on the
// reduction (routes avoiding the cut edge, knapsack stack shape).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/ring_solver.hpp"
#include "src/gen/generators.hpp"

namespace sap {
namespace {

struct RingCase {
  std::size_t edges;
  std::size_t tasks;
  Value cap_lo;
  Value cap_hi;
  std::uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<RingCase>& info) {
  return "m" + std::to_string(info.param.edges) + "n" +
         std::to_string(info.param.tasks) + "c" +
         std::to_string(info.param.cap_lo) + "to" +
         std::to_string(info.param.cap_hi) + "s" +
         std::to_string(info.param.seed);
}

class RingPropertyTest : public testing::TestWithParam<RingCase> {};

TEST_P(RingPropertyTest, SolverOutputFeasibleAndConsistent) {
  const RingCase& param = GetParam();
  Rng rng(param.seed * 4099 + 11);
  RingGenOptions opt;
  opt.num_edges = param.edges;
  opt.num_tasks = param.tasks;
  opt.min_capacity = param.cap_lo;
  opt.max_capacity = param.cap_hi;
  const RingInstance ring = generate_ring_instance(opt, rng);

  RingSolveReport report;
  const RingSapSolution sol = solve_ring_sap(ring, {}, &report);
  ASSERT_TRUE(verify_ring_sap(ring, sol))
      << verify_ring_sap(ring, sol).reason;

  // The cut edge really is a minimum-capacity edge.
  for (std::size_t e = 0; e < ring.num_edges(); ++e) {
    EXPECT_GE(ring.capacity(static_cast<EdgeId>(e)),
              ring.capacity(report.cut_edge));
  }

  if (report.winner == RingBranch::kPath) {
    // No selected route may use the cut edge.
    for (const RingPlacement& p : sol.placements) {
      const auto route = ring.route_edges(p.task, p.clockwise);
      EXPECT_EQ(std::ranges::find(route, report.cut_edge), route.end());
    }
  } else {
    // Through-cut branch: every route uses the cut edge and the stack is
    // gap-free from 0 (the knapsack packing).
    std::vector<std::pair<Value, Value>> spans;
    for (const RingPlacement& p : sol.placements) {
      const auto route = ring.route_edges(p.task, p.clockwise);
      EXPECT_NE(std::ranges::find(route, report.cut_edge), route.end());
      spans.emplace_back(p.height,
                         p.height + ring.task(p.task).demand);
    }
    std::ranges::sort(spans);
    Value expected = 0;
    for (const auto& [bottom, top] : spans) {
      EXPECT_EQ(bottom, expected);
      expected = top;
    }
    EXPECT_LE(expected, ring.capacity(report.cut_edge));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RingPropertyTest,
    testing::ValuesIn([] {
      std::vector<RingCase> cases;
      for (std::size_t edges : {4u, 8u, 16u}) {
        for (std::size_t tasks : {6u, 18u}) {
          for (auto [lo, hi] : {std::pair<Value, Value>{8, 8},
                                std::pair<Value, Value>{4, 32}}) {
            for (std::uint64_t seed : {1ULL, 2ULL}) {
              cases.push_back({edges, tasks, lo, hi, seed});
            }
          }
        }
      }
      return cases;
    }()),
    CaseName);

}  // namespace
}  // namespace sap
