// Unit tests for the UFPP algorithms: interval MWIS, local ratio, the
// Appendix Strip algorithm, LP rounding, and exact branch-and-bound.
#include <gtest/gtest.h>

#include <numeric>

#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/ufpp/local_ratio.hpp"
#include "src/ufpp/lp_rounding.hpp"
#include "src/ufpp/strip_local_ratio.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

/// Exhaustive interval-MWIS reference for tiny inputs.
Weight naive_interval_mwis(const PathInstance& inst,
                           std::span<const TaskId> subset) {
  Weight best = 0;
  const std::size_t n = subset.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Weight w = 0;
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      if (!(mask >> i & 1)) continue;
      for (std::size_t k = i + 1; k < n && ok; ++k) {
        if ((mask >> k & 1) &&
            inst.task(subset[i]).overlaps(inst.task(subset[k]))) {
          ok = false;
        }
      }
      w += inst.task(subset[i]).weight;
    }
    if (ok) best = std::max(best, w);
  }
  return best;
}

TEST(IntervalMwisTest, MatchesNaiveOnRandomInstances) {
  Rng rng(67);
  for (int trial = 0; trial < 40; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    const PathInstance inst = generate_path_instance(opt, rng);
    const auto ids = all_ids(inst);
    const UfppSolution sol = interval_mwis(inst, ids);
    // Result is an independent set in the interval graph.
    for (std::size_t a = 0; a < sol.tasks.size(); ++a) {
      for (std::size_t b = a + 1; b < sol.tasks.size(); ++b) {
        EXPECT_FALSE(
            inst.task(sol.tasks[a]).overlaps(inst.task(sol.tasks[b])));
      }
    }
    EXPECT_EQ(sol.weight(inst), naive_interval_mwis(inst, ids));
  }
}

TEST(UniformLocalRatioTest, FeasibleAndThreeApproximate) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    opt.profile = CapacityProfile::kUniform;
    opt.min_capacity = 8;
    opt.max_capacity = 16;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppSolution sol = ufpp_uniform_local_ratio(inst);
    ASSERT_TRUE(verify_ufpp(inst, sol)) << verify_ufpp(inst, sol).reason;
    const UfppExactResult exact = ufpp_exact(inst);
    ASSERT_TRUE(exact.proven_optimal);
    // Wide tasks are solved exactly and the narrow local-ratio pass is
    // 3-approximate under our simplified weight decomposition, so the
    // best-of combination is 4-approximate (Lemma 3); Bar-Noy et al.'s
    // finer decomposition achieves 3.
    EXPECT_GE(4 * sol.weight(inst), exact.weight) << "trial " << trial;
  }
}

TEST(UniformLocalRatioTest, RejectsNonUniformCapacities) {
  const PathInstance inst({4, 8}, {Task{0, 0, 1, 1}});
  EXPECT_THROW(ufpp_uniform_local_ratio(inst), std::invalid_argument);
}

TEST(StripLocalRatioTest, HalfBPackable) {
  Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 12;
    opt.num_tasks = 40;
    opt.min_capacity = 32;
    opt.max_capacity = 63;  // all bottlenecks within [32, 64)
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 8};
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppSolution sol = ufpp_strip_local_ratio(inst, all_ids(inst), 32);
    // Load at most B/2 = 16 on every edge.
    EXPECT_TRUE(verify_ufpp_packable(inst, sol, 16))
        << verify_ufpp_packable(inst, sol, 16).reason;
  }
}

TEST(StripLocalRatioTest, FiveApproximateAgainstExactUfpp) {
  Rng rng(79);
  for (int trial = 0; trial < 15; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 14;
    opt.min_capacity = 32;
    opt.max_capacity = 63;
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 8};
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppSolution sol = ufpp_strip_local_ratio(inst, all_ids(inst), 32);
    const UfppExactResult exact = ufpp_exact(inst);
    ASSERT_TRUE(exact.proven_optimal);
    // OPT_SAP <= OPT_UFPP, so 5/(1-4*delta)-approximation w.r.t. OPT_SAP is
    // implied by checking against OPT_UFPP with the same factor: with
    // delta = 1/8, 5/(1-0.5) = 10.
    EXPECT_GE(10 * sol.weight(inst), exact.weight);
  }
}

TEST(LpRoundingTest, HalfBPackableAndCompetitive) {
  Rng rng(83);
  Rng rounding_rng(85);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 30;
    opt.min_capacity = 32;
    opt.max_capacity = 63;
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 8};
    const PathInstance inst = generate_path_instance(opt, rng);
    const LpRoundingResult r = ufpp_lp_rounding_half_b(
        inst, all_ids(inst), 32, {0.2, 8}, rounding_rng);
    EXPECT_TRUE(verify_ufpp_packable(inst, r.solution, 16));
    // The rounded solution should not collapse: at least 40% of the scaled
    // LP target (the repair pass usually gets far above it).
    if (r.scaled_lp > 0) {
      EXPECT_GE(static_cast<double>(r.solution.weight(inst)),
                0.4 * r.scaled_lp)
          << "trial " << trial;
    }
  }
}

TEST(UfppExactTest, MatchesBruteForceOnTinyInstances) {
  Rng rng(89);
  for (int trial = 0; trial < 30; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 6;
    opt.num_tasks = 10;
    opt.min_capacity = 4;
    opt.max_capacity = 12;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppExactResult bb = ufpp_exact(inst);
    ASSERT_TRUE(bb.proven_optimal);
    ASSERT_TRUE(verify_ufpp(inst, bb.solution));
    // Brute force over all subsets.
    Weight best = 0;
    const std::size_t n = inst.num_tasks();
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      UfppSolution s;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask >> i & 1) s.tasks.push_back(static_cast<TaskId>(i));
      }
      if (verify_ufpp(inst, s)) best = std::max(best, s.weight(inst));
    }
    EXPECT_EQ(bb.weight, best) << "trial " << trial;
  }
}

TEST(UfppExactTest, LpBoundTogglesDoNotChangeResult) {
  Rng rng(97);
  PathGenOptions opt;
  opt.num_edges = 8;
  opt.num_tasks = 14;
  const PathInstance inst = generate_path_instance(opt, rng);
  UfppExactOptions with_lp;
  UfppExactOptions without_lp;
  without_lp.use_lp_bound = false;
  const UfppExactResult a = ufpp_exact(inst, with_lp);
  const UfppExactResult b = ufpp_exact(inst, without_lp);
  ASSERT_TRUE(a.proven_optimal);
  ASSERT_TRUE(b.proven_optimal);
  EXPECT_EQ(a.weight, b.weight);
}

}  // namespace
}  // namespace sap
