// Golden byte-identical regression corpus.
//
// Every case pins a seeded instance (an E6-grid slice plus adversarial and
// paper constructions), runs the full solver (and, where marked, the
// certification ladder), and serializes instance + solution + stage report +
// certificate into one deterministic text blob. The blobs are checked in
// under tests/golden/ and the test fails on ANY byte difference — this is
// the lock that proves substrate refactors (arena allocation, flat
// tableaus, pricing rewires) change nothing observable.
//
// Regenerating fixtures (only when an *intentional* behavior change lands):
//   SAPKIT_GOLDEN_REGEN=1 ./golden_test
// rewrites every fixture in the source tree; review the diff like code.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cert/certify.hpp"
#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/gen/hardness.hpp"
#include "src/gen/paper_instances.hpp"
#include "src/harness/batch_runner.hpp"
#include "src/io/instance_io.hpp"

#ifndef SAPKIT_GOLDEN_DIR
#error "SAPKIT_GOLDEN_DIR must point at the checked-in fixture directory"
#endif

namespace sap {
namespace {

const char* winner_name(SolverBranch winner) {
  switch (winner) {
    case SolverBranch::kSmall:
      return "small";
    case SolverBranch::kMedium:
      return "medium";
    case SolverBranch::kLarge:
      return "large";
  }
  return "?";
}

/// One corpus entry: a name (also the fixture file name), the instance, the
/// solver configuration, and whether the certification ladder runs too.
struct GoldenCase {
  std::string name;
  PathInstance instance;
  SolverParams params;
  bool certify = false;
};

PathInstance e6_instance(CapacityProfile profile, std::size_t n) {
  // Matches the bench_service / bench_full_solver E6 grid (seed index 0).
  Rng rng(batch_case_seed(5000 + n, 0));
  PathGenOptions gen;
  gen.num_edges = 12;
  gen.num_tasks = n;
  gen.profile = profile;
  gen.min_capacity = 8;
  gen.max_capacity = 48;
  gen.demand = DemandClass::kMixed;
  return generate_path_instance(gen, rng);
}

std::vector<GoldenCase> build_path_corpus() {
  std::vector<GoldenCase> corpus;
  const std::pair<CapacityProfile, const char*> profiles[] = {
      {CapacityProfile::kUniform, "uniform"},
      {CapacityProfile::kValley, "valley"},
      {CapacityProfile::kMountain, "mountain"},
      {CapacityProfile::kStaircase, "staircase"},
      {CapacityProfile::kRandomWalk, "walk"},
  };
  // The E6 grid slice: every profile at every size; certificates on the
  // small instances where the exact rungs stay cheap.
  for (const auto& [profile, name] : profiles) {
    for (const std::size_t n : {12u, 24u, 48u}) {
      GoldenCase c{std::string("e6_") + name + "_n" + std::to_string(n),
                   e6_instance(profile, n),
                   {},
                   /*certify=*/n == 12};
      corpus.push_back(std::move(c));
    }
  }

  // The LP-rounding small-task backend (exercises the simplex + randomized
  // rounding path that the default local-ratio backend skips).
  for (const auto* name : {"uniform", "valley"}) {
    const CapacityProfile profile = std::string(name) == "uniform"
                                        ? CapacityProfile::kUniform
                                        : CapacityProfile::kValley;
    GoldenCase c{std::string("lp_rounding_") + name + "_n24",
                 e6_instance(profile, 24),
                 {},
                 /*certify=*/false};
    c.params.small_backend = SmallTaskBackend::kLpRounding;
    corpus.push_back(std::move(c));
  }

  // Adversarial: the NP-hardness gadget, packable and unpackable.
  {
    const Value sizes_yes[] = {3, 3, 2, 2, 1, 1};
    corpus.push_back({"gadget_two_bin_packable",
                      two_bin_packing_gadget(sizes_yes, 6).instance,
                      {},
                      /*certify=*/true});
    const Value sizes_no[] = {5, 5, 5, 1};
    corpus.push_back({"gadget_two_bin_unpackable",
                      two_bin_packing_gadget(sizes_no, 8).instance,
                      {},
                      /*certify=*/true});
  }

  // Paper constructions: the UFPP-vs-SAP gap and the odd-cycle witness.
  corpus.push_back({"paper_fig1b", fig1b_instance(), {}, /*certify=*/true});
  corpus.push_back(
      {"paper_fig8", fig8_instance().instance, {}, /*certify=*/true});

  // Tall capacities: drives the medium stage into the grounded-heights
  // heuristic (capacities above medium_exact_capacity_limit).
  {
    Rng rng(batch_case_seed(9100, 0));
    PathGenOptions gen;
    gen.num_edges = 10;
    gen.num_tasks = 20;
    gen.min_capacity = 1 << 16;
    gen.max_capacity = 1 << 18;
    gen.demand = DemandClass::kMixed;
    corpus.push_back({"tall_capacities_n20",
                      generate_path_instance(gen, rng),
                      {},
                      /*certify=*/true});
  }

  // Area-weighted staircase: weights correlated with demand * span bias the
  // winner toward large/medium branches.
  {
    Rng rng(batch_case_seed(9200, 0));
    PathGenOptions gen;
    gen.num_edges = 12;
    gen.num_tasks = 24;
    gen.profile = CapacityProfile::kStaircase;
    gen.min_capacity = 8;
    gen.max_capacity = 48;
    gen.weight_by_area = true;
    corpus.push_back({"staircase_area_weighted_n24",
                      generate_path_instance(gen, rng),
                      {},
                      /*certify=*/false});
  }
  return corpus;
}

std::string render_path_case(const GoldenCase& c) {
  std::ostringstream os;
  os << "sap-golden v1\n";
  os << "case " << c.name << "\n";
  os << "-- instance\n";
  write_path_instance(os, c.instance);
  SolveReport report;
  const SapSolution sol = solve_sap(c.instance, c.params, &report);
  os << "-- solution\n";
  write_sap_solution(os, sol);
  os << "-- weights small " << report.small_weight << " medium "
     << report.medium_weight << " large " << report.large_weight
     << " winner " << winner_name(report.winner) << "\n";
  if (c.certify) {
    const cert::CertifyOutcome outcome = cert::certify_solution(c.instance, sol);
    os << "-- certificate feasible " << (outcome.feasible ? 1 : 0)
       << " certified " << (outcome.certified ? 1 : 0) << "\n";
    if (outcome.certified) write_certificate(os, outcome.cert);
  }
  os << "end-golden\n";
  return os.str();
}

struct RingGoldenCase {
  std::string name;
  RingInstance instance;
  bool certify = false;
};

std::vector<RingGoldenCase> build_ring_corpus() {
  std::vector<RingGoldenCase> corpus;
  for (const std::size_t n : {16u, 24u}) {
    Rng rng(batch_case_seed(9300 + n, 0));
    RingGenOptions gen;
    gen.num_edges = 10;
    gen.num_tasks = n;
    gen.min_capacity = 8;
    gen.max_capacity = 32;
    corpus.push_back({"ring_n" + std::to_string(n),
                      generate_ring_instance(gen, rng),
                      /*certify=*/true});
  }
  return corpus;
}

std::string render_ring_case(const RingGoldenCase& c) {
  std::ostringstream os;
  os << "sap-golden v1\n";
  os << "case " << c.name << "\n";
  os << "-- instance\n";
  write_ring_instance(os, c.instance);
  RingSolveReport report;
  const RingSapSolution sol = solve_ring_sap(c.instance, {}, &report);
  os << "-- solution\n";
  write_ring_solution(os, sol);
  os << "-- ring-report cut " << report.cut_edge << " path "
     << report.path_weight << " knapsack " << report.knapsack_weight
     << " winner "
     << (report.winner == RingBranch::kPath ? "path" : "through-cut") << "\n";
  if (c.certify) {
    const cert::CertifyOutcome outcome = cert::certify_solution(c.instance, sol);
    os << "-- certificate feasible " << (outcome.feasible ? 1 : 0)
       << " certified " << (outcome.certified ? 1 : 0) << "\n";
    if (outcome.certified) write_certificate(os, outcome.cert);
  }
  os << "end-golden\n";
  return os.str();
}

bool regen_requested() {
  const char* env = std::getenv("SAPKIT_GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string fixture_path(const std::string& name) {
  return std::string(SAPKIT_GOLDEN_DIR) + "/" + name + ".txt";
}

/// Compares `rendered` against the checked-in fixture byte for byte; under
/// SAPKIT_GOLDEN_REGEN the fixture is rewritten instead. The failure message
/// pinpoints the first differing line so a diff is readable without tooling.
void check_against_fixture(const std::string& name,
                           const std::string& rendered) {
  SCOPED_TRACE(name);
  const std::string path = fixture_path(name);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
    out << rendered;
    ASSERT_TRUE(out.good()) << "short write on fixture " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with SAPKIT_GOLDEN_REGEN=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == rendered) return;

  // Byte difference: report the first differing line, then fail hard.
  std::istringstream a(expected);
  std::istringstream b(rendered);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) break;
    if (!ga || !gb || la != lb) {
      FAIL() << "golden mismatch in " << name << " at line " << line
             << "\n  fixture:  " << (ga ? la : std::string("<eof>"))
             << "\n  rendered: " << (gb ? lb : std::string("<eof>"));
    }
  }
  FAIL() << "golden mismatch in " << name
         << " (same lines, different bytes — check trailing whitespace)";
}

TEST(GoldenCorpusTest, PathCasesAreByteIdentical) {
  for (const GoldenCase& c : build_path_corpus()) {
    check_against_fixture(c.name, render_path_case(c));
  }
}

TEST(GoldenCorpusTest, RingCasesAreByteIdentical) {
  for (const RingGoldenCase& c : build_ring_corpus()) {
    check_against_fixture(c.name, render_ring_case(c));
  }
}

// The corpus is only a lock if reruns are reproducible within one binary:
// a second render of a case must equal the first (catches hidden global
// state — static caches, leaked RNG state — that would make the fixture
// comparison flaky rather than meaningful).
TEST(GoldenCorpusTest, RenderingIsReproducibleWithinProcess) {
  const std::vector<GoldenCase> corpus = build_path_corpus();
  const GoldenCase& probe = corpus.front();
  EXPECT_EQ(render_path_case(probe), render_path_case(probe));
}

}  // namespace
}  // namespace sap
