// Parameterized sweeps over every DSA engine configuration: all engines
// must place every task disjointly, and their makespans obey the LOAD lower
// bound and sane upper envelopes on small-task workloads.
#include <gtest/gtest.h>

#include <numeric>

#include "src/dsa/dsa.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

struct DsaCase {
  DsaOrder order;
  DsaFit fit;
  CapacityProfile profile;
  std::uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<DsaCase>& info) {
  static const char* orders[] = {"Left", "Demand", "Span"};
  static const char* fits[] = {"First", "Best"};
  static const char* profiles[] = {"Uniform", "Valley", "Mountain",
                                   "Staircase", "Walk"};
  return std::string(orders[static_cast<int>(info.param.order)]) +
         fits[static_cast<int>(info.param.fit)] +
         profiles[static_cast<int>(info.param.profile)] +
         std::to_string(info.param.seed);
}

class DsaEngineTest : public testing::TestWithParam<DsaCase> {};

TEST_P(DsaEngineTest, PlacesAllTasksWithinSaneMakespan) {
  Rng rng(GetParam().seed * 6151 + 7);
  PathGenOptions opt;
  opt.num_edges = 14;
  opt.num_tasks = 40;
  opt.profile = GetParam().profile;
  opt.min_capacity = 32;
  opt.max_capacity = 64;
  opt.demand = DemandClass::kSmall;
  opt.delta = {1, 8};
  const PathInstance inst = generate_path_instance(opt, rng);
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});

  const DsaResult r =
      dsa_pack(inst, ids, {GetParam().order, GetParam().fit});
  ASSERT_EQ(r.solution.size(), inst.num_tasks());
  EXPECT_TRUE(verify_sap_packable(inst, r.solution, r.makespan));
  EXPECT_GE(r.makespan, r.load);
  // Small-task first/best fit stays well under the trivial stacking bound.
  Value total = 0;
  for (TaskId j : ids) total += inst.task(j).demand;
  EXPECT_LT(r.makespan, total);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DsaEngineTest,
    testing::ValuesIn([] {
      std::vector<DsaCase> cases;
      for (DsaOrder order :
           {DsaOrder::kByLeftEndpoint, DsaOrder::kByDemandDecreasing,
            DsaOrder::kBySpanDecreasing}) {
        for (DsaFit fit : {DsaFit::kFirstFit, DsaFit::kBestFit}) {
          for (CapacityProfile profile :
               {CapacityProfile::kUniform, CapacityProfile::kValley,
                CapacityProfile::kRandomWalk}) {
            for (std::uint64_t seed : {1ULL, 2ULL}) {
              cases.push_back({order, fit, profile, seed});
            }
          }
        }
      }
      return cases;
    }()),
    CaseName);

class RoundedEngineTest : public testing::TestWithParam<int> {};

TEST_P(RoundedEngineTest, ShelfInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  PathGenOptions opt;
  opt.num_edges = 12;
  opt.num_tasks = 30;
  opt.min_capacity = 16;
  opt.max_capacity = 64;
  const PathInstance inst = generate_path_instance(opt, rng);
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  const DsaResult r = dsa_pack_rounded(inst, ids);
  ASSERT_EQ(r.solution.size(), inst.num_tasks());
  EXPECT_TRUE(verify_sap_packable(inst, r.solution, r.makespan));
  // Rounding at most doubles each demand, and per class the coloring is
  // optimal, so the makespan is at most sum over classes of
  // 2^cls * omega_cls <= 2 * sum of per-class LOADs. A crude but useful
  // envelope: makespan <= 2 * (number of classes) * LOAD.
  Value max_demand = 0;
  for (TaskId j : ids) max_demand = std::max(max_demand, inst.task(j).demand);
  int classes = 0;
  for (Value d = 1; d < 2 * max_demand; d *= 2) ++classes;
  EXPECT_LE(r.makespan, 2 * classes * r.load);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundedEngineTest, testing::Range(1, 9));

}  // namespace
}  // namespace sap
