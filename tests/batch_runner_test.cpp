// Tests for the parallel batch-solve harness: deterministic aggregate
// reports across thread counts, per-instance seeding, exception propagation
// from a poisoned instance, and the empty-sweep edge case.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/harness/batch_runner.hpp"

namespace sap {
namespace {

PathBatchConfig tiny_path_config() {
  PathBatchConfig config;
  config.gen.num_edges = 6;
  config.gen.num_tasks = 8;
  config.gen.min_capacity = 4;
  config.gen.max_capacity = 12;
  return config;
}

std::string deterministic_json(const BatchReport& report) {
  std::ostringstream os;
  BatchJsonOptions options;
  options.include_timings = false;
  options.include_cases = true;
  write_batch_json(os, report, options);
  return os.str();
}

TEST(BatchRunnerTest, CaseSeedIsBaseXorIndex) {
  EXPECT_EQ(batch_case_seed(0, 5), 5u);
  EXPECT_EQ(batch_case_seed(0xFF, 0x0F), 0xF0u);
  ThreadPool pool(2);
  BatchOptions options;
  options.num_instances = 9;
  options.base_seed = 1234;
  std::vector<std::uint64_t> seeds(options.num_instances);
  const BatchReport report = run_batch(
      options,
      [&](std::size_t index, std::uint64_t seed) {
        seeds[index] = seed;
        return BatchCase{};
      },
      pool);
  EXPECT_EQ(report.num_instances, 9u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], 1234u ^ i);
  }
}

TEST(BatchRunnerTest, AggregateReportIdenticalAcrossThreadCounts) {
  BatchOptions options;
  options.num_instances = 10;
  options.base_seed = 77;
  const BatchCaseFn fn = make_path_batch_case(tiny_path_config());

  std::vector<std::string> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    reports.push_back(deterministic_json(run_batch(options, fn, pool)));
  }
  EXPECT_FALSE(reports[0].empty());
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  // And re-running on the same pool size reproduces the report exactly.
  ThreadPool pool(2);
  EXPECT_EQ(reports[0], deterministic_json(run_batch(options, fn, pool)));
}

TEST(BatchRunnerTest, DifferentBaseSeedChangesTheSweep) {
  const BatchCaseFn fn = make_path_batch_case(tiny_path_config());
  ThreadPool pool(2);
  BatchOptions options;
  options.num_instances = 10;
  options.base_seed = 77;
  const std::string a = deterministic_json(run_batch(options, fn, pool));
  options.base_seed = 78;
  const std::string b = deterministic_json(run_batch(options, fn, pool));
  EXPECT_NE(a, b);
}

TEST(BatchRunnerTest, PathSweepSolvesAndBoundsEveryInstance) {
  ThreadPool pool(4);
  BatchOptions options;
  options.num_instances = 12;
  options.base_seed = 5;
  const BatchReport report =
      run_batch(options, make_path_batch_case(tiny_path_config()), pool);
  EXPECT_EQ(report.solved, 12u);
  EXPECT_EQ(report.cases.size(), 12u);
  ASSERT_GT(report.ratio.count(), 0u);
  // The bound is an upper bound on OPT >= ALG, so every ratio is >= 1.
  EXPECT_GE(report.ratio.min(), 1.0);
  EXPECT_GE(report.ratio_p95, report.ratio_p50);
  // Tiny instances stay within the exact-oracle budget.
  EXPECT_EQ(report.bound_exact, 12u);
  // Telemetry reached the aggregate: one solve per instance.
  EXPECT_EQ(report.telemetry.timer("sap.solve").count, 12);
}

TEST(BatchRunnerTest, RingSweepSolvesEveryInstance) {
  RingBatchConfig config;
  config.gen.num_edges = 6;
  config.gen.num_tasks = 8;
  config.gen.min_capacity = 4;
  config.gen.max_capacity = 12;
  ThreadPool pool(2);
  BatchOptions options;
  options.num_instances = 6;
  options.base_seed = 11;
  const BatchReport report =
      run_batch(options, make_ring_batch_case(config), pool);
  EXPECT_EQ(report.solved, 6u);
  EXPECT_EQ(report.telemetry.count("ring.winner.path") +
                report.telemetry.count("ring.winner.cut"),
            6);
  EXPECT_GE(report.ratio.min(), 1.0);
}

TEST(BatchRunnerTest, RoundSweepSolvesEveryInstanceOnBothKinds) {
  // Round solves run concurrently across the pool (thread arenas, the DSA
  // slab arm, the SAP-probe oracle), so this doubles as the TSan coverage
  // for src/round.
  for (const round::RoundKind kind :
       {round::RoundKind::kUfp, round::RoundKind::kSap}) {
    RoundBatchConfig config;
    config.gen.base.num_edges = 5;
    config.gen.base.num_tasks = 7;
    config.kind = kind;
    ThreadPool pool(4);
    BatchOptions options;
    options.num_instances = 8;
    options.base_seed = 21;
    const BatchReport report =
        run_batch(options, make_round_batch_case(config), pool);
    EXPECT_EQ(report.solved, 8u);
    EXPECT_GE(report.ratio.min(), 1.0);
  }
}

TEST(BatchRunnerTest, PoisonedInstancePropagatesException) {
  ThreadPool pool(4);
  BatchOptions options;
  options.num_instances = 16;
  options.base_seed = 3;
  const BatchCaseFn poisoned = [](std::size_t index, std::uint64_t) {
    if (index == 7) throw std::runtime_error("poisoned instance");
    return BatchCase{};
  };
  EXPECT_THROW((void)run_batch(options, poisoned, pool), std::runtime_error);
  // The pool survives a poisoned sweep and runs the next one.
  std::atomic<int> ran{0};
  const BatchCaseFn counting = [&](std::size_t, std::uint64_t) {
    ran.fetch_add(1);
    return BatchCase{};
  };
  const BatchReport report = run_batch(options, counting, pool);
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(report.num_instances, 16u);
}

TEST(BatchRunnerTest, EmptySweepProducesValidReport) {
  ThreadPool pool(2);
  BatchOptions options;
  options.num_instances = 0;
  options.base_seed = 9;
  const BatchCaseFn must_not_run = [](std::size_t, std::uint64_t) -> BatchCase {
    ADD_FAILURE() << "case fn called on an empty sweep";
    return {};
  };
  const BatchReport report = run_batch(options, must_not_run, pool);
  EXPECT_EQ(report.num_instances, 0u);
  EXPECT_EQ(report.solved, 0u);
  EXPECT_EQ(report.ratio.count(), 0u);
  EXPECT_TRUE(report.telemetry.empty());

  // The JSON writer handles the empty aggregate (NaN percentiles -> null)
  // and stays deterministic.
  const std::string json = deterministic_json(report);
  EXPECT_NE(json.find("\"instances\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  ThreadPool other(8);
  EXPECT_EQ(json, deterministic_json(run_batch(options, must_not_run, other)));
}

TEST(BatchRunnerTest, TelemetryCollectionCanBeDisabled) {
  ThreadPool pool(2);
  BatchOptions options;
  options.num_instances = 4;
  options.base_seed = 21;
  options.collect_telemetry = false;
  const BatchReport report =
      run_batch(options, make_path_batch_case(tiny_path_config()), pool);
  EXPECT_EQ(report.solved, 4u);
  EXPECT_TRUE(report.telemetry.empty());
}

TEST(BatchRunnerTest, InterruptedSweepResumesToIdenticalReport) {
  constexpr std::size_t kInstances = 16;
  constexpr std::size_t kKillAfter = 6;
  const BatchCaseFn fn = make_path_batch_case(tiny_path_config());

  BatchOptions options;
  options.num_instances = kInstances;
  options.base_seed = 404;

  // Reference: one uninterrupted sweep.
  ThreadPool pool(2);
  const std::string expected =
      deterministic_json(run_batch(options, fn, pool));

  // Interrupted sweep: after kKillAfter cases complete, every further case
  // dies (simulating a killed process mid-sweep). Completed cases persist
  // in the resume store.
  BatchResumeStore store;
  BatchOptions resumable = options;
  store.attach(resumable);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      (void)run_batch(
          resumable,
          [&](std::size_t index, std::uint64_t seed) {
            if (completed.load() >= kKillAfter) {
              throw std::runtime_error("simulated kill");
            }
            BatchCase c = fn(index, seed);
            ++completed;
            return c;
          },
          pool),
      std::runtime_error);
  ASSERT_GT(store.size(), 0u);
  ASSERT_LT(store.size(), kInstances);
  const std::size_t already_done = store.size();

  // Resume: the second run recomputes only the missing cases, and the
  // aggregate (counters-only JSON, including per-case records) is
  // byte-identical to the uninterrupted reference.
  std::atomic<std::size_t> recomputed{0};
  const BatchReport resumed = run_batch(
      resumable,
      [&](std::size_t index, std::uint64_t seed) {
        ++recomputed;
        return fn(index, seed);
      },
      pool);
  EXPECT_EQ(recomputed.load(), kInstances - already_done);
  EXPECT_EQ(deterministic_json(resumed), expected);
  EXPECT_EQ(store.size(), kInstances);  // the resumed run checkpointed too
}

TEST(BatchRunnerTest, ResumeStoreSurvivesRepeatedInterruptions) {
  constexpr std::size_t kInstances = 12;
  const BatchCaseFn fn = make_path_batch_case(tiny_path_config());

  BatchOptions options;
  options.num_instances = kInstances;
  options.base_seed = 77;
  ThreadPool pool(1);
  const std::string expected =
      deterministic_json(run_batch(options, fn, pool));

  // Crash-loop: each attempt completes at most 3 more cases, then dies.
  BatchResumeStore store;
  BatchOptions resumable = options;
  store.attach(resumable);
  for (int attempt = 0; attempt < 16 && store.size() < kInstances; ++attempt) {
    std::atomic<std::size_t> budget{3};
    try {
      const BatchReport report = run_batch(
          resumable,
          [&](std::size_t index, std::uint64_t seed) {
            if (budget.fetch_sub(1) == 0) {
              throw std::runtime_error("simulated kill");
            }
            return fn(index, seed);
          },
          pool);
      EXPECT_EQ(deterministic_json(report), expected);
      break;
    } catch (const std::runtime_error&) {
      // progress persisted; loop around and "restart"
    }
  }
  EXPECT_EQ(store.size(), kInstances);
}

}  // namespace
}  // namespace sap
