// Tests for SAP on ring networks (Section 7, Theorem 5).
#include <gtest/gtest.h>

#include "src/core/ring_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/model/ring_instance.hpp"

namespace sap {
namespace {

TEST(RingInstanceTest, RouteEdges) {
  const RingInstance ring({4, 4, 4, 4}, {RingTask{0, 2, 1, 1}});
  EXPECT_EQ(ring.route_edges(0, true), (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(ring.route_edges(0, false), (std::vector<EdgeId>{2, 3}));
}

TEST(RingInstanceTest, RouteBottleneck) {
  const RingInstance ring({4, 2, 8, 6}, {RingTask{0, 2, 1, 1}});
  EXPECT_EQ(ring.route_bottleneck(0, true), 2);   // edges 0,1
  EXPECT_EQ(ring.route_bottleneck(0, false), 6);  // edges 2,3
  EXPECT_EQ(ring.min_capacity_edge(), 1);
}

TEST(RingInstanceTest, RejectsInvalidInput) {
  EXPECT_THROW(RingInstance({4, 4}, {}), std::invalid_argument);
  EXPECT_THROW(RingInstance({4, 4, 0}, {}), std::invalid_argument);
  EXPECT_THROW(RingInstance({4, 4, 4}, {RingTask{0, 0, 1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(RingInstance({4, 4, 4}, {RingTask{0, 1, 0, 1}}),
               std::invalid_argument);
}

TEST(VerifyRingTest, CatchesOverlapOnSharedEdge) {
  const RingInstance ring({4, 4, 4, 4},
                          {RingTask{0, 2, 3, 1}, RingTask{1, 3, 3, 1}});
  // Both clockwise: share edge 1; heights 0 and 0 overlap.
  RingSapSolution bad{{{0, 0, true}, {1, 0, true}}};
  EXPECT_FALSE(verify_ring_sap(ring, bad));
  // Opposite heights cannot fit (3 + 3 > 4), but disjoint routes can:
  // task 1 counter-clockwise uses edges 3, 0 — still shares edge 0 with
  // task 0? Task 0 cw uses 0,1. So pick heights 0 and 3 -> exceeds cap.
  RingSapSolution routed{{{0, 0, true}, {1, 0, false}}};
  EXPECT_FALSE(verify_ring_sap(ring, routed));
}

TEST(VerifyRingTest, AcceptsDisjointPlacements) {
  const RingInstance ring({8, 8, 8, 8},
                          {RingTask{0, 2, 3, 1}, RingTask{1, 3, 3, 1}});
  RingSapSolution sol{{{0, 0, true}, {1, 3, true}}};
  EXPECT_TRUE(verify_ring_sap(ring, sol));
}

TEST(RingSolverTest, FeasibleOnRandomInstances) {
  Rng rng(229);
  for (int trial = 0; trial < 10; ++trial) {
    RingGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 18;
    opt.min_capacity = 6;
    opt.max_capacity = 24;
    const RingInstance ring = generate_ring_instance(opt, rng);
    RingSolveReport report;
    const RingSapSolution sol = solve_ring_sap(ring, {}, &report);
    ASSERT_TRUE(verify_ring_sap(ring, sol))
        << verify_ring_sap(ring, sol).reason;
    const Weight w = ring.solution_weight(sol);
    EXPECT_EQ(w, std::max(report.path_weight, report.knapsack_weight));
  }
}

TEST(RingSolverTest, AllThroughCutDegeneratesToKnapsack) {
  // Every task wants the cut edge: the knapsack branch should win.
  // Ring of 4 edges; capacity dips at edge 0. All tasks span vertices
  // 3 -> 1 clockwise (edges 3, 0).
  const RingInstance ring(
      {4, 16, 16, 16},
      {RingTask{3, 1, 2, 10}, RingTask{3, 1, 2, 9}, RingTask{3, 1, 2, 1}});
  RingSolveReport report;
  const RingSapSolution sol = solve_ring_sap(ring, {}, &report);
  EXPECT_TRUE(verify_ring_sap(ring, sol));
  EXPECT_EQ(report.cut_edge, 0);
  // Cut capacity 4 fits two demand-2 tasks; counter-clockwise (edges 1, 2)
  // the path branch can also take tasks. Either way weight >= 19.
  EXPECT_GE(ring.solution_weight(sol), 19);
}

TEST(RingSolverTest, PathBranchUsedWhenCutIsWorthless) {
  // Cut edge capacity 1: nothing fits through it; path branch must win.
  const RingInstance ring(
      {1, 8, 8, 8},
      {RingTask{1, 3, 4, 5}, RingTask{2, 0, 4, 3}});
  RingSolveReport report;
  const RingSapSolution sol = solve_ring_sap(ring, {}, &report);
  EXPECT_TRUE(verify_ring_sap(ring, sol));
  EXPECT_EQ(report.winner, RingBranch::kPath);
  // OPT packs both tasks (weight 8); the medium pipeline's beta-elevation
  // reserves headroom and may keep only the heavier one, well inside its
  // 2-approximation guarantee.
  EXPECT_GE(ring.solution_weight(sol), 5);
}

}  // namespace
}  // namespace sap
