// Parameterized sweeps over the per-class pipelines' configuration spaces:
// Strip-Pack across backends x profiles x delta, AlmostUniform across beta
// and eps, SAP-U across capacities — feasibility and structural invariants
// at every point.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/medium_tasks.hpp"
#include "src/core/small_tasks.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/sapu/sapu_solver.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

// ---------------------------------------------------------------- small --

struct SmallCase {
  CapacityProfile profile;
  SmallTaskBackend backend;
  Ratio delta;
  std::uint64_t seed;
};

std::string SmallName(const testing::TestParamInfo<SmallCase>& info) {
  static const char* profiles[] = {"Uniform", "Valley", "Mountain",
                                   "Staircase", "Walk"};
  return std::string(profiles[static_cast<int>(info.param.profile)]) +
         (info.param.backend == SmallTaskBackend::kLocalRatio ? "LR" : "LP") +
         "d" + std::to_string(info.param.delta.den) + "s" +
         std::to_string(info.param.seed);
}

class SmallPipelineTest : public testing::TestWithParam<SmallCase> {};

TEST_P(SmallPipelineTest, FeasibleAndOctaveConfined) {
  const SmallCase& param = GetParam();
  Rng rng(param.seed * 2713 + static_cast<std::uint64_t>(param.delta.den));
  PathGenOptions opt;
  opt.num_edges = 12;
  opt.num_tasks = 36;
  opt.profile = param.profile;
  opt.min_capacity = 16;
  opt.max_capacity = 96;
  opt.demand = DemandClass::kSmall;
  opt.delta = param.delta;
  const PathInstance inst = generate_path_instance(opt, rng);

  SolverParams params;
  params.delta = param.delta;
  params.small_backend = param.backend;
  params.seed = param.seed;
  const SapSolution sol = solve_small_tasks(inst, all_ids(inst), params);
  ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  // Octave confinement: task with bottleneck in [2^t, 2^(t+1)) occupies
  // [2^(t-1), 2^t).
  for (const Placement& p : sol.placements) {
    Value big_b = 1;
    while (big_b * 2 <= inst.bottleneck(p.task)) big_b *= 2;
    EXPECT_GE(p.height, big_b / 2);
    EXPECT_LE(p.height + inst.task(p.task).demand, big_b);
  }
  // No double placements.
  std::vector<bool> seen(inst.num_tasks(), false);
  for (const Placement& p : sol.placements) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(p.task)]);
    seen[static_cast<std::size_t>(p.task)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmallPipelineTest,
    testing::ValuesIn([] {
      std::vector<SmallCase> cases;
      for (CapacityProfile profile :
           {CapacityProfile::kUniform, CapacityProfile::kValley,
            CapacityProfile::kRandomWalk}) {
        for (SmallTaskBackend backend :
             {SmallTaskBackend::kLocalRatio, SmallTaskBackend::kLpRounding}) {
          for (Ratio delta : {Ratio{1, 4}, Ratio{1, 16}}) {
            for (std::uint64_t seed : {1ULL, 2ULL}) {
              cases.push_back({profile, backend, delta, seed});
            }
          }
        }
      }
      return cases;
    }()),
    SmallName);

// --------------------------------------------------------------- medium --

struct MediumCase {
  Ratio beta;
  double eps;
  int mode;  // ElevatorMode as int
  std::uint64_t seed;
};

std::string MediumName(const testing::TestParamInfo<MediumCase>& info) {
  return "b" + std::to_string(info.param.beta.den) + "e" +
         std::to_string(static_cast<int>(info.param.eps * 10)) + "m" +
         std::to_string(info.param.mode) + "s" +
         std::to_string(info.param.seed);
}

class MediumPipelineTest : public testing::TestWithParam<MediumCase> {};

TEST_P(MediumPipelineTest, FeasibleAcrossConfigurations) {
  const MediumCase& param = GetParam();
  Rng rng(param.seed * 6133 + static_cast<std::uint64_t>(param.beta.den));
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 16;
  opt.min_capacity = 8;
  opt.max_capacity = 32;
  opt.demand = DemandClass::kMedium;
  opt.delta = {1, 8};
  const PathInstance inst = generate_path_instance(opt, rng);

  SolverParams params;
  params.beta = param.beta;
  params.eps = param.eps;
  params.elevator_mode = param.mode;
  params.validate();
  const SapSolution sol = solve_medium_tasks(inst, all_ids(inst), params);
  ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  std::vector<bool> seen(inst.num_tasks(), false);
  for (const Placement& p : sol.placements) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(p.task)]);
    seen[static_cast<std::size_t>(p.task)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MediumPipelineTest,
    testing::ValuesIn([] {
      std::vector<MediumCase> cases;
      for (Ratio beta : {Ratio{1, 4}, Ratio{1, 8}}) {
        for (double eps : {1.0, 0.5}) {
          for (int mode : {0, 1}) {
            for (std::uint64_t seed : {1ULL, 2ULL}) {
              cases.push_back({beta, eps, mode, seed});
            }
          }
        }
      }
      return cases;
    }()),
    MediumName);

// ---------------------------------------------------------------- sap-u --

class SapUniformSweepTest : public testing::TestWithParam<Value> {};

TEST_P(SapUniformSweepTest, FeasibleAcrossCapacities) {
  Rng rng(409 + static_cast<std::uint64_t>(GetParam()));
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 24;
  opt.profile = CapacityProfile::kUniform;
  opt.min_capacity = GetParam();
  opt.max_capacity = GetParam();
  const PathInstance inst = generate_path_instance(opt, rng);
  SapUniformReport report;
  const SapSolution sol = solve_sap_uniform(inst, {}, &report);
  ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  EXPECT_GE(report.strip_retention, 0.0);
  EXPECT_LE(report.strip_retention, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Caps, SapUniformSweepTest,
                         testing::Values<Value>(4, 8, 16, 64, 256, 1024));

}  // namespace
}  // namespace sap
