// Unit tests for src/util: RMQ, RNG, summary statistics, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/util/rmq.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace sap {
namespace {

TEST(RangeMinTest, SingleElement) {
  const std::vector<std::int64_t> v{42};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 0), 42);
  EXPECT_EQ(rmq.argmin(0, 0), 0u);
}

TEST(RangeMinTest, KnownArray) {
  const std::vector<std::int64_t> v{5, 3, 8, 3, 9, 1, 7};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 6), 1);
  EXPECT_EQ(rmq.argmin(0, 6), 5u);
  EXPECT_EQ(rmq.min(0, 3), 3);
  EXPECT_EQ(rmq.argmin(0, 3), 1u);  // ties resolve to the left
  EXPECT_EQ(rmq.min(2, 4), 3);
  EXPECT_EQ(rmq.argmin(2, 4), 3u);
  EXPECT_EQ(rmq.min(6, 6), 7);
}

TEST(RangeMinTest, MatchesNaiveOnRandomArrays) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = rng.uniform_int(-100, 100);
    RangeMin rmq(v);
    for (std::size_t lo = 0; lo < n; ++lo) {
      for (std::size_t hi = lo; hi < n; ++hi) {
        const auto naive =
            *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo),
                              v.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_EQ(rmq.min(lo, hi), naive) << "range [" << lo << "," << hi << "]";
        ASSERT_EQ(v[rmq.argmin(lo, hi)], naive);
      }
    }
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-7, 13);
    ASSERT_GE(x, -7);
    ASSERT_LE(x, 13);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(SummaryTest, MeanAndExtremes) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(23);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ThreadPoolTest, RunsEveryIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, FirstExceptionWinsWhenManyThrow) {
  // Many iterations throw concurrently; exactly one of their exceptions must
  // propagate intact (first to be recorded wins, later ones are dropped),
  // and every iteration still runs — no early abort leaves work undone.
  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i % 9 == 3) throw std::runtime_error("boom@" + std::to_string(i));
      });
      FAIL() << "parallel_for did not throw";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      ASSERT_EQ(what.rfind("boom@", 0), 0u) << what;
      const std::size_t i = std::stoul(what.substr(5));
      EXPECT_EQ(i % 9, 3u) << what;
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPoolTest, ReusableAfterThrow) {
  // A throwing sweep must leave the pool in a clean state: subsequent
  // parallel_for calls run every iteration exactly once, repeatedly.
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.parallel_for(32,
                                   [](std::size_t i) {
                                     if (i == 5) throw std::logic_error("x");
                                   }),
                 std::logic_error);
    std::vector<std::atomic<int>> hits(200);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, StressManySmallSweeps) {
  // Back-to-back sweeps of varying size exercise the wake/sleep handshake;
  // a lost wakeup or double-claimed index shows up as a wrong sum.
  ThreadPool pool(8);
  for (std::size_t n = 1; n <= 128; ++n) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "sweep of size " << n;
  }
}

TEST(PercentileTest, MatchesLinearInterpolation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 95.0), 7.5);
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
}

}  // namespace
}  // namespace sap
